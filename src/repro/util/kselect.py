"""Floyd-Rivest selection (the SELECT algorithm).

The paper's outlier-detection step (section 4.2.1, Eq. 1) evaluates
``k_select(COMM_VOL_SET, k)`` -- the k-th smallest element of the
communication-volume set -- "utilizing the algorithm by Floyd and Rivest to
evaluate k_select() in linear time".

This is a faithful implementation of Floyd & Rivest's 1975 SELECT: for large
ranges it recursively selects within a small sample to pick pivot bounds that
bracket the k-th element with high probability, then partitions.  Expected
running time is ``n + min(k, n-k) + o(n)`` comparisons.

``k`` is 1-based, matching the paper's formulation (``k_select(S, N)`` is the
maximum of an N-element set).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass
class SelectStats:
    """Instrumentation counters for :func:`k_select` (profiling only).

    ``calls`` counts top-level selections, ``pivot_passes`` counts partition
    passes (one per loop iteration of the SELECT kernel, recursion
    included).  Pass one object through several calls to accumulate.
    """

    calls: int = 0
    pivot_passes: int = 0


def k_select(values: Sequence[float], k: int,
             stats: Optional[SelectStats] = None) -> float:
    """Return the ``k``-th smallest element (1-based) of ``values``.

    Runs in expected linear time via Floyd-Rivest SELECT.  ``values`` is not
    modified; a working copy is made once.  ``stats``, when given, is
    updated in place with call/partition-pass counts.

    >>> k_select([5, 1, 4, 2, 3], 2)
    2
    """
    n = len(values)
    if n == 0:
        raise ValueError("k_select of empty sequence")
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range 1..{n}")
    if stats is not None:
        stats.calls += 1
    work = list(values)
    _floyd_rivest(work, 0, n - 1, k - 1, stats)
    return work[k - 1]


def _floyd_rivest(a: list, left: int, right: int, k: int,
                  stats: Optional[SelectStats] = None) -> None:
    """In-place SELECT: after return, ``a[k]`` holds the k-th order statistic
    of ``a[left..right]`` and the array is partitioned around it."""
    while right > left:
        if stats is not None:
            stats.pivot_passes += 1
        if right - left > 600:
            # Sample recursion: select within a sample of size ~n^(2/3)
            # centred on where the k-th element is expected to fall.
            n = right - left + 1
            i = k - left + 1
            z = math.log(n)
            s = 0.5 * math.exp(2.0 * z / 3.0)
            sd = 0.5 * math.sqrt(z * s * (n - s) / n)
            if i < n / 2:
                sd = -sd
            new_left = max(left, int(k - i * s / n + sd))
            new_right = min(right, int(k + (n - i) * s / n + sd))
            _floyd_rivest(a, new_left, new_right, k, stats)
        # Standard three-way-ish partition around a[k].
        t = a[k]
        i, j = left, right
        a[left], a[k] = a[k], a[left]
        if a[right] > t:
            a[right], a[left] = a[left], a[right]
        while i < j:
            a[i], a[j] = a[j], a[i]
            i += 1
            j -= 1
            while a[i] < t:
                i += 1
            while a[j] > t:
                j -= 1
        if a[left] == t:
            a[left], a[j] = a[j], a[left]
        else:
            j += 1
            a[j], a[right] = a[right], a[j]
        if j <= k:
            left = j + 1
        if k <= j:
            right = j - 1
