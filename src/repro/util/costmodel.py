"""The single calibrated cost model shared by every experiment.

All simulated durations in the repository are derived from the constants in
:class:`CostModel`.  The defaults are calibrated once against the paper's
testbed class (InfiniBand DDR cluster, mid-2000s x86-64 nodes) and are *not*
tuned per figure -- see DESIGN.md section 2.

Rationale for the defaults:

- ``alpha`` ~ 4 us: small-message MPI latency on IB DDR with MVAPICH2.
- ``beta``  ~ 1/1.4 GB/s: large-message point-to-point bandwidth.
- ``copy_byte`` ~ 1/2.5 GB/s: memcpy bandwidth of DDR/DDR2-400 nodes.
- ``block_overhead`` ~ 7 ns: per contiguous-block bookkeeping in the
  general-purpose dataloop (descriptor fetch, pointer arithmetic, loop
  control) -- slightly more than a hand-tuned gather pays per element,
  which is how the datatype path ends up a few percent behind hand-tuned
  code even with a perfect engine (paper section 5.4).
- ``search_block`` ~ 2.5 ns: per-block cost of walking the datatype while
  re-searching for a lost context (baseline engine, paper section 3.1); a
  bare descriptor walk, cheaper than processing a block.
- ``lookahead_block`` ~ 15 ns: per-block cost of parsing the datatype
  *signature* during look-ahead (section 4.1) -- pricier per block than the
  search walk (it classifies density), but only ever 15 blocks per stage.
- ``handtuned_elem`` ~ 3 ns: per-element cost of PETSc's hand-tuned
  pack/unpack loops (an indexed gather in C).
- ``flop`` ~ 0.9 ns: per grid-point cost of one stencil/smoother update.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Tunable constants (seconds / bytes) for the simulated cluster."""

    # network
    alpha: float = 4.0e-6          # per-message latency (s)
    beta: float = 1.0 / 1.4e9      # per-byte wire time (s/B)
    rdma_alpha: float = 1.5e-6     # per-RDMA-operation initiation (s)

    # memory / datatype processing
    copy_byte: float = 1.0 / 2.5e9  # per-byte pack/unpack copy cost (s/B)
    block_overhead: float = 7e-9    # per contiguous block handled in a pack
    search_block: float = 2.5e-9    # per block walked during context re-search
    lookahead_block: float = 15e-9  # per block of signature-only look-ahead
    handtuned_elem: float = 3e-9    # per element of a hand-tuned pack loop

    # pack-engine policy knobs (mirroring MPICH2's segment code)
    pipeline_chunk: int = 16 * 1024   # bytes packed/sent per pipeline stage
    lookahead_depth: int = 15         # blocks examined to classify density
    dense_block_threshold: int = 256  # avg block >= this many bytes => dense

    # nonuniform-collective policy knobs (paper section 4.2)
    outlier_fraction: float = 0.125   # OUTLIER_FRACT in Eq. 1
    outlier_ratio_threshold: float = 8.0  # Eq. 1 ratio above which we adapt
    small_message_threshold: int = 4096   # alltoallw small/large bin split (B)

    # computation
    flop: float = 0.9e-9           # per stencil-point update (s)

    # storage (shared parallel file system)
    io_op_latency: float = 50e-6   # per file-system operation (s)
    io_byte: float = 1.0 / 0.5e9   # per byte through the (shared) server

    # heterogeneity / noise
    cpu_noise: float = 0.02        # uniform per-call CPU jitter fraction
    hetero_factor: float = 3.6 / 2.8  # Opteron 2.8 GHz vs Intel 3.6 GHz

    def transfer_time(self, nbytes: int) -> float:
        """Wire time of one message of ``nbytes`` bytes (alpha-beta model)."""
        return self.alpha + self.beta * max(0, nbytes)

    def with_(self, **kwargs) -> "CostModel":
        """A copy with some constants replaced (for ablation studies)."""
        return replace(self, **kwargs)


@dataclass
class CostLedger:
    """Accumulates per-category simulated time (for Fig. 13-style breakdowns).

    Categories used by the repository: ``"comm"``, ``"pack"``, ``"search"``,
    ``"lookahead"``, ``"compute"``, ``"sync"``.
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds!r}")
        self.totals[category] = self.totals.get(category, 0.0) + seconds

    def get(self, category: str) -> float:
        return self.totals.get(category, 0.0)

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def merged(self, other: "CostLedger") -> "CostLedger":
        out = CostLedger(dict(self.totals))
        for k, v in other.totals.items():
            out.totals[k] = out.totals.get(k, 0.0) + v
        return out

    def fractions(self) -> Dict[str, float]:
        """Normalised shares per category (sums to 1.0 when non-empty)."""
        tot = self.total
        if tot <= 0:
            return {k: 0.0 for k in self.totals}
        return {k: v / tot for k, v in self.totals.items()}
