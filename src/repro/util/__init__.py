"""Shared utilities: the calibrated cost model and selection algorithms."""

from repro.util.costmodel import CostLedger, CostModel
from repro.util.kselect import k_select

__all__ = ["CostLedger", "CostModel", "k_select"]
