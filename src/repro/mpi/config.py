"""MPI implementation configuration: baseline vs optimised, plus ablations.

Every optimisation the paper proposes is an independent toggle so the
benchmark suite can measure each one's contribution separately
(``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MPIConfig:
    """Feature flags and protocol thresholds of the simulated MPI stack."""

    name: str

    #: section 4.1 -- dual-context look-ahead datatype engine
    dual_context_engine: bool

    #: section 4.2.1 -- detect volume outliers and switch Allgatherv to
    #: recursive doubling / dissemination instead of the ring
    adaptive_allgatherv: bool

    #: section 4.2.2 -- Alltoallw bins: exempt zero-size peers, process
    #: small messages before large ones
    binned_alltoallw: bool

    #: eager/rendezvous protocol switch (bytes)
    eager_threshold: int = 12 * 1024

    #: Allgatherv total payload at/above which the baseline picks the ring
    #: algorithm (the "large message" regime of section 3.2)
    allgatherv_long_threshold: int = 16 * 1024

    @classmethod
    def baseline(cls) -> "MPIConfig":
        """Stock MVAPICH2-0.9.5 / MPICH2 behaviour (the paper's baseline)."""
        return cls(
            name="MVAPICH2-0.9.5",
            dual_context_engine=False,
            adaptive_allgatherv=False,
            binned_alltoallw=False,
        )

    @classmethod
    def optimized(cls) -> "MPIConfig":
        """All of the paper's optimisations enabled ("MVAPICH2-New")."""
        return cls(
            name="MVAPICH2-New",
            dual_context_engine=True,
            adaptive_allgatherv=True,
            binned_alltoallw=True,
        )

    def with_(self, **kwargs) -> "MPIConfig":
        """A copy with selected flags replaced (for ablation studies)."""
        return replace(self, **kwargs)
