"""MPI implementation configuration: baseline vs optimised, plus ablations.

Every optimisation the paper proposes is an independent toggle so the
benchmark suite can measure each one's contribution separately
(``benchmarks/test_ablations.py``).

Collective-algorithm selection is governed by :attr:`MPIConfig.selection_policy`
(see :mod:`repro.mpi.algorithms`):

- ``None`` (the default) derives the policy from the feature flags, so
  ``baseline()`` resolves to the ``mpich`` policy and ``optimized()`` to the
  ``adaptive`` policy -- bit-for-bit the pre-registry decision logic -- and
  ablation configs with mixed flags keep their per-collective behaviour,
- ``"mpich"`` forces the stock MPICH2 selection thresholds everywhere,
- ``"adaptive"`` forces the paper's section 4.2 rules everywhere,
- ``"autotuned"`` consults the tuning table at :attr:`tuning_table`
  (``python -m repro.bench --autotune`` regenerates it),
- ``"fixed:<name>"`` pins every collective that registers an algorithm of
  that name (microbenchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional


@dataclass(frozen=True)
class MPIConfig:
    """Feature flags and protocol thresholds of the simulated MPI stack."""

    name: str

    #: section 4.1 -- dual-context look-ahead datatype engine
    dual_context_engine: bool

    #: section 4.2.1 -- detect volume outliers and switch Allgatherv to
    #: recursive doubling / dissemination instead of the ring
    adaptive_allgatherv: bool

    #: section 4.2.2 -- Alltoallw bins: exempt zero-size peers, process
    #: small messages before large ones
    binned_alltoallw: bool

    #: eager/rendezvous protocol switch (bytes)
    eager_threshold: int = 12 * 1024

    #: Allgatherv total payload at/above which the baseline picks the ring
    #: algorithm (the "large message" regime of section 3.2)
    allgatherv_long_threshold: int = 16 * 1024

    #: collective-algorithm selection policy (see repro.mpi.algorithms);
    #: None derives mpich/adaptive behaviour from the flags above
    selection_policy: Optional[str] = None

    #: path to a tuning-table JSON for the ``autotuned`` policy
    tuning_table: Optional[str] = None

    # -- fault tolerance (repro.faults / docs/FAULTS.md) -------------------
    #
    # All default to OFF: with the defaults below, every code path in the
    # transport is bit-for-bit and schedule-identical to the pre-fault
    # stack (the reliability machinery is a separate delivery routine).

    #: go-back-N-style reliable delivery: sequence numbers + CRC32 over the
    #: packed payload, receiver-side dedupe, per-message acks, and sender
    #: retransmit on timeout.  Required for FaultPlans that drop, corrupt
    #: or duplicate messages.
    reliable_transport: bool = False

    #: initial sender retransmit timeout (simulated seconds); doubles
    #: (times :attr:`backoff_factor`) per failed attempt up to
    #: :attr:`backoff_cap`
    retransmit_timeout: float = 2e-4

    #: retransmit attempts per message before the transport surfaces a
    #: :class:`repro.mpi.errors.TransportError`
    max_retransmits: int = 8

    #: multiplier applied to the retransmit timeout after each failure
    backoff_factor: float = 2.0

    #: upper bound on the (exponentially growing) retransmit timeout
    backoff_cap: float = 5e-3

    #: polling interval for the rendezvous hang detector: a rendezvous
    #: sender re-checks its peer's liveness this often while waiting for
    #: the matching receive (only with :attr:`reliable_transport`)
    rendezvous_poll: float = 1e-3

    @classmethod
    def baseline(cls) -> "MPIConfig":
        """Stock MVAPICH2-0.9.5 / MPICH2 behaviour (the paper's baseline).

        With all flags off the derived selection policy is ``mpich``.
        """
        return cls(
            name="MVAPICH2-0.9.5",
            dual_context_engine=False,
            adaptive_allgatherv=False,
            binned_alltoallw=False,
        )

    @classmethod
    def optimized(cls) -> "MPIConfig":
        """All of the paper's optimisations enabled ("MVAPICH2-New").

        With all flags on the derived selection policy is ``adaptive``.
        """
        return cls(
            name="MVAPICH2-New",
            dual_context_engine=True,
            adaptive_allgatherv=True,
            binned_alltoallw=True,
        )

    def with_(self, **kwargs) -> "MPIConfig":
        """A copy with selected fields replaced (for ablation studies).

        When boolean feature flags change and no explicit ``name`` is
        supplied, the copy's name gains a ``+flag``/``-flag`` suffix per
        changed flag (in field-declaration order), so ablation bench rows
        derived from the same parent stay unambiguous::

            >>> MPIConfig.baseline().with_(adaptive_allgatherv=True).name
            'MVAPICH2-0.9.5+adaptive_allgatherv'
        """
        new = replace(self, **kwargs)
        if "name" not in kwargs:
            suffix = ""
            for f in fields(self):
                if f.name not in kwargs:
                    continue
                old_value = getattr(self, f.name)
                new_value = getattr(new, f.name)
                if (isinstance(old_value, bool) and isinstance(new_value, bool)
                        and old_value != new_value):
                    suffix += ("+" if new_value else "-") + f.name
            if suffix:
                new = replace(new, name=self.name + suffix)
        return new
