"""Request and Status objects for nonblocking operations."""

from __future__ import annotations

import warnings
from typing import Any, Generator

from repro.mpi.errors import FaultToleranceError
from repro.simtime.engine import SimFuture


class Status:
    """Completion information of a receive (MPI_Status)."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """Handle for a pending nonblocking send or receive.

    ``yield from req.wait()`` blocks the calling process until completion and
    returns the :class:`Status` (receives) or ``None`` (sends).

    Every request must eventually be completed with :meth:`wait` (or observed
    with :meth:`test` until it reports completion).  A request that is
    garbage-collected without either is a *leaked request* -- real MPI would
    leak the internal operation state -- and triggers a
    :class:`ResourceWarning` plus a ``REQ001`` finding when a
    :class:`repro.analyze.runtime.RuntimeVerifier` is attached.
    """

    __slots__ = ("_future", "kind", "_waited", "_profiler", "_rank",
                 "msg_id", "__weakref__")

    def __init__(self, future: SimFuture, kind: str,
                 profiler: Any = None, rank: int = -1,
                 msg_id: int = None):
        self._future = future
        self.kind = kind
        self._waited = False
        #: optional repro.prof profiler (NULL_PROFILER or None when unprofiled)
        self._profiler = profiler
        self._rank = rank
        #: causal message id of the send this request completes (None for
        #: receives, whose message identity is only known at match time)
        self.msg_id = msg_id

    @property
    def done(self) -> bool:
        return self._future.done

    @property
    def waited(self) -> bool:
        """True once :meth:`wait` ran (or :meth:`test` observed completion)."""
        return self._waited

    def wait(self) -> Generator:
        self._waited = True
        prof = self._profiler
        if prof is not None and prof.enabled and not self._future.done:
            t0 = self._future.engine.now
            attrs = {} if self.msg_id is None else {"msg_id": self.msg_id}
            with prof.span("wait", "wait_" + self.kind, self._rank, **attrs):
                result = yield self._future
            prof.observe("repro_request_wait_seconds",
                         self._future.engine.now - t0)
        else:
            result = yield self._future
        return result

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check (``MPI_Test``): ``(done, result)``.

        Observing a completed request counts as having waited on it.
        """
        if not self._future.done:
            return False, None
        self._waited = True
        return True, self._future.value

    def __del__(self):  # pragma: no cover - exercised via gc in tests
        try:
            if self.kind in ("send", "recv") and not self._waited:
                # a request abandoned because its collective aborted on a
                # peer failure/revocation is not a programming error
                fut = self._future
                if (fut.done and fut._exception is not None
                        and isinstance(fut._exception, FaultToleranceError)):
                    return
                warnings.warn(
                    f"Request ({self.kind}) garbage-collected without "
                    "wait()/test(); nonblocking operations must be completed",
                    ResourceWarning,
                    stacklevel=2,
                )
        except Exception:
            pass  # interpreter shutdown: warning machinery may be gone

    @staticmethod
    def waitall(requests: list["Request"]) -> Generator:
        """Complete every request; returns their results in order."""
        results = []
        for req in requests:
            results.append((yield from req.wait()))
        return results

    @staticmethod
    def waitany(requests: list["Request"]) -> Generator:
        """Block until one request completes; returns ``(index, result)``.

        If several are already complete, the lowest index wins (like
        ``MPI_Waitany``).  The returned request is finished; the others are
        untouched and can be waited on later.
        """
        if not requests:
            raise ValueError("waitany of no requests")
        for i, req in enumerate(requests):
            if req.done:
                result = yield from req.wait()
                return i, result
        engine = requests[0]._future.engine
        winner = engine.future("waitany")
        state = {"done": False}

        def make_cb(index):
            def cb(_fut):
                if not state["done"]:
                    state["done"] = True
                    winner.set_result(index)
            return cb

        for i, req in enumerate(requests):
            req._future.add_done_callback(make_cb(i))
        index = yield winner
        result = yield from requests[index].wait()
        return index, result
