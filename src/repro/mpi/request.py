"""Request and Status objects for nonblocking operations."""

from __future__ import annotations

from typing import Generator, Optional

from repro.simtime.engine import SimFuture


class Status:
    """Completion information of a receive (MPI_Status)."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """Handle for a pending nonblocking send or receive.

    ``yield from req.wait()`` blocks the calling process until completion and
    returns the :class:`Status` (receives) or ``None`` (sends).
    """

    __slots__ = ("_future", "kind")

    def __init__(self, future: SimFuture, kind: str):
        self._future = future
        self.kind = kind

    @property
    def done(self) -> bool:
        return self._future.done

    def wait(self) -> Generator:
        result = yield self._future
        return result

    @staticmethod
    def waitall(requests: list["Request"]) -> Generator:
        """Complete every request; returns their results in order."""
        results = []
        for req in requests:
            results.append((yield from req.wait()))
        return results

    @staticmethod
    def waitany(requests: list["Request"]) -> Generator:
        """Block until one request completes; returns ``(index, result)``.

        If several are already complete, the lowest index wins (like
        ``MPI_Waitany``).  The returned request is finished; the others are
        untouched and can be waited on later.
        """
        if not requests:
            raise ValueError("waitany of no requests")
        for i, req in enumerate(requests):
            if req.done:
                result = yield from req.wait()
                return i, result
        engine = requests[0]._future.engine
        winner = engine.future("waitany")
        state = {"done": False}

        def make_cb(index):
            def cb(_fut):
                if not state["done"]:
                    state["done"] = True
                    winner.set_result(index)
            return cb

        for i, req in enumerate(requests):
            req._future.add_done_callback(make_cb(i))
        index = yield winner
        result = yield from requests[index].wait()
        return index, result
