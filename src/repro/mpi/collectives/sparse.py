"""Sparse dynamic data exchange: the NBX nonblocking-consensus alltoall.

The dense exchanges of this library (``alltoall``/``alltoallw``) assume
every rank knows the full communication matrix -- each rank posts a
receive (or a counts slot) for every peer.  Assembly-style workloads
(``Vec.set_values`` on rows you don't own, AMR ghost exchange) violate
that: a rank knows *whom it sends to* but not *who sends to it*, and the
pattern is sparse -- most peer pairs exchange nothing.

This module implements the dynamic-sparse-data-exchange algorithms of
"A More Scalable Sparse Dynamic Data Exchange" (Geyko et al., PAPERS.md)
as ``sparse_alltoall`` registry algorithms:

``dense``
    The legacy personalized exchange: an ``alltoall`` of per-peer counts
    followed by point-to-point transfers.  Requires two full sweeps of
    the communicator regardless of sparsity; kept as the baseline and the
    byte-identity oracle.

``nbx``
    The NBX nonblocking consensus: post the (known) sends, discover
    incoming messages by probing, and enter a nonblocking barrier
    (:func:`ibarrier`) once the local sends complete.  When the barrier
    completes, every rank has both posted all its sends and observed that
    every other rank has too -- so one final probe drain terminates the
    exchange.  Total cost: one message per nonzero pair plus two
    dissemination sweeps of control traffic, independent of the dense
    communicator size.

``nbx_binned``
    NBX with a locality-aware send schedule: destinations ordered by ring
    distance from the sender, small messages (below the cost model's
    ``small_message_threshold``) issued before large ones so eager
    traffic is not stuck behind rendezvous transfers.

**Wire-protocol compatibility.**  ``nbx`` and ``nbx_binned`` differ only
in local send order and interoperate freely -- different ranks of one
exchange may pick either.  ``dense`` uses an incompatible protocol (it
begins with a collective counts exchange every rank must join), so the
dense-vs-NBX decision must be *rank-uniform*: the selection policies and
the tuning-table bucket key only consult rank-uniform inputs (size,
config) when crossing that boundary, never the per-rank volume set.  The
``detail`` reported to the runtime verifier carries the protocol family,
so a divergent selection trips COL002 instead of deadlocking silently.

Payloads are dicts ``{destination rank: numpy array | TypedBuffer}`` with
byte sizes divisible by 8; results are ``{source rank: float64 array}``
of the raw received bytes.  Zero-byte payloads are elided (sparsity means
never touching silent pairs); a self-entry is copied locally.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.mpi.algorithms import REGISTRY, SelectionContext, select
from repro.mpi.collectives.basic import (_CTRL_BYTES, _barrier_dissemination,
                                         _tag_window)
from repro.mpi.comm import (ANY_SOURCE, Comm, MPIError, _first_of,
                            _RecvRecord)
from repro.mpi.request import Request

#: tag offset of the consensus barrier inside the collective's tag window
#: (the data messages use the window base; dissemination needs
#: ceil(log2 N) consecutive tags, which fits the remaining half)
_BARRIER_TAG_OFFSET = 32


def _payload_nbytes(payload: Any) -> int:
    if isinstance(payload, TypedBuffer):
        return payload.nbytes
    return int(np.asarray(payload).nbytes)


def _as_f64(payload: Any) -> np.ndarray:
    """A payload's wire bytes reinterpreted as the float64 array the
    receiver would have produced (used for the local self-copy)."""
    if isinstance(payload, TypedBuffer):
        raw = payload.pack().tobytes()
    else:
        raw = np.ascontiguousarray(payload).tobytes()
    return np.frombuffer(raw, dtype=np.float64).copy()


def ibarrier(comm: Comm, base: int) -> "Any":
    """Nonblocking barrier: run the dissemination barrier as its own
    simulated process; the returned future resolves when it completes
    (or carries the failure that aborted it)."""
    fut = comm.engine.future(f"ibarrier@{comm.grank}")

    def _run() -> Generator:
        try:
            yield from _barrier_dissemination(comm, base)
        except BaseException as exc:  # crash/revoke poison -> the waiter
            if not fut.done:
                fut.set_exception(exc)
        else:
            if not fut.done:
                fut.set_result(None)

    comm.engine.spawn(_run(), f"ibarrier@{comm.grank}")
    return fut


def sparse_alltoall(comm: Comm, payloads: Dict[int, Any],
                    algorithm: Optional[str] = None) -> Generator:
    """Exchange payloads with only the peers named in ``payloads``.

    Every rank contributes the messages it wants to *send*; which ranks
    send to *me* is discovered by the algorithm.  Returns ``{source rank:
    float64 array}`` with one entry per nonzero received payload.
    """
    n = comm.size
    out: Dict[int, Any] = {}
    for dst, payload in payloads.items():
        dst = int(dst)
        if not 0 <= dst < n:
            raise MPIError(
                f"sparse_alltoall: invalid destination rank {dst} "
                f"(communicator size {n})")
        nbytes = _payload_nbytes(payload)
        if nbytes % 8:
            raise MPIError(
                f"sparse_alltoall: payload for rank {dst} is {nbytes} bytes; "
                f"payloads must be a whole number of float64 words")
        if nbytes:
            out[dst] = payload
    volumes = [0] * n
    for dst, payload in out.items():
        volumes[dst] = _payload_nbytes(payload)
    contiguous = all(
        p.is_contiguous() if isinstance(p, TypedBuffer) else True
        for p in out.values())
    ctx = SelectionContext.for_comm(comm, "sparse_alltoall", volumes=volumes,
                                    dtype_size=8, contiguous=contiguous)
    decision = select(comm, "sparse_alltoall", ctx, algorithm=algorithm)
    family = "dense" if decision.algorithm == "dense" else "nbx"
    base = _tag_window(comm, op="sparse_alltoall", detail=family)
    if decision.detect_seconds:
        yield from comm.cpu(decision.detect_seconds, "detect")
    prof = comm.cluster.profiler
    with prof.span("collective", "sparse_alltoall", comm.grank,
                   peers=len(out), algorithm=decision.algorithm,
                   policy=decision.policy):
        impl = REGISTRY.implementation("sparse_alltoall", decision.algorithm)
        result = yield from impl(comm, out, base)
    return result


# -- implementations ----------------------------------------------------------

def _sparse_dense(comm: Comm, payloads: Dict[int, Any],
                  base: int) -> Generator:
    """Counts ``alltoall`` then point-to-point: the legacy dense protocol.

    Every rank participates in the counts exchange whether or not it has
    anything to say -- which is exactly what NBX avoids."""
    n, rank = comm.size, comm.rank
    out_counts = np.zeros(n, dtype=np.float64)
    for dst, payload in payloads.items():
        if dst != rank:
            out_counts[dst] = _payload_nbytes(payload) // 8
    in_counts = np.zeros(n, dtype=np.float64)
    yield from comm.alltoall(out_counts, in_counts, 1)
    result: Dict[int, np.ndarray] = {}
    requests: List[Request] = []
    for src in range(n):
        count = int(in_counts[src])
        if src == rank or count == 0:
            continue
        buf = np.empty(count, dtype=np.float64)
        result[src] = buf
        requests.append(comm.irecv(buf, src, base))
    for dst in sorted(payloads):
        if dst != rank:
            requests.append((yield from comm.isend(payloads[dst], dst, base)))
    yield from Request.waitall(requests)
    local = payloads.get(rank)
    if local is not None:
        result[rank] = _as_f64(local)
    return result


def _send_schedule(comm: Comm, payloads: Dict[int, Any],
                   binned: bool) -> List[int]:
    """Destination order: ring distance from the sender; the binned
    variant additionally issues small (eager) messages before large
    (rendezvous) ones."""
    ring = sorted((d for d in payloads if d != comm.rank),
                  key=lambda d: (d - comm.rank) % comm.size)
    if not binned:
        return ring
    threshold = comm.cost.small_message_threshold
    small = [d for d in ring if _payload_nbytes(payloads[d]) < threshold]
    large = [d for d in ring if _payload_nbytes(payloads[d]) >= threshold]
    return small + large


def _nbx_exchange(comm: Comm, payloads: Dict[int, Any], base: int,
                  binned: bool) -> Generator:
    """The NBX event loop shared by ``nbx`` and ``nbx_binned``."""
    rank = comm.rank
    engine = comm.engine
    prof = comm.cluster.profiler
    result: Dict[int, np.ndarray] = {}

    send_reqs: List[Request] = []
    for dst in _send_schedule(comm, payloads, binned):
        send_reqs.append((yield from comm.isend(payloads[dst], dst, base)))

    # completion of the local sends, tracked off the critical path so a
    # rendezvous send never blocks discovery (the classic NBX deadlock)
    all_sent = engine.future(f"nbx-sent@{comm.grank}")

    def _drain_sends() -> Generator:
        try:
            yield from Request.waitall(send_reqs)
        except BaseException as exc:
            if not all_sent.done:
                all_sent.set_exception(exc)
        else:
            if not all_sent.done:
                all_sent.set_result(None)

    engine.spawn(_drain_sends(), f"nbx-sends@{comm.grank}")

    barrier_done = None  # the consensus future, once the barrier starts
    recv_reqs: List[Request] = []
    rounds = 0

    def _drain_probes() -> None:
        while True:
            st = comm.iprobe(tag=base)
            if st is None:
                return
            buf = np.empty(st.nbytes // 8, dtype=np.float64)
            result[st.source] = buf
            recv_reqs.append(comm.irecv(buf, st.source, base))

    while True:
        rounds += 1
        _drain_probes()
        if barrier_done is not None and barrier_done.done:
            barrier_done.value  # re-raise a consensus failure
            break
        if barrier_done is None and all_sent.done:
            all_sent.value  # re-raise a send failure
            barrier_done = ibarrier(comm, base + _BARRIER_TAG_OFFSET)
            continue
        # sleep until an incoming message becomes probe-visible OR one of
        # the tracked futures fires, whichever happens first (the manual
        # probe waiter mirrors Comm.probe; crash sweeps poison it)
        waits = [f for f in (all_sent, barrier_done)
                 if f is not None and not f.done]
        probe_fut = engine.future(f"nbx-probe@{comm.grank}")
        probe_rrec = _RecvRecord(ANY_SOURCE, base, comm.ctx, None, None,
                                 False, comm)
        waiters = getattr(comm.cluster, "_probe_waiters", None)
        if waiters is None:
            waiters = comm.cluster._probe_waiters = {}
        entry = (probe_rrec, probe_fut)
        waiters.setdefault(comm.grank, []).append(entry)
        yield from _first_of(engine, probe_fut, *waits)
        pending = waiters.get(comm.grank, [])
        if entry in pending:
            pending.remove(entry)
        if probe_fut.done:
            probe_fut.value  # discard the record; re-raise crash poison

    # the barrier completed: every rank posted its sends before entering
    # it, and posting makes a message probe-visible instantly in this
    # simulator -- so one final drain observes everything outstanding
    _drain_probes()
    yield from Request.waitall(recv_reqs)
    if prof.enabled:
        prof.observe("repro_nbx_consensus_rounds", rounds)
    local = payloads.get(rank)
    if local is not None:
        result[rank] = _as_f64(local)
    return result


def _nbx(comm: Comm, payloads: Dict[int, Any], base: int) -> Generator:
    result = yield from _nbx_exchange(comm, payloads, base, binned=False)
    return result


def _nbx_binned(comm: Comm, payloads: Dict[int, Any], base: int) -> Generator:
    result = yield from _nbx_exchange(comm, payloads, base, binned=True)
    return result


# -- registry entries (alpha-beta estimates are advisory priors) --------------

def _consensus_sweeps(ctx: SelectionContext) -> float:
    rounds = math.ceil(math.log2(max(ctx.size, 2)))
    return 2 * rounds * (ctx.cost.alpha + ctx.cost.beta * _CTRL_BYTES)


def _est_dense(ctx: SelectionContext) -> float:
    c = ctx.cost
    # a full counts sweep (one word per peer) plus the nonzero transfers
    return ((ctx.size - 1) * (c.alpha + c.beta * 8)
            + ctx.nonzero * c.alpha + c.beta * ctx.total_bytes)


def _est_nbx(ctx: SelectionContext) -> float:
    c = ctx.cost
    return (_consensus_sweeps(ctx)
            + ctx.nonzero * c.alpha + c.beta * ctx.total_bytes)


def _est_nbx_binned(ctx: SelectionContext) -> float:
    c = ctx.cost
    # small-before-large shaves eager head-of-line blocking on mixed sets
    small = sum(1 for v in ctx.volumes
                if 0 < v < c.small_message_threshold)
    return _est_nbx(ctx) - 0.5 * small * c.alpha


def _needs_peers(ctx: SelectionContext) -> bool:
    return ctx.size >= 2


REGISTRY.register_fn(
    "sparse_alltoall", "dense", estimator=_est_dense,
    description="alltoall of per-peer counts then point-to-point (baseline)",
)(_sparse_dense)
REGISTRY.register_fn(
    "sparse_alltoall", "nbx", predicate=_needs_peers, estimator=_est_nbx,
    description="NBX nonblocking consensus: probe discovery + ibarrier",
)(_nbx)
REGISTRY.register_fn(
    "sparse_alltoall", "nbx_binned", predicate=_needs_peers,
    estimator=_est_nbx_binned,
    description="NBX with ring-ordered sends, small (eager) before large",
)(_nbx_binned)
