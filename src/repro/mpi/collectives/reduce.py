"""Reduction collectives on typed numpy data: reduce, allreduce-array, scan.

These complement the control-plane object collectives in
:mod:`repro.mpi.collectives.basic` with array reductions used by solvers
and assembly (e.g. summing overlapping matrix contributions).  Algorithms
are the standard MPICH2 ones, registered with
:data:`repro.mpi.algorithms.REGISTRY`:

- ``reduce``: ``binomial`` tree (message size constant per hop),
- ``allreduce_array``: ``recursive_doubling`` with the non-power-of-two
  pre/post fold,
- ``scan``: inclusive prefix reduction, sequential-``doubling`` pattern.

All operate elementwise on float64 arrays with a commutative-associative
numpy ufunc (``np.add`` by default).
"""

from __future__ import annotations

import math
from typing import Callable, Generator

import numpy as np

from repro.mpi.algorithms import REGISTRY, SelectionContext, select
from repro.mpi.comm import Comm, MPIError
from repro.mpi.collectives.basic import _tag_window


def _check_buf(buf) -> np.ndarray:
    arr = np.asarray(buf, dtype=np.float64)
    if arr.ndim != 1:
        raise MPIError("reduction buffers must be 1-D float64 arrays")
    return arr


def _ctx(comm: Comm, collective: str, send: np.ndarray) -> SelectionContext:
    return SelectionContext.for_comm(
        comm, collective, volumes=[send.nbytes] * comm.size,
        dtype_size=send.itemsize,
    )


def reduce(comm: Comm, sendbuf, recvbuf=None, op: Callable = np.add,
           root: int = 0) -> Generator:
    """Elementwise reduction to ``root``.

    On ``root``, ``recvbuf`` receives the result (a fresh array is returned
    if not supplied); other ranks return None.
    """
    if not 0 <= root < comm.size:
        raise MPIError(f"invalid root {root}")
    send = _check_buf(sendbuf)
    base = _tag_window(comm, op="reduce", detail=root)
    decision = select(comm, "reduce", _ctx(comm, "reduce", send))
    with comm.cluster.profiler.span("collective", "reduce", comm.grank,
                                    root=root, nbytes=send.nbytes,
                                    algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("reduce", decision.algorithm)
        acc = yield from impl(comm, send, op, root, base)
    if comm.rank != root:
        return None
    if recvbuf is None:
        return acc
    out = _check_buf(recvbuf)
    out[:] = acc
    return out


def _reduce_binomial(comm, send, op, root, base) -> Generator:
    """Binomial-tree reduction; returns the accumulator (root only)."""
    n, rank = comm.size, comm.rank
    rel = (rank - root) % n
    acc = send.copy()
    mask = 1
    while mask < n:
        if rel & mask:
            parent = (rank - mask) % n
            req = yield from comm.isend(acc, parent, base)
            yield from req.wait()
            acc = None
            break
        # receive from the child at distance `mask`, if it exists
        if rel + mask < n:
            child = (rank + mask) % n
            incoming = np.empty_like(send)
            yield from comm.recv(incoming, child, base)
            acc = op(acc, incoming)
        mask <<= 1
    return acc


def allreduce_array(comm: Comm, sendbuf, recvbuf=None,
                    op: Callable = np.add) -> Generator:
    """Elementwise allreduce over float64 arrays."""
    send = _check_buf(sendbuf)
    base = _tag_window(comm, op="allreduce_array")
    acc = send.copy()
    if comm.size > 1:
        decision = select(comm, "allreduce_array",
                          _ctx(comm, "allreduce_array", send))
        with comm.cluster.profiler.span("collective", "allreduce_array",
                                        comm.grank, nbytes=send.nbytes,
                                        algorithm=decision.algorithm,
                                        policy=decision.policy):
            impl = REGISTRY.implementation("allreduce_array",
                                           decision.algorithm)
            acc = yield from impl(comm, send, op, base)
    if recvbuf is None:
        return acc
    out = _check_buf(recvbuf)
    out[:] = acc
    return out


def _allreduce_rd_array(comm, send, op, base) -> Generator:
    """Recursive doubling with the non-power-of-two pre/post fold."""
    n, rank = comm.size, comm.rank
    acc = send.copy()
    p2 = 1
    while p2 * 2 <= n:
        p2 *= 2
    extra = n - p2
    if rank < 2 * extra:
        if rank % 2 == 0:
            req = yield from comm.isend(acc, rank + 1, base)
            yield from req.wait()
            newrank = -1
        else:
            incoming = np.empty_like(acc)
            yield from comm.recv(incoming, rank - 1, base)
            acc = op(acc, incoming)
            newrank = rank // 2
    else:
        newrank = rank - extra
    if newrank >= 0:
        mask = 1
        k = 1
        while mask < p2:
            partner_new = newrank ^ mask
            partner = (partner_new * 2 + 1 if partner_new < extra
                       else partner_new + extra)
            incoming = np.empty_like(acc)
            rreq = comm.irecv(incoming, partner, base + k)
            sreq = yield from comm.isend(acc, partner, base + k)
            yield from rreq.wait()
            yield from sreq.wait()
            acc = op(acc, incoming)
            mask <<= 1
            k += 1
    if rank < 2 * extra:
        if rank % 2 == 0:
            acc = np.empty_like(send)
            yield from comm.recv(acc, rank + 1, base + 60)
        else:
            req = yield from comm.isend(acc, rank - 1, base + 60)
            yield from req.wait()
    return acc


def scan(comm: Comm, sendbuf, recvbuf=None, op: Callable = np.add) -> Generator:
    """Inclusive prefix reduction: rank r gets op(send_0, ..., send_r)."""
    send = _check_buf(sendbuf)
    base = _tag_window(comm, op="scan")
    decision = select(comm, "scan", _ctx(comm, "scan", send))
    with comm.cluster.profiler.span("collective", "scan", comm.grank,
                                    nbytes=send.nbytes,
                                    algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("scan", decision.algorithm)
        prefix = yield from impl(comm, send, op, base)
    if recvbuf is None:
        return prefix
    out = _check_buf(recvbuf)
    out[:] = prefix
    return out


def _scan_doubling(comm, send, op, base) -> Generator:
    """Standard doubling scan: in phase p, rank r sends its *total* so far
    to rank r + 2^p and folds what it receives from rank r - 2^p into both
    its prefix and its total."""
    n, rank = comm.size, comm.rank
    prefix = send.copy()
    total = send.copy()
    dist = 1
    phase = 0
    while dist < n:
        reqs = []
        if rank + dist < n:
            reqs.append((yield from comm.isend(total, rank + dist,
                                               base + phase)))
        if rank - dist >= 0:
            incoming = np.empty_like(send)
            yield from comm.recv(incoming, rank - dist, base + phase)
            prefix = op(incoming, prefix)
            total = op(incoming, total)
        for req in reqs:
            yield from req.wait()
        dist <<= 1
        phase += 1
    return prefix


# -- registry entries (alpha-beta estimates are advisory priors) --------------

def _est_log_tree(ctx: SelectionContext) -> float:
    phases = math.ceil(math.log2(max(ctx.size, 2)))
    return phases * (ctx.cost.alpha + ctx.cost.beta * ctx.max_bytes)


REGISTRY.register_fn(
    "reduce", "binomial", estimator=_est_log_tree,
    description="binomial tree; constant message size per hop",
)(_reduce_binomial)
REGISTRY.register_fn(
    "allreduce_array", "recursive_doubling", estimator=_est_log_tree,
    description="recursive doubling with non-power-of-two pre/post fold",
)(_allreduce_rd_array)
REGISTRY.register_fn(
    "scan", "doubling", estimator=_est_log_tree,
    description="inclusive prefix reduction, sequential-doubling pattern",
)(_scan_doubling)
