"""Collective communication algorithms.

Every module registers its candidate implementations with
:data:`repro.mpi.algorithms.REGISTRY`; *which* one a call gets is decided
by the configuration's selection policy
(:mod:`repro.mpi.algorithms.policies`), not inline in these modules.

- :mod:`repro.mpi.collectives.basic` -- barrier (dissemination), bcast
  (binomial tree), allreduce (recursive doubling), gather -- the
  control-plane operations PETSc needs,
- :mod:`repro.mpi.collectives.allgatherv` -- ring, recursive-doubling and
  dissemination candidates; the paper's adaptive outlier-detecting rule
  (section 4.2.1) lives in the ``adaptive`` selection policy,
- :mod:`repro.mpi.collectives.alltoallw` -- round-robin baseline and the
  paper's three-bin variant (section 4.2.2),
- :mod:`repro.mpi.collectives.gather` / ``reduce`` -- the uniform-volume
  and reduction counterparts (linear gatherv/scatterv, pairwise alltoall,
  binomial reduce, recursive-doubling allreduce, doubling scan).
"""
