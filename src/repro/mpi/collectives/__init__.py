"""Collective communication algorithms.

- :mod:`repro.mpi.collectives.basic` -- barrier (dissemination), bcast
  (binomial tree), allreduce (recursive doubling), gather -- the
  control-plane operations PETSc needs,
- :mod:`repro.mpi.collectives.allgatherv` -- ring, recursive-doubling,
  dissemination and the paper's adaptive outlier-detecting variant
  (section 4.2.1),
- :mod:`repro.mpi.collectives.alltoallw` -- round-robin baseline and the
  paper's three-bin variant (section 4.2.2).
"""
