"""Typed gather/scatter collectives: gatherv, scatterv, allgather, alltoall.

The uniform-volume counterparts of the paper's headline collectives,
implemented with the standard MPICH2 algorithms and registered with
:data:`repro.mpi.algorithms.REGISTRY`:

- ``gatherv`` / ``scatterv``: linear to/from the root (MPICH2 uses a
  binomial tree only for the uniform gather; the v-variants are linear),
- ``allgather``: delegates to the Allgatherv machinery with uniform counts
  (so the ring/recursive-doubling/dissemination selection logic applies),
- ``alltoall``: pairwise-exchange algorithm for uniform volumes.

Counts/displacement validation is shared with the other v-collectives via
:func:`repro.mpi.algorithms.validation.normalize_counts_displs`.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import Datatype, Primitive
from repro.mpi.algorithms import REGISTRY, SelectionContext, select
from repro.mpi.algorithms.validation import normalize_counts_displs
from repro.mpi.comm import Comm, MPIError
from repro.mpi.collectives.basic import _tag_window
from repro.mpi.request import Request


def _dtype_of(arr: np.ndarray, datatype: Optional[Datatype]) -> Datatype:
    if datatype is not None:
        return datatype
    return Primitive(str(arr.dtype).upper(), arr.dtype)


def gatherv(
    comm: Comm,
    sendbuf,
    recvbuf=None,
    counts: Optional[Sequence[int]] = None,
    displs: Optional[Sequence[int]] = None,
    root: int = 0,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Gather varying-size contributions at ``root``."""
    if not 0 <= root < comm.size:
        raise MPIError(f"invalid root {root}")
    base = _tag_window(comm, op="gatherv", detail=root)
    decision = select(comm, "gatherv",
                      SelectionContext.for_comm(comm, "gatherv"))
    with comm.cluster.profiler.span("collective", "gatherv", comm.grank,
                                    root=root, algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("gatherv", decision.algorithm)
        result = yield from impl(comm, sendbuf, recvbuf, counts, displs,
                                 root, datatype, base)
    return result


def _gatherv_linear(comm, sendbuf, recvbuf, counts, displs, root, datatype,
                    base) -> Generator:
    """Linear gatherv: every contributing rank sends straight to the root."""
    send = np.asarray(sendbuf)
    if comm.rank != root:
        if send.size:  # zero contributions send nothing (no root recv)
            req = yield from comm.isend(send, root, base)
            yield from req.wait()
        return None
    if counts is None or recvbuf is None:
        raise MPIError("root must supply counts and recvbuf")
    counts, displs = normalize_counts_displs(comm.size, counts, displs)
    recv = np.asarray(recvbuf)
    dt = _dtype_of(recv, datatype)
    requests = []
    for src in range(comm.size):
        if src == root or counts[src] == 0:
            continue
        tb = TypedBuffer(recv, dt, counts[src],
                         offset_bytes=displs[src] * dt.extent)
        requests.append(comm.irecv(tb, src, base))
    # own contribution
    if counts[root]:
        own = TypedBuffer(recv, dt, counts[root],
                          offset_bytes=displs[root] * dt.extent)
        own.unpack(TypedBuffer(send, dt, counts[root]).pack())
        yield from comm.cpu(counts[root] * dt.size * comm.cost.copy_byte,
                            "pack")
    yield from Request.waitall(requests)
    return recv


def scatterv(
    comm: Comm,
    sendbuf=None,
    counts: Optional[Sequence[int]] = None,
    displs: Optional[Sequence[int]] = None,
    recvbuf=None,
    root: int = 0,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Scatter varying-size pieces from ``root``."""
    if not 0 <= root < comm.size:
        raise MPIError(f"invalid root {root}")
    base = _tag_window(comm, op="scatterv", detail=root)
    if recvbuf is None:
        raise MPIError("every rank must supply recvbuf")
    decision = select(comm, "scatterv",
                      SelectionContext.for_comm(comm, "scatterv"))
    with comm.cluster.profiler.span("collective", "scatterv", comm.grank,
                                    root=root, algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("scatterv", decision.algorithm)
        result = yield from impl(comm, sendbuf, counts, displs, recvbuf,
                                 root, datatype, base)
    return result


def _scatterv_linear(comm, sendbuf, counts, displs, recvbuf, root, datatype,
                     base) -> Generator:
    """Linear scatterv: the root sends each piece straight to its rank."""
    recv = np.asarray(recvbuf)
    if comm.rank != root:
        if recv.size:  # zero pieces are never sent by the root
            yield from comm.recv(recv, root, base)
        return recv
    if counts is None or sendbuf is None:
        raise MPIError("root must supply counts and sendbuf")
    counts, displs = normalize_counts_displs(comm.size, counts, displs)
    send = np.asarray(sendbuf)
    dt = _dtype_of(send, datatype)
    requests = []
    for dst in range(comm.size):
        if dst == root or counts[dst] == 0:
            continue
        tb = TypedBuffer(send, dt, counts[dst],
                         offset_bytes=displs[dst] * dt.extent)
        requests.append((yield from comm.isend(tb, dst, base)))
    if counts[root]:
        own = TypedBuffer(send, dt, counts[root],
                          offset_bytes=displs[root] * dt.extent)
        TypedBuffer(recv, dt, counts[root]).unpack(own.pack())
        yield from comm.cpu(counts[root] * dt.size * comm.cost.copy_byte,
                            "pack")
    yield from Request.waitall(requests)
    return recv


def allgather(
    comm: Comm,
    sendbuf,
    recvbuf,
    count: Optional[int] = None,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Uniform allgather: every rank contributes ``count`` elements."""
    from repro.mpi.collectives.allgatherv import allgatherv

    send = np.asarray(sendbuf)
    if count is None:
        count = send.size
    yield from allgatherv(comm, send, recvbuf, [count] * comm.size,
                          datatype=datatype)


def alltoall(
    comm: Comm,
    sendbuf,
    recvbuf,
    count: int,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Uniform all-to-all (pairwise-exchange algorithm)."""
    send = np.asarray(sendbuf)
    recv = np.asarray(recvbuf)
    dt = _dtype_of(recv, datatype)
    n = comm.size
    if send.size < n * count or recv.size < n * count:
        raise MPIError("alltoall buffers too small for count*size elements")
    base = _tag_window(comm, op="alltoall", detail=count)
    ctx = SelectionContext.for_comm(
        comm, "alltoall", volumes=[count * dt.size] * n,
        dtype_size=dt.size, contiguous=dt.is_contiguous(),
    )
    decision = select(comm, "alltoall", ctx)
    with comm.cluster.profiler.span("collective", "alltoall", comm.grank,
                                    count=count, algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("alltoall", decision.algorithm)
        yield from impl(comm, send, recv, count, dt, base)
    return recv


def _alltoall_pairwise(comm, send, recv, count, dt, base) -> Generator:
    """Pairwise exchange: in step k, rank r exchanges with rank ``r XOR k``
    (power-of-two sizes) or with ``(r + k) % N`` / ``(r - k) % N``."""
    n, rank = comm.size, comm.rank

    def block(arr, idx):
        return TypedBuffer(arr, dt, count, offset_bytes=idx * count * dt.extent)

    # local block
    block(recv, rank).unpack(block(send, rank).pack())
    yield from comm.cpu(count * dt.size * comm.cost.copy_byte, "pack")
    pow2 = n & (n - 1) == 0
    for k in range(1, n):
        if pow2:
            peer = rank ^ k
            sdst = rdst = peer
        else:
            sdst = (rank + k) % n
            rdst = (rank - k) % n
        rreq = comm.irecv(block(recv, rdst), rdst, base + k)
        sreq = yield from comm.isend(block(send, sdst), sdst, base + k)
        yield from rreq.wait()
        yield from sreq.wait()


# -- registry entries (alpha-beta estimates are advisory priors) --------------

def _est_linear_root(ctx: SelectionContext) -> float:
    return (ctx.size - 1) * ctx.cost.alpha + ctx.cost.beta * ctx.total_bytes


def _est_pairwise(ctx: SelectionContext) -> float:
    return (ctx.size - 1) * ctx.cost.alpha + ctx.cost.beta * ctx.total_bytes


REGISTRY.register_fn(
    "gatherv", "linear", estimator=_est_linear_root,
    description="every contributing rank sends straight to the root",
)(_gatherv_linear)
REGISTRY.register_fn(
    "scatterv", "linear", estimator=_est_linear_root,
    description="the root sends each piece straight to its rank",
)(_scatterv_linear)
REGISTRY.register_fn(
    "alltoall", "pairwise", estimator=_est_pairwise,
    description="N-1 pairwise exchange steps (XOR schedule for pow-2 N)",
)(_alltoall_pairwise)
