"""Typed gather/scatter collectives: gatherv, scatterv, allgather, alltoall.

The uniform-volume counterparts of the paper's headline collectives,
implemented with the standard MPICH2 algorithms:

- ``gatherv`` / ``scatterv``: linear to/from the root (MPICH2 uses a
  binomial tree only for the uniform gather; the v-variants are linear),
- ``allgather``: delegates to the Allgatherv machinery with uniform counts
  (so the ring/recursive-doubling/dissemination selection logic applies),
- ``alltoall``: pairwise-exchange algorithm for uniform volumes.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import Datatype, Primitive
from repro.mpi.comm import Comm, MPIError
from repro.mpi.collectives.basic import _tag_window
from repro.mpi.request import Request


def _dtype_of(arr: np.ndarray, datatype: Optional[Datatype]) -> Datatype:
    if datatype is not None:
        return datatype
    return Primitive(str(arr.dtype).upper(), arr.dtype)


def gatherv(
    comm: Comm,
    sendbuf,
    recvbuf=None,
    counts: Optional[Sequence[int]] = None,
    displs: Optional[Sequence[int]] = None,
    root: int = 0,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Gather varying-size contributions at ``root`` (linear algorithm)."""
    if not 0 <= root < comm.size:
        raise MPIError(f"invalid root {root}")
    send = np.asarray(sendbuf)
    base = _tag_window(comm, op="gatherv", detail=root)
    with comm.cluster.profiler.span("collective", "gatherv", comm.grank,
                                    root=root):
        if comm.rank != root:
            if send.size:  # zero contributions send nothing (no root recv)
                req = yield from comm.isend(send, root, base)
                yield from req.wait()
            return None
        if counts is None or recvbuf is None:
            raise MPIError("root must supply counts and recvbuf")
        counts = [int(c) for c in counts]
        if len(counts) != comm.size:
            raise MPIError(
                f"counts has {len(counts)} entries for {comm.size} ranks")
        recv = np.asarray(recvbuf)
        dt = _dtype_of(recv, datatype)
        if displs is None:
            displs = np.concatenate(([0], np.cumsum(counts[:-1]))).tolist()
        requests = []
        for src in range(comm.size):
            if src == root or counts[src] == 0:
                continue
            tb = TypedBuffer(recv, dt, counts[src],
                             offset_bytes=int(displs[src]) * dt.extent)
            requests.append(comm.irecv(tb, src, base))
        # own contribution
        if counts[root]:
            own = TypedBuffer(recv, dt, counts[root],
                              offset_bytes=int(displs[root]) * dt.extent)
            own.unpack(TypedBuffer(send, dt, counts[root]).pack())
            yield from comm.cpu(counts[root] * dt.size * comm.cost.copy_byte,
                                "pack")
        yield from Request.waitall(requests)
    return recv


def scatterv(
    comm: Comm,
    sendbuf=None,
    counts: Optional[Sequence[int]] = None,
    displs: Optional[Sequence[int]] = None,
    recvbuf=None,
    root: int = 0,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Scatter varying-size pieces from ``root`` (linear algorithm)."""
    if not 0 <= root < comm.size:
        raise MPIError(f"invalid root {root}")
    base = _tag_window(comm, op="scatterv", detail=root)
    if recvbuf is None:
        raise MPIError("every rank must supply recvbuf")
    recv = np.asarray(recvbuf)
    with comm.cluster.profiler.span("collective", "scatterv", comm.grank,
                                    root=root):
        if comm.rank != root:
            if recv.size:  # zero pieces are never sent by the root
                yield from comm.recv(recv, root, base)
            return recv
        if counts is None or sendbuf is None:
            raise MPIError("root must supply counts and sendbuf")
        counts = [int(c) for c in counts]
        if len(counts) != comm.size:
            raise MPIError(
                f"counts has {len(counts)} entries for {comm.size} ranks")
        send = np.asarray(sendbuf)
        dt = _dtype_of(send, datatype)
        if displs is None:
            displs = np.concatenate(([0], np.cumsum(counts[:-1]))).tolist()
        requests = []
        for dst in range(comm.size):
            if dst == root or counts[dst] == 0:
                continue
            tb = TypedBuffer(send, dt, counts[dst],
                             offset_bytes=int(displs[dst]) * dt.extent)
            requests.append((yield from comm.isend(tb, dst, base)))
        if counts[root]:
            own = TypedBuffer(send, dt, counts[root],
                              offset_bytes=int(displs[root]) * dt.extent)
            TypedBuffer(recv, dt, counts[root]).unpack(own.pack())
            yield from comm.cpu(counts[root] * dt.size * comm.cost.copy_byte,
                                "pack")
        yield from Request.waitall(requests)
    return recv


def allgather(
    comm: Comm,
    sendbuf,
    recvbuf,
    count: Optional[int] = None,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Uniform allgather: every rank contributes ``count`` elements."""
    from repro.mpi.collectives.allgatherv import allgatherv

    send = np.asarray(sendbuf)
    if count is None:
        count = send.size
    yield from allgatherv(comm, send, recvbuf, [count] * comm.size,
                          datatype=datatype)


def alltoall(
    comm: Comm,
    sendbuf,
    recvbuf,
    count: int,
    datatype: Optional[Datatype] = None,
) -> Generator:
    """Uniform all-to-all via the pairwise-exchange algorithm: in step k,
    rank r exchanges with rank ``r XOR k`` (power-of-two sizes) or with
    ``(r + k) % N`` / ``(r - k) % N`` otherwise."""
    send = np.asarray(sendbuf)
    recv = np.asarray(recvbuf)
    dt = _dtype_of(recv, datatype)
    n, rank = comm.size, comm.rank
    if send.size < n * count or recv.size < n * count:
        raise MPIError("alltoall buffers too small for count*size elements")
    base = _tag_window(comm, op="alltoall", detail=count)

    def block(arr, idx):
        return TypedBuffer(arr, dt, count, offset_bytes=idx * count * dt.extent)

    # local block
    with comm.cluster.profiler.span("collective", "alltoall", comm.grank,
                                    count=count):
        block(recv, rank).unpack(block(send, rank).pack())
        yield from comm.cpu(count * dt.size * comm.cost.copy_byte, "pack")
        pow2 = n & (n - 1) == 0
        for k in range(1, n):
            if pow2:
                peer = rank ^ k
                sdst = rdst = peer
            else:
                sdst = (rank + k) % n
                rdst = (rank - k) % n
            rreq = comm.irecv(block(recv, rdst), rdst, base + k)
            sreq = yield from comm.isend(block(send, sdst), sdst, base + k)
            yield from rreq.wait()
            yield from sreq.wait()
    return recv
