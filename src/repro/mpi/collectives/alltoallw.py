"""``MPI_Alltoallw`` algorithms (paper sections 3.2 and 4.2.2).

``alltoallw`` is the fully general collective: every pair of ranks may
exchange a different amount of data described by a different datatype --
including zero.  PETSc's ``VecScatter`` maps onto exactly this operation
(nearest-neighbour patterns with zero volume to almost everyone).

Two algorithms register with :data:`repro.mpi.algorithms.REGISTRY`:

``round_robin``
    Baseline (MPICH2 / MVAPICH2-0.9.5 behaviour per section 3.2): every
    process posts a receive from and a send to *every* rank -- even
    zero-byte pairs, which adds a pure synchronisation step per non-partner
    -- and processes the sends in round-robin rank order, so a large
    noncontiguous message that happens to come first delays every small
    message behind its datatype-processing time.

``binned``
    Optimised (section 4.2.2): each destination is placed in one of three
    bins -- **zero** (completely exempted: no message, no synchronisation),
    **small** (below ``cost.small_message_threshold``) and **large**.
    Small messages are processed and sent before large ones, so
    lightly-coupled neighbours are released without waiting behind heavy
    datatype processing.

Which algorithm a call gets is decided by
:func:`repro.mpi.algorithms.select` (the ``mpich`` policy always picks
``round_robin``, ``adaptive`` always ``binned``, matching the pre-registry
``config.binned_alltoallw`` flag dispatch bit for bit).

Per-pair datatype processing (the cost the binning hides) rides on
``comm.isend``, whose engines read each TypedBuffer's block structure from
the shared :mod:`repro.datatypes.ir` compile cache -- a VecScatter reusing
the same per-peer layouts every application pays compilation once.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import BYTE
from repro.mpi.algorithms import REGISTRY, SelectionContext, select
from repro.mpi.algorithms.validation import check_spec_lengths
from repro.mpi.comm import Comm, MPIError
from repro.mpi.collectives.basic import _tag_window
from repro.mpi.request import Request


def _spec_nbytes(spec: Optional[TypedBuffer]) -> int:
    return 0 if spec is None else spec.nbytes


def alltoallw(
    comm: Comm,
    sendspecs: Sequence[Optional[TypedBuffer]],
    recvspecs: Sequence[Optional[TypedBuffer]],
    algorithm: Optional[str] = None,
) -> Generator:
    """General all-to-all with per-peer typed buffers.

    ``sendspecs[i]`` / ``recvspecs[i]`` describe the data exchanged with
    rank ``i`` (``None`` or a zero-count buffer means no data).
    ``algorithm`` forces a specific algorithm (for microbenchmarks); by
    default the configuration's selection policy runs.
    """
    check_spec_lengths(comm.size, sendspecs, recvspecs)
    volumes = [_spec_nbytes(s) for s in sendspecs]
    prof = comm.cluster.profiler
    with prof.span("collective", "alltoallw", comm.grank,
                   send_bytes=sum(volumes)) as sp:
        ctx = SelectionContext.for_comm(comm, "alltoallw", volumes=volumes)
        decision = select(comm, "alltoallw", ctx, algorithm=algorithm)
        if decision.detect_seconds:
            yield from comm.cpu(decision.detect_seconds, "compute")
        sp.attrs["algorithm"] = decision.algorithm
        sp.attrs["policy"] = decision.policy

        impl = REGISTRY.implementation("alltoallw", decision.algorithm)
        yield from impl(comm, sendspecs, recvspecs)


def _local_copy(comm: Comm, sendspecs, recvspecs) -> Generator:
    """Self-exchange: a straight memory copy."""
    stb, rtb = sendspecs[comm.rank], recvspecs[comm.rank]
    sn, rn = _spec_nbytes(stb), _spec_nbytes(rtb)
    if sn != rn:
        raise MPIError(f"self-exchange size mismatch on rank {comm.rank}: {sn} != {rn}")
    if sn:
        rtb.unpack(stb.pack())
        yield from comm.cpu(2 * sn * comm.cost.copy_byte, "pack")


def _round_robin(comm: Comm, sendspecs, recvspecs) -> Generator:
    """Baseline: message to every rank, zero-byte included, in rank order."""
    base = _tag_window(comm, op="alltoallw")
    n, rank = comm.size, comm.rank
    prof = comm.cluster.profiler
    yield from _local_copy(comm, sendspecs, recvspecs)
    requests: list[Request] = []
    # post all receives up front (MPICH2 posts irecvs first), including
    # zero-byte receives from non-partners
    for i in range(1, n):
        src = (rank - i) % n
        rtb = recvspecs[src]
        if rtb is not None and rtb.count > 0:
            requests.append(comm.irecv(rtb, src, base))
        else:
            requests.append(comm.irecv(_zero_buffer(), src, base))
    # sends in round-robin rank order; datatype processing happens at isend
    # time, so a large noncontiguous peer stalls everyone after it
    for i in range(1, n):
        dst = (rank + i) % n
        stb = sendspecs[dst]
        if stb is not None and stb.count > 0:
            requests.append((yield from comm.isend(stb, dst, base)))
        else:
            requests.append((yield from comm.isend(_zero_buffer(), dst, base)))
    yield from Request.waitall(requests)
    if prof.enabled:
        # baseline sends a (possibly zero-byte) message to every peer
        zeros = sum(1 for s in sendspecs if _spec_nbytes(s) == 0) - \
            (1 if _spec_nbytes(sendspecs[rank]) == 0 else 0)
        prof.observe("repro_alltoallw_zero_bin_size", zeros)


def _binned(comm: Comm, sendspecs, recvspecs) -> Generator:
    """Optimised: zero bin exempted; small bin processed before large."""
    base = _tag_window(comm, op="alltoallw")
    n, rank = comm.size, comm.rank
    prof = comm.cluster.profiler
    threshold = comm.cost.small_message_threshold
    yield from _local_copy(comm, sendspecs, recvspecs)
    requests: list[Request] = []
    for i in range(1, n):
        src = (rank - i) % n
        rtb = recvspecs[src]
        if rtb is not None and rtb.count > 0:
            requests.append(comm.irecv(rtb, src, base))
    small: list[int] = []
    large: list[int] = []
    zeros = 0
    for i in range(1, n):
        dst = (rank + i) % n
        nbytes = _spec_nbytes(sendspecs[dst])
        if nbytes == 0:
            zeros += 1
            continue  # the zero bin: completely exempted
        (small if nbytes < threshold else large).append(dst)
    if prof.enabled:
        prof.count("repro_zero_byte_elided_total", zeros)
        prof.observe("repro_alltoallw_zero_bin_size", zeros)
        prof.observe("repro_alltoallw_small_bin_size", len(small))
        prof.observe("repro_alltoallw_large_bin_size", len(large))
    if small:
        with prof.span("phase", "small_bin", comm.grank, peers=len(small)):
            for dst in small:
                requests.append((yield from comm.isend(sendspecs[dst], dst, base)))
    if large:
        with prof.span("phase", "large_bin", comm.grank, peers=len(large)):
            for dst in large:
                requests.append((yield from comm.isend(sendspecs[dst], dst, base)))
    yield from Request.waitall(requests)


def _zero_buffer() -> TypedBuffer:
    return TypedBuffer(np.empty(0, dtype=np.uint8), BYTE, count=0)


# -- registry entries (alpha-beta estimates are advisory priors) --------------

def _est_round_robin(ctx: SelectionContext) -> float:
    c = ctx.cost
    # one message per peer, zero-byte ones included
    return (ctx.size - 1) * c.alpha + c.beta * ctx.total_bytes


def _est_binned(ctx: SelectionContext) -> float:
    c = ctx.cost
    # only nonzero peers cost a message; the zero bin is exempt
    return ctx.nonzero * c.alpha + c.beta * ctx.total_bytes


REGISTRY.register_fn(
    "alltoallw", "round_robin", estimator=_est_round_robin,
    description="message to every peer in rank order (MPICH2 baseline)",
)(_round_robin)
REGISTRY.register_fn(
    "alltoallw", "binned", estimator=_est_binned,
    description="zero bin exempted; small messages sent before large",
)(_binned)
