"""``MPI_Allgatherv`` algorithms (paper sections 3.2 and 4.2.1).

Three algorithms register with :data:`repro.mpi.algorithms.REGISTRY`:

``ring``
    MPICH2's large-message algorithm: N-1 steps around a logical ring, each
    rank forwarding the block it received in the previous step.  Optimal for
    *uniform* volumes (fully pipelined, every link busy) but serialises a
    single large block behind N-1 sequential hops (Fig. 8).

``recursive_doubling``
    log2(N) pairwise exchange phases, power-of-two N only (Fig. 10).  A
    large block travels a binomial tree: after it first moves, two ranks
    forward it simultaneously, then four, ...

``dissemination``
    ceil(log2 N) phases for arbitrary N (Fig. 11, Han & Finkel): in phase p
    rank i sends everything it holds to rank i + 2^p and receives from rank
    i - 2^p.

*Which* algorithm a call gets is no longer decided here: the entry function
asks :func:`repro.mpi.algorithms.select`, so the baseline thresholds
(``mpich`` policy), the paper's section 4.2.1 outlier rule (``adaptive``
policy, Floyd-Rivest k-select over the volume set) and tuning-table lookups
(``autotuned``) all share one observable decision point.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import Datatype, HIndexed, Primitive
from repro.mpi.algorithms import REGISTRY, SelectionContext, select
from repro.mpi.algorithms.validation import normalize_counts_displs
from repro.mpi.comm import Comm, MPIError, as_typed
from repro.mpi.collectives.basic import _tag_window


def _normalize(comm, sendbuffer, recvbuffer, counts, displs, datatype):
    recvbuffer = np.asarray(recvbuffer)
    if datatype is None:
        datatype = Primitive(str(recvbuffer.dtype).upper(), recvbuffer.dtype)
    counts, displs = normalize_counts_displs(comm.size, counts, displs)
    return recvbuffer, datatype, counts, displs


def _block_tb(recvbuffer, datatype, counts, displs, block) -> Optional[TypedBuffer]:
    """TypedBuffer covering one rank's contribution region of recvbuffer.

    Rebuilt per call, but cheap: the (datatype, count) pair resolves in the
    :mod:`repro.datatypes.ir` compile cache, so every ring step reuses the
    same plan and ``BlockList`` (the per-rank regions differ only in their
    ``offset_bytes``, which the copy program applies at execution).
    """
    if counts[block] == 0:
        return None
    return TypedBuffer(
        recvbuffer, datatype, count=counts[block],
        offset_bytes=displs[block] * datatype.extent,
    )


def _blocks_tb(recvbuffer, datatype, counts, displs, blocks) -> Optional[TypedBuffer]:
    """TypedBuffer covering several contribution regions, in ``blocks`` order."""
    nz = [b for b in blocks if counts[b] > 0]
    if not nz:
        return None
    if len(nz) == 1:
        return _block_tb(recvbuffer, datatype, counts, displs, nz[0])
    dt = HIndexed(
        [counts[b] for b in nz],
        [displs[b] * datatype.extent for b in nz],
        datatype if datatype.is_contiguous() else _flat_base(datatype),
    )
    return TypedBuffer(recvbuffer, dt)


def _flat_base(datatype: Datatype) -> Datatype:
    raise MPIError("allgatherv over non-contiguous element types not supported")


def _copy_own(comm, sendbuffer, recvbuffer, datatype, counts, displs) -> Generator:
    """Place this rank's contribution into its own recvbuffer region."""
    own = _block_tb(recvbuffer, datatype, counts, displs, comm.rank)
    if own is None:
        return
    stb = as_typed(sendbuffer, datatype, counts[comm.rank])
    if stb.nbytes != own.nbytes:
        raise MPIError(
            f"rank {comm.rank}: send payload {stb.nbytes}B != declared "
            f"count {counts[comm.rank]}"
        )
    own.unpack(stb.pack())
    yield from comm.cpu(stb.nbytes * comm.cost.copy_byte, "pack")


def allgatherv(
    comm: Comm,
    sendbuffer,
    recvbuffer,
    counts: Sequence[int],
    displs: Optional[Sequence[int]] = None,
    datatype: Optional[Datatype] = None,
    algorithm: Optional[str] = None,
) -> Generator:
    """Gather varying-size contributions from every rank onto every rank.

    ``algorithm`` forces a specific algorithm (for microbenchmarks); by
    default the configuration's selection policy runs
    (:mod:`repro.mpi.algorithms.policies`).
    """
    recvbuffer, datatype, counts, displs = _normalize(
        comm, sendbuffer, recvbuffer, counts, displs, datatype
    )
    prof = comm.cluster.profiler
    with prof.span("collective", "allgatherv", comm.grank,
                   total_bytes=sum(counts) * datatype.size) as sp:
        yield from _copy_own(comm, sendbuffer, recvbuffer, datatype, counts, displs)
        if comm.size == 1:
            sp.attrs["algorithm"] = "trivial"
            return

        ctx = SelectionContext.for_comm(
            comm, "allgatherv",
            volumes=[c * datatype.size for c in counts],
            dtype_size=datatype.size,
            contiguous=datatype.is_contiguous(),
        )
        decision = select(comm, "allgatherv", ctx, algorithm=algorithm)
        if decision.detect_seconds:
            # charge the linear-time Floyd-Rivest detection pass
            yield from comm.cpu(decision.detect_seconds, "compute")
        sp.attrs["algorithm"] = decision.algorithm
        sp.attrs["policy"] = decision.policy

        impl = REGISTRY.implementation("allgatherv", decision.algorithm)
        yield from impl(comm, recvbuffer, datatype, counts, displs)


def _ring(comm, recvbuffer, datatype, counts, displs) -> Generator:
    base = _tag_window(comm, op="allgatherv", detail=tuple(int(c) for c in counts))
    n, rank = comm.size, comm.rank
    prof = comm.cluster.profiler
    right = (rank + 1) % n
    left = (rank - 1) % n
    for step in range(n - 1):
        send_block = (rank - step) % n
        recv_block = (rank - step - 1) % n
        stb = _block_tb(recvbuffer, datatype, counts, displs, send_block)
        rtb = _block_tb(recvbuffer, datatype, counts, displs, recv_block)
        with prof.span("phase", "ring_hop", comm.grank, step=step,
                       send_block=send_block, recv_block=recv_block):
            yield from _exchange(comm, stb, right, rtb, left, base + step)


def _recursive_doubling(comm, recvbuffer, datatype, counts, displs) -> Generator:
    n, rank = comm.size, comm.rank
    if n & (n - 1):
        raise MPIError("recursive doubling requires a power-of-two size")
    base = _tag_window(comm, op="allgatherv", detail=tuple(int(c) for c in counts))
    mask = 1
    phase = 0
    while mask < n:
        partner = rank ^ mask
        my_group = rank & ~(mask - 1)
        partner_group = partner & ~(mask - 1)
        send_blocks = range(my_group, my_group + mask)
        recv_blocks = range(partner_group, partner_group + mask)
        stb = _blocks_tb(recvbuffer, datatype, counts, displs, send_blocks)
        rtb = _blocks_tb(recvbuffer, datatype, counts, displs, recv_blocks)
        with comm.cluster.profiler.span("phase", "rd_step", comm.grank,
                                        phase=phase, partner=partner):
            yield from _exchange(comm, stb, partner, rtb, partner, base + phase)
        mask <<= 1
        phase += 1


def _dissemination(comm, recvbuffer, datatype, counts, displs) -> Generator:
    n, rank = comm.size, comm.rank
    base = _tag_window(comm, op="allgatherv", detail=tuple(int(c) for c in counts))
    dist = 1
    phase = 0
    while dist < n:
        dst = (rank + dist) % n
        src = (rank - dist) % n
        nblocks = min(dist, n - dist)
        send_blocks = [(rank - j) % n for j in range(nblocks)]
        recv_blocks = [(src - j) % n for j in range(nblocks)]
        stb = _blocks_tb(recvbuffer, datatype, counts, displs, send_blocks)
        rtb = _blocks_tb(recvbuffer, datatype, counts, displs, recv_blocks)
        with comm.cluster.profiler.span("phase", "dissemination_phase",
                                        comm.grank, phase=phase,
                                        dst=dst, src=src):
            yield from _exchange(comm, stb, dst, rtb, src, base + phase)
        dist <<= 1
        phase += 1


def _exchange(comm, stb, dst, rtb, src, tag) -> Generator:
    """Pairwise sendrecv where either side may be empty.

    Each request is created and completed on the same control-flow path
    (rather than `x = .. if cond else None` + a correlated `if x` wait)
    so the REQ1xx lifetime analysis can verify every wait statically.
    """
    if stb is not None and rtb is not None:
        rreq = comm.irecv(rtb, src, tag)
        sreq = yield from comm.isend(stb, dst, tag)
        yield from rreq.wait()
        yield from sreq.wait()
    elif rtb is not None:
        rreq = comm.irecv(rtb, src, tag)
        yield from rreq.wait()
    elif stb is not None:
        sreq = yield from comm.isend(stb, dst, tag)
        yield from sreq.wait()


# -- registry entries (alpha-beta estimates are advisory priors) --------------

def _est_ring(ctx: SelectionContext) -> float:
    c = ctx.cost
    vmax, total = ctx.max_bytes, ctx.total_bytes
    return ((ctx.size - 1) * (c.alpha + c.beta * vmax)
            + c.beta * (total - vmax))


def _est_tree(ctx: SelectionContext) -> float:
    import math

    c = ctx.cost
    phases = math.ceil(math.log2(max(ctx.size, 2)))
    return phases * c.alpha + c.beta * ctx.total_bytes


REGISTRY.register_fn(
    "allgatherv", "ring", estimator=_est_ring,
    description="N-1 hop logical ring (MPICH2 long-message algorithm)",
)(_ring)
REGISTRY.register_fn(
    "allgatherv", "recursive_doubling",
    predicate=lambda ctx: ctx.pow2 and ctx.contiguous,
    estimator=_est_tree,
    description="log2(N) pairwise exchanges; power-of-two, contiguous types",
)(_recursive_doubling)
REGISTRY.register_fn(
    "allgatherv", "dissemination",
    predicate=lambda ctx: ctx.contiguous,
    estimator=_est_tree,
    description="ceil(log2 N) Han-Finkel phases; contiguous element types",
)(_dissemination)
