"""``MPI_Allgatherv`` algorithms (paper sections 3.2 and 4.2.1).

Four algorithms are provided:

``ring``
    MPICH2's large-message algorithm: N-1 steps around a logical ring, each
    rank forwarding the block it received in the previous step.  Optimal for
    *uniform* volumes (fully pipelined, every link busy) but serialises a
    single large block behind N-1 sequential hops (Fig. 8).

``recursive_doubling``
    log2(N) pairwise exchange phases, power-of-two N only (Fig. 10).  A
    large block travels a binomial tree: after it first moves, two ranks
    forward it simultaneously, then four, ...

``dissemination``
    ceil(log2 N) phases for arbitrary N (Fig. 11, Han & Finkel): in phase p
    rank i sends everything it holds to rank i + 2^p and receives from rank
    i - 2^p.

``adaptive``
    The paper's section 4.2.1 design: compute the outlier ratio of the
    (locally known) volume set with Floyd-Rivest k-select; when a small
    subset of volumes is far above the bulk, abandon the ring in favour of
    recursive doubling / dissemination.

The baseline configuration follows MPICH2: recursive doubling (pow-2) or
dissemination (non-pow-2) for short totals, ring for long totals.  The
optimised configuration runs the adaptive algorithm.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import Datatype, HIndexed, Primitive
from repro.mpi import outlier
from repro.mpi.comm import Comm, MPIError, as_typed
from repro.mpi.collectives.basic import _tag_window


def _normalize(comm, sendbuffer, recvbuffer, counts, displs, datatype):
    recvbuffer = np.asarray(recvbuffer)
    if datatype is None:
        datatype = Primitive(str(recvbuffer.dtype).upper(), recvbuffer.dtype)
    counts = [int(c) for c in counts]
    if len(counts) != comm.size:
        raise MPIError(f"counts has {len(counts)} entries for {comm.size} ranks")
    if any(c < 0 for c in counts):
        raise MPIError("negative count")
    if displs is None:
        displs = np.concatenate(([0], np.cumsum(counts[:-1]))).tolist()
    displs = [int(d) for d in displs]
    return recvbuffer, datatype, counts, displs


def _block_tb(recvbuffer, datatype, counts, displs, block) -> Optional[TypedBuffer]:
    """TypedBuffer covering one rank's contribution region of recvbuffer."""
    if counts[block] == 0:
        return None
    return TypedBuffer(
        recvbuffer, datatype, count=counts[block],
        offset_bytes=displs[block] * datatype.extent,
    )


def _blocks_tb(recvbuffer, datatype, counts, displs, blocks) -> Optional[TypedBuffer]:
    """TypedBuffer covering several contribution regions, in ``blocks`` order."""
    nz = [b for b in blocks if counts[b] > 0]
    if not nz:
        return None
    if len(nz) == 1:
        return _block_tb(recvbuffer, datatype, counts, displs, nz[0])
    dt = HIndexed(
        [counts[b] for b in nz],
        [displs[b] * datatype.extent for b in nz],
        datatype if datatype.is_contiguous() else _flat_base(datatype),
    )
    return TypedBuffer(recvbuffer, dt)


def _flat_base(datatype: Datatype) -> Datatype:
    raise MPIError("allgatherv over non-contiguous element types not supported")


def _copy_own(comm, sendbuffer, recvbuffer, datatype, counts, displs) -> Generator:
    """Place this rank's contribution into its own recvbuffer region."""
    own = _block_tb(recvbuffer, datatype, counts, displs, comm.rank)
    if own is None:
        return
    stb = as_typed(sendbuffer, datatype, counts[comm.rank])
    if stb.nbytes != own.nbytes:
        raise MPIError(
            f"rank {comm.rank}: send payload {stb.nbytes}B != declared "
            f"count {counts[comm.rank]}"
        )
    own.unpack(stb.pack())
    yield from comm.cpu(stb.nbytes * comm.cost.copy_byte, "pack")


def allgatherv(
    comm: Comm,
    sendbuffer,
    recvbuffer,
    counts: Sequence[int],
    displs: Optional[Sequence[int]] = None,
    datatype: Optional[Datatype] = None,
    algorithm: Optional[str] = None,
) -> Generator:
    """Gather varying-size contributions from every rank onto every rank.

    ``algorithm`` forces a specific algorithm (for microbenchmarks); by
    default the configuration's selection logic runs.
    """
    recvbuffer, datatype, counts, displs = _normalize(
        comm, sendbuffer, recvbuffer, counts, displs, datatype
    )
    prof = comm.cluster.profiler
    with prof.span("collective", "allgatherv", comm.grank,
                   total_bytes=sum(counts) * datatype.size) as sp:
        yield from _copy_own(comm, sendbuffer, recvbuffer, datatype, counts, displs)
        if comm.size == 1:
            sp.attrs["algorithm"] = "trivial"
            return

        if algorithm is None:
            total_bytes = sum(counts) * datatype.size
            if (
                comm.config.adaptive_allgatherv
                and total_bytes >= comm.config.allgatherv_long_threshold
            ):
                # charge the linear-time Floyd-Rivest detection pass
                yield from comm.cpu(outlier.detection_cpu_seconds(comm.size),
                                    "compute")
            algorithm = _select_algorithm(comm, counts, datatype)
        sp.attrs["algorithm"] = algorithm

        if algorithm == "ring":
            yield from _ring(comm, recvbuffer, datatype, counts, displs)
        elif algorithm == "recursive_doubling":
            yield from _recursive_doubling(comm, recvbuffer, datatype, counts,
                                           displs)
        elif algorithm == "dissemination":
            yield from _dissemination(comm, recvbuffer, datatype, counts, displs)
        else:
            raise MPIError(f"unknown allgatherv algorithm {algorithm!r}")


def _select_algorithm(comm: Comm, counts, datatype) -> str:
    """Configuration-dependent algorithm selection."""
    total_bytes = sum(counts) * datatype.size
    pow2 = comm.size & (comm.size - 1) == 0
    tree = "recursive_doubling" if pow2 else "dissemination"
    if total_bytes < comm.config.allgatherv_long_threshold:
        return tree  # short-message path, both configurations
    if comm.config.adaptive_allgatherv:
        # section 4.2.1: linear-time outlier detection over the volume set
        # (selection logic is also unit-tested with bare comm stand-ins,
        # so fall back to the null profiler when no cluster is attached)
        from repro.prof import NULL_PROFILER

        cluster = getattr(comm, "cluster", None)
        prof = cluster.profiler if cluster is not None else NULL_PROFILER
        volumes = [c * datatype.size for c in counts]
        if prof.enabled:
            stats = outlier.SelectStats()
            found = outlier.has_outliers(volumes, comm.cost, stats=stats)
            prof.count("repro_outlier_checks_total")
            prof.count("repro_kselect_calls_total", stats.calls)
            prof.count("repro_kselect_pivot_passes_total", stats.pivot_passes)
            if found:
                prof.count("repro_outlier_detected_total")
        else:
            found = outlier.has_outliers(volumes, comm.cost)
        if found:
            return tree
    return "ring"


def _ring(comm, recvbuffer, datatype, counts, displs) -> Generator:
    base = _tag_window(comm, op="allgatherv", detail=tuple(int(c) for c in counts))
    n, rank = comm.size, comm.rank
    prof = comm.cluster.profiler
    right = (rank + 1) % n
    left = (rank - 1) % n
    for step in range(n - 1):
        send_block = (rank - step) % n
        recv_block = (rank - step - 1) % n
        stb = _block_tb(recvbuffer, datatype, counts, displs, send_block)
        rtb = _block_tb(recvbuffer, datatype, counts, displs, recv_block)
        with prof.span("phase", "ring_hop", comm.grank, step=step,
                       send_block=send_block, recv_block=recv_block):
            yield from _exchange(comm, stb, right, rtb, left, base + step)


def _recursive_doubling(comm, recvbuffer, datatype, counts, displs) -> Generator:
    n, rank = comm.size, comm.rank
    if n & (n - 1):
        raise MPIError("recursive doubling requires a power-of-two size")
    base = _tag_window(comm, op="allgatherv", detail=tuple(int(c) for c in counts))
    mask = 1
    phase = 0
    while mask < n:
        partner = rank ^ mask
        my_group = rank & ~(mask - 1)
        partner_group = partner & ~(mask - 1)
        send_blocks = range(my_group, my_group + mask)
        recv_blocks = range(partner_group, partner_group + mask)
        stb = _blocks_tb(recvbuffer, datatype, counts, displs, send_blocks)
        rtb = _blocks_tb(recvbuffer, datatype, counts, displs, recv_blocks)
        with comm.cluster.profiler.span("phase", "rd_step", comm.grank,
                                        phase=phase, partner=partner):
            yield from _exchange(comm, stb, partner, rtb, partner, base + phase)
        mask <<= 1
        phase += 1


def _dissemination(comm, recvbuffer, datatype, counts, displs) -> Generator:
    n, rank = comm.size, comm.rank
    base = _tag_window(comm, op="allgatherv", detail=tuple(int(c) for c in counts))
    dist = 1
    phase = 0
    while dist < n:
        dst = (rank + dist) % n
        src = (rank - dist) % n
        nblocks = min(dist, n - dist)
        send_blocks = [(rank - j) % n for j in range(nblocks)]
        recv_blocks = [(src - j) % n for j in range(nblocks)]
        stb = _blocks_tb(recvbuffer, datatype, counts, displs, send_blocks)
        rtb = _blocks_tb(recvbuffer, datatype, counts, displs, recv_blocks)
        with comm.cluster.profiler.span("phase", "dissemination_phase",
                                        comm.grank, phase=phase,
                                        dst=dst, src=src):
            yield from _exchange(comm, stb, dst, rtb, src, base + phase)
        dist <<= 1
        phase += 1


def _exchange(comm, stb, dst, rtb, src, tag) -> Generator:
    """Pairwise sendrecv where either side may be empty."""
    rreq = comm.irecv(rtb, src, tag) if rtb is not None else None
    if stb is not None:
        sreq = yield from comm.isend(stb, dst, tag)
    else:
        sreq = None
    if rreq is not None:
        yield from rreq.wait()
    if sreq is not None:
        yield from sreq.wait()
