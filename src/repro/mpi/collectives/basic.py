"""Control-plane collectives: barrier, bcast, allreduce, gather.

These operate on small python values (``isend_obj``/``recv_obj``), use the
standard MPICH2 algorithms, and charge normal wire time for their small
messages.  Each collective call draws a fresh tag window from the calling
communicator so that back-to-back collectives never cross-match (MPI
guarantees collective ordering per communicator; ranks must invoke
collectives in the same order, which these tags also verify implicitly).

Each collective registers its (single) MPICH2 algorithm with
:data:`repro.mpi.algorithms.REGISTRY` -- ``dissemination`` barrier,
``binomial`` bcast, ``recursive_doubling`` allreduce, ``linear``
gather_obj -- and dispatches through :func:`repro.mpi.algorithms.select`
so the decision is observable (and overridable) like every other
collective, even though today every policy short-circuits on the sole
candidate.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, Generator, List, Optional

from repro.mpi.algorithms import REGISTRY, SelectionContext, select
from repro.mpi.comm import Comm, _COLLECTIVE_TAG_BASE

#: nominal wire size of a control-plane value (a scalar + envelope)
_CTRL_BYTES = 16


def _tag_window(comm: Comm, width: int = 64, op: str = "collective",
                detail: Any = None) -> int:
    """Reserve a tag range for one collective invocation.

    ``op`` names the collective (``"barrier"``, ``"bcast"``, ...) and
    ``detail`` carries call arguments that must agree across ranks (root,
    counts, ...).  Both are reported to cluster observers so the runtime
    verifier can check that every rank of the communicator entered the
    *same* collective, in the same order, with consistent arguments
    (rules COL001/COL002).
    """
    seq = getattr(comm, "_coll_seq", 0)
    comm._coll_seq = seq + 1
    comm.cluster._notify("collective", comm.grank, comm.ctx, seq, op, detail)
    return _COLLECTIVE_TAG_BASE + seq * width


def barrier(comm: Comm) -> Generator:
    """Synchronise all ranks (ceil(log2 N) zero-payload rounds)."""
    base = _tag_window(comm, op="barrier")
    if comm.size == 1:
        return
    decision = select(comm, "barrier", SelectionContext.for_comm(comm, "barrier"))
    with comm.cluster.profiler.span("collective", "barrier", comm.grank,
                                    algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("barrier", decision.algorithm)
        yield from impl(comm, base)


def _barrier_dissemination(comm: Comm, base: int) -> Generator:
    """Dissemination barrier: ceil(log2 N) rounds of zero-payload messages."""
    n, rank = comm.size, comm.rank
    k = 0
    dist = 1
    while dist < n:
        dst = (rank + dist) % n
        src = (rank - dist) % n
        comm.isend_obj(None, dst, base + k, nbytes=0)
        yield from comm.recv_obj(src, base + k)
        dist <<= 1
        k += 1


def bcast(comm: Comm, value: Any, root: int = 0, nbytes: int = _CTRL_BYTES) -> Generator:
    """Broadcast a python value from ``root``; returns it on every rank."""
    base = _tag_window(comm, op="bcast", detail=root)
    if not 0 <= root < comm.size:
        raise ValueError(f"invalid root {root}")
    if comm.size == 1:
        return value
    decision = select(comm, "bcast", SelectionContext.for_comm(comm, "bcast"))
    with comm.cluster.profiler.span("collective", "bcast", comm.grank,
                                    root=root, algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("bcast", decision.algorithm)
        value = yield from impl(comm, value, root, base, nbytes)
    return value


def _bcast_binomial(comm: Comm, value: Any, root: int, base: int,
                    nbytes: int) -> Generator:
    """Binomial-tree broadcast."""
    n, rank = comm.size, comm.rank
    rel = (rank - root) % n
    # walk up: receive from the parent that owns my lowest set bit
    mask = 1
    while mask < n:
        if rel & mask:
            parent = (rank - mask) % n
            value = yield from comm.recv_obj(parent, base)
            break
        mask <<= 1
    # walk down: forward to children at decreasing bit distances
    mask >>= 1
    while mask > 0:
        if rel + mask < n:
            child = (rank + mask) % n
            comm.isend_obj(value, child, base, nbytes=nbytes)
        mask >>= 1
    return value


def allreduce(
    comm: Comm,
    value: Any,
    op: Optional[Callable[[Any, Any], Any]] = None,
    nbytes: int = _CTRL_BYTES,
) -> Generator:
    """Allreduce a python value over a commutative-associative ``op``."""
    if op is None:
        op = operator.add
    base = _tag_window(comm, op="allreduce")
    if comm.size == 1:
        return value
    decision = select(comm, "allreduce",
                      SelectionContext.for_comm(comm, "allreduce"))
    with comm.cluster.profiler.span("collective", "allreduce", comm.grank,
                                    algorithm=decision.algorithm,
                                    policy=decision.policy):
        impl = REGISTRY.implementation("allreduce", decision.algorithm)
        value = yield from impl(comm, value, op, base, nbytes)
    return value


def _allreduce_recursive_doubling(comm: Comm, value: Any, op: Callable,
                                  base: int, nbytes: int) -> Generator:
    """Recursive-doubling allreduce; non-power-of-two sizes use the
    standard pre/post folding step."""
    n, rank = comm.size, comm.rank
    p2 = 1
    while p2 * 2 <= n:
        p2 *= 2
    extra = n - p2
    acc = value
    # fold the surplus ranks into the power-of-two core
    if rank < 2 * extra:
        if rank % 2 == 0:
            comm.isend_obj(acc, rank + 1, base, nbytes=nbytes)
            newrank = -1  # idle during the core exchange
        else:
            other = yield from comm.recv_obj(rank - 1, base)
            acc = op(acc, other)
            newrank = rank // 2
    else:
        newrank = rank - extra
    # recursive doubling among p2 effective ranks
    if newrank >= 0:
        mask = 1
        k = 1
        while mask < p2:
            partner_new = newrank ^ mask
            partner = (partner_new * 2 + 1 if partner_new < extra
                       else partner_new + extra)
            comm.isend_obj(acc, partner, base + k, nbytes=nbytes)
            other = yield from comm.recv_obj(partner, base + k)
            acc = op(acc, other)
            mask <<= 1
            k += 1
    # hand the result back to the folded-out ranks
    if rank < 2 * extra:
        if rank % 2 == 0:
            acc = yield from comm.recv_obj(rank + 1, base + 60)
        else:
            comm.isend_obj(acc, rank - 1, base + 60, nbytes=nbytes)
    return acc


def gather_obj(comm: Comm, value: Any, root: int = 0,
               nbytes: int = _CTRL_BYTES) -> Generator:
    """Gather python values at ``root``; returns the list there, None elsewhere."""
    base = _tag_window(comm, op="gather_obj", detail=root)
    decision = select(comm, "gather_obj",
                      SelectionContext.for_comm(comm, "gather_obj"))
    impl = REGISTRY.implementation("gather_obj", decision.algorithm)
    result = yield from impl(comm, value, root, base, nbytes)
    return result


def _gather_obj_linear(comm: Comm, value: Any, root: int, base: int,
                       nbytes: int) -> Generator:
    """Linear gather: every rank sends straight to the root."""
    n, rank = comm.size, comm.rank
    if rank == root:
        with comm.cluster.profiler.span("collective", "gather_obj",
                                        comm.grank, root=root):
            out: List[Any] = [None] * n
            out[root] = value
            for src in range(n):
                if src != root:
                    out[src] = yield from comm.recv_obj(src, base)
        return out
    comm.isend_obj(value, root, base, nbytes=nbytes)
    return None


# -- registry entries (alpha-beta estimates are advisory priors) --------------

def _phases(n: int) -> int:
    return math.ceil(math.log2(max(n, 2)))


def _est_log_alpha(ctx: SelectionContext) -> float:
    return _phases(ctx.size) * (ctx.cost.alpha + ctx.cost.beta * _CTRL_BYTES)


def _est_linear_alpha(ctx: SelectionContext) -> float:
    return (ctx.size - 1) * (ctx.cost.alpha + ctx.cost.beta * _CTRL_BYTES)


REGISTRY.register_fn(
    "barrier", "dissemination", estimator=_est_log_alpha,
    description="ceil(log2 N) zero-payload dissemination rounds",
)(_barrier_dissemination)
REGISTRY.register_fn(
    "bcast", "binomial", estimator=_est_log_alpha,
    description="binomial-tree broadcast of a python value",
)(_bcast_binomial)
REGISTRY.register_fn(
    "allreduce", "recursive_doubling", estimator=_est_log_alpha,
    description="recursive doubling with non-power-of-two pre/post fold",
)(_allreduce_recursive_doubling)
REGISTRY.register_fn(
    "gather_obj", "linear", estimator=_est_linear_alpha,
    description="every rank sends straight to the root",
)(_gather_obj_linear)
