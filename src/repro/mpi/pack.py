"""Explicit packing API (``MPI_Pack`` / ``MPI_Unpack`` / ``MPI_Pack_size``).

The alternative the paper mentions to sending derived datatypes directly:
"the programmer [can] explicitly pack the noncontiguous data into a
contiguous buffer then send that buffer".  These functions provide that
path over the same typed-buffer machinery, charging the same pack-loop CPU
costs, so applications can be written either way and compared.

Positions are byte offsets into the packing buffer, threaded through calls
exactly like MPI's ``position`` argument::

    pos = 0
    pos = yield from mpi_pack(comm, m, column_type, 1, outbuf, pos)
    pos = yield from mpi_pack(comm, hdr, INT, 4, outbuf, pos)
    yield from comm.send(outbuf[:pos], dest=1)

Byte movement executes the copy program compiled by
:mod:`repro.datatypes.ir` -- explicit pack/unpack of a datatype shares the
same cached plan (and gather indices) the direct-send path uses.
"""

from __future__ import annotations

from time import perf_counter
from typing import Generator, Optional

import numpy as np

from repro.datatypes.typemap import Datatype
from repro.mpi.comm import Comm, MPIError, as_typed, payload_crc


def _timed_move(comm: Comm, tb, move) -> None:
    """Run ``move`` (a pack/unpack closure), attributing wall time and op
    counts to the profiler when one is attached."""
    prof = comm.cluster.profiler
    if not prof.enabled:
        move()
        return
    t0 = perf_counter()
    move()
    prof.observe("repro_datatype_pack_exec_seconds", perf_counter() - t0)
    if tb.plan is not None:
        prof.count("repro_datatype_pack_ops_total", tb.plan.program.num_ops)

__all__ = ["pack_size", "mpi_pack", "mpi_unpack", "payload_crc"]


def pack_size(count: int, datatype: Datatype) -> int:
    """Upper bound on the packed size of ``count`` items (``MPI_Pack_size``)."""
    if count < 0:
        raise MPIError(f"negative count {count}")
    return count * datatype.size


def mpi_pack(
    comm: Comm,
    inbuf,
    datatype: Optional[Datatype],
    count: Optional[int],
    outbuf: np.ndarray,
    position: int,
) -> Generator:
    """Pack ``count`` items of ``inbuf`` into ``outbuf`` at ``position``;
    returns the new position.  CPU time is charged as a pack loop."""
    tb = as_typed(inbuf, datatype, count)
    out = np.asarray(outbuf).reshape(-1).view(np.uint8)
    if position < 0 or position + tb.nbytes > out.size:
        raise MPIError(
            f"outbuf overflow: position {position} + payload {tb.nbytes} "
            f"exceeds {out.size} bytes"
        )
    def _move() -> None:
        out[position:position + tb.nbytes] = tb.pack()

    _timed_move(comm, tb, _move)
    nblocks = tb.blocks.num_blocks if tb.count else 0
    yield from comm.cpu(
        tb.nbytes * comm.cost.copy_byte + nblocks * comm.cost.block_overhead,
        "pack",
    )
    return position + tb.nbytes


def mpi_unpack(
    comm: Comm,
    inbuf: np.ndarray,
    position: int,
    outbuf,
    datatype: Optional[Datatype] = None,
    count: Optional[int] = None,
) -> Generator:
    """Unpack from ``inbuf`` at ``position`` into the typed ``outbuf``;
    returns the new position."""
    tb = as_typed(outbuf, datatype, count)
    src = np.asarray(inbuf).reshape(-1).view(np.uint8)
    if position < 0 or position + tb.nbytes > src.size:
        raise MPIError(
            f"inbuf underflow: position {position} + payload {tb.nbytes} "
            f"exceeds {src.size} bytes"
        )
    _timed_move(comm, tb,
                lambda: tb.unpack(src[position:position + tb.nbytes]))
    nblocks = tb.blocks.num_blocks if tb.count else 0
    yield from comm.cpu(
        tb.nbytes * comm.cost.copy_byte + nblocks * comm.cost.block_overhead,
        "pack",
    )
    return position + tb.nbytes
