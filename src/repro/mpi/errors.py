"""Fault-tolerance error types (ULFM-style failure semantics).

These are the exceptions the resilient runtime surfaces when a fault
cannot be masked by the transport:

- :class:`RankFailedError` -- a process crashed (``MPI_ERR_PROC_FAILED``).
  Fail-fast collectives guarantee the *same* ``RankFailedError`` (same
  failed rank) reaches every surviving rank of the communicator rather
  than leaving some ranks deadlocked.
- :class:`CommRevokedError` -- the communicator context was revoked
  (``MPI_ERR_REVOKED``): any operation posted on it afterwards fails
  immediately.  Revocation is how the first rank to observe a failure
  inside a collective releases everyone else.
- :class:`TransportError` -- the reliable transport exhausted its
  retransmit budget (peer unresponsive, persistent corruption, ...).

They live in their own dependency-free module so that both the MPI layer
(:mod:`repro.mpi.comm`) and the fault-injection subsystem
(:mod:`repro.faults`) can import them without cycles.  Recovery idioms
(``comm.shrink()``, ``comm.agree()``, checkpoint/restart) are documented
in ``docs/FAULTS.md``.
"""

from __future__ import annotations


class FaultToleranceError(RuntimeError):
    """Base class for failures surfaced by the resilient runtime."""


class RankFailedError(FaultToleranceError):
    """A rank crashed (or was declared dead by the failure detector).

    ``rank`` is the *cluster-global* rank of the failed process.
    """

    def __init__(self, rank: int, reason: str = "rank failure"):
        super().__init__(f"rank {rank} failed: {reason}")
        self.rank = rank
        self.reason = reason


class CommRevokedError(FaultToleranceError):
    """The communicator context was revoked (``MPI_Comm_revoke``).

    ``cause`` carries the exception that triggered the revocation when
    known (usually a :class:`RankFailedError` or :class:`TransportError`).
    """

    def __init__(self, ctx, cause: Exception | None = None):
        detail = f": {cause}" if cause is not None else ""
        super().__init__(f"communicator context {ctx!r} has been revoked{detail}")
        self.ctx = ctx
        self.cause = cause


class TransportError(FaultToleranceError):
    """The reliable transport gave up on a message.

    Raised on the sender (and delivered to a matched receiver) once
    ``MPIConfig.max_retransmits`` attempts have failed to produce an
    acknowledged, checksum-clean delivery.
    """

    def __init__(self, src: int, dst: int, tag: int, attempts: int,
                 reason: str = "retransmit budget exhausted"):
        super().__init__(
            f"message {src}->{dst} tag={tag} undeliverable after "
            f"{attempts} attempt(s): {reason}"
        )
        self.src = src
        self.dst = dst
        self.tag = tag
        self.attempts = attempts
        self.reason = reason
