"""Simulator-driven autotuning: measure candidates, emit a tuning table.

``python -m repro.bench --autotune`` drives :func:`autotune` over a grid of
collective scenarios (communicator sizes x volume profiles), times every
applicable registered algorithm in the simulator, and records the winner
per bucket key in a :class:`repro.mpi.algorithms.tuning.TuningTable`.
:func:`compare_policies` then replays the paper's nonuniform benches
(fig14-style outlier Allgatherv, fig15-style ring-neighbour Alltoallw)
under the baseline, optimised and autotuned configs so CI can assert the
table ties-or-beats both fixed configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.algorithms.registry import REGISTRY, SelectionContext
from repro.mpi.algorithms.tuning import TuningTable, bucket_key
from repro.mpi.config import MPIConfig
from repro.util.costmodel import CostModel


@dataclass
class AutotuneStats:
    """Sweep accounting: how much simulator warmup did training cost?"""

    #: scenarios in the sweep grid
    scenarios_total: int = 0
    #: scenarios skipped because their bucket was statically pre-seeded
    scenarios_skipped: int = 0
    #: simulator measurements actually executed (one per candidate
    #: algorithm per measured scenario)
    warmup_runs: int = 0
    #: bucket keys seeded from the static plans document
    preseeded_keys: List[str] = field(default_factory=list)

    @property
    def scenarios_measured(self) -> int:
        return self.scenarios_total - self.scenarios_skipped

#: communicator sizes the sweep trains (quick keeps the suite CI-sized)
PROCS = (4, 6, 8, 16, 32, 64)
PROCS_QUICK = (4, 8, 16, 32, 64)

DOUBLE_BYTES = 8


def _allgatherv_scenarios(procs: Sequence[int]) -> List[Tuple[str, int, List[int]]]:
    """(label, nprocs, per-rank counts in doubles) grid for allgatherv."""
    out = []
    for n in procs:
        out.append(("uniform-small", n, [16] * n))
        out.append(("uniform-large", n, [4096] * n))
        big = [1] * n
        big[0] = 4096  # the paper's 32 KB outlier
        out.append(("outlier", n, big))
    return out


def _alltoallw_scenarios(procs: Sequence[int]) -> List[Tuple[str, int, str]]:
    """(label, nprocs, pattern) grid for alltoallw."""
    out = []
    for n in procs:
        out.append(("ring-neighbour", n, "ring"))
        if n <= 16:
            out.append(("dense-uniform", n, "dense"))
    return out


def _sparse_scenarios(procs: Sequence[int]) -> List[Tuple[str, int, str]]:
    """(label, nprocs, pattern) grid for the NBX sparse exchange.

    ``neighbour``: one medium message to the next rank (the assembly
    halo); ``mixed``: a tiny and a large message to two peers, the shape
    the binned variant reorders.  Both fold into the collective's single
    rank-uniform bucket per size (``UNIFORM_BUCKET_COLLECTIVES``:
    volume-derived keys could diverge across ranks), so the winner
    reflects the mix.
    """
    out = []
    for n in procs:
        if n < 2:
            continue
        out.append(("neighbour", n, "neighbour"))
        out.append(("mixed", n, "mixed"))
    return out


def _sparse_volumes(n: int, pattern: str) -> List[int]:
    volumes = [0] * n
    if pattern == "neighbour":
        volumes[1 % n] = 64 * DOUBLE_BYTES
    else:
        volumes[1 % n] = 4 * DOUBLE_BYTES
        volumes[(n - 1) % n] = 4096 * DOUBLE_BYTES
    return volumes


def _measure_sparse(n: int, pattern: str, algorithm: str,
                    config: MPIConfig, cost: Optional[CostModel]) -> float:
    from repro.mpi.comm import Cluster

    cluster = Cluster(n, config=config, cost=cost, heterogeneous=False)

    def main(comm):
        if pattern == "neighbour":
            payloads = {(comm.rank + 1) % n: np.full(64, float(comm.rank))}
        else:
            payloads = {
                (comm.rank + 1) % n: np.full(4, float(comm.rank)),
                (comm.rank - 1) % n: np.full(4096, float(comm.rank)),
            }
        payloads = {p: v for p, v in payloads.items() if p != comm.rank}
        yield from comm.barrier()
        start = comm.engine.now
        yield from comm.sparse_alltoall(payloads, algorithm=algorithm)
        return comm.engine.now - start

    return float(np.mean(cluster.run(main)))


def _measure_allgatherv(n: int, counts: Sequence[int], algorithm: str,
                        config: MPIConfig, cost: Optional[CostModel]) -> float:
    from repro.mpi.comm import Cluster

    cluster = Cluster(n, config=config, cost=cost, heterogeneous=False)
    displs = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(int).tolist()
    total = int(np.sum(counts))

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank + 1))
        recv = np.zeros(total)
        yield from comm.barrier()
        start = comm.engine.now
        yield from comm.allgatherv(send, recv, list(counts), displs,
                                   algorithm=algorithm)
        return comm.engine.now - start

    return float(np.mean(cluster.run(main)))


def _measure_alltoallw(n: int, pattern: str, algorithm: str,
                       config: MPIConfig, cost: Optional[CostModel]) -> float:
    from repro.datatypes import DOUBLE, TypedBuffer
    from repro.mpi.comm import Cluster

    cluster = Cluster(n, config=config, cost=cost, heterogeneous=False)
    count = 100  # the fig15 10x10 matrix of doubles

    def main(comm):
        sendbuf = np.full((n, count), float(comm.rank))
        recvbuf = np.zeros((n, count))
        if pattern == "ring":
            peers = {(comm.rank + 1) % n, (comm.rank - 1) % n}
        else:
            peers = {p for p in range(n) if p != comm.rank}
        sendspecs = [None] * n
        recvspecs = [None] * n
        for peer in peers:
            off = peer * count * DOUBLE_BYTES
            sendspecs[peer] = TypedBuffer(sendbuf, DOUBLE, count, offset_bytes=off)
            recvspecs[peer] = TypedBuffer(recvbuf, DOUBLE, count, offset_bytes=off)
        yield from comm.barrier()
        start = comm.engine.now
        yield from comm.alltoallw(sendspecs, recvspecs, algorithm=algorithm)
        return comm.engine.now - start

    return float(np.mean(cluster.run(main)))


def autotune(quick: bool = False, cost: Optional[CostModel] = None,
             procs: Optional[Sequence[int]] = None,
             verbose: bool = False,
             preseed: Optional[dict] = None,
             stats: Optional[AutotuneStats] = None) -> TuningTable:
    """Measure every applicable candidate per scenario; return the table.

    ``preseed`` is a ``repro-plans/1`` document (the analyzer's static
    communication plans): its bucket predictions are ingested first, and
    any sweep scenario landing in a statically seeded bucket is *skipped*
    -- the static classification replaces the warmup measurements for
    that bucket.  ``stats`` (when given) is filled with the sweep
    accounting, so callers can assert pre-seeding reduced warmup work.
    """
    cost = cost or CostModel(cpu_noise=0.0)
    procs = tuple(procs) if procs is not None else (PROCS_QUICK if quick else PROCS)
    config = MPIConfig.optimized()  # engine flags on; selection is forced below
    stats = stats if stats is not None else AutotuneStats()
    table = TuningTable(cost_model={
        "alpha": cost.alpha, "beta": cost.beta, "copy_byte": cost.copy_byte,
    })
    if preseed is not None:
        before = set(table.entries)
        table.preseed(preseed)
        stats.preseeded_keys = sorted(set(table.entries) - before)
        if verbose and stats.preseeded_keys:
            print(f"  pre-seeded {len(stats.preseeded_keys)} bucket(s) "
                  "from static plans")

    def skip(key: str, what: str, label: str, n: int) -> bool:
        if table.source(key) != "static":
            return False
        stats.scenarios_skipped += 1
        if verbose:
            print(f"  {what} {label:>14} N={n:<3} -> "
                  f"pre-seeded, sweep skipped ({key})")
        return True

    for label, n, counts in _allgatherv_scenarios(procs):
        stats.scenarios_total += 1
        volumes = [c * DOUBLE_BYTES for c in counts]
        ctx = SelectionContext(collective="allgatherv", size=n,
                               volumes=tuple(volumes), dtype_size=DOUBLE_BYTES,
                               config=config, cost=cost)
        key = bucket_key(ctx)
        if skip(key, "allgatherv", label, n):
            continue
        latencies: Dict[str, float] = {}
        for algorithm in REGISTRY.candidates("allgatherv", ctx):
            latencies[algorithm.name] = _measure_allgatherv(
                n, counts, algorithm.name, config, cost)
            stats.warmup_runs += 1
        table.record(key, latencies)
        if verbose:
            winner = min(latencies, key=latencies.get)
            print(f"  allgatherv {label:>14} N={n:<3} -> {winner:<18} ({key})")

    for label, n, pattern in _alltoallw_scenarios(procs):
        stats.scenarios_total += 1
        volumes = [0] * n
        if pattern == "ring":
            volumes[(0 + 1) % n] = volumes[(0 - 1) % n] = 100 * DOUBLE_BYTES
        else:
            volumes = [100 * DOUBLE_BYTES] * n
            volumes[0] = 0  # self entry carries no wire volume
        ctx = SelectionContext(collective="alltoallw", size=n,
                               volumes=tuple(volumes), dtype_size=DOUBLE_BYTES,
                               config=config, cost=cost)
        key = bucket_key(ctx)
        if skip(key, "alltoallw ", label, n):
            continue
        latencies = {}
        for algorithm in REGISTRY.candidates("alltoallw", ctx):
            latencies[algorithm.name] = _measure_alltoallw(
                n, pattern, algorithm.name, config, cost)
            stats.warmup_runs += 1
        table.record(key, latencies)
        if verbose:
            winner = min(latencies, key=latencies.get)
            print(f"  alltoallw  {label:>14} N={n:<3} -> {winner:<18} ({key})")

    for label, n, pattern in _sparse_scenarios(procs):
        stats.scenarios_total += 1
        ctx = SelectionContext(collective="sparse_alltoall", size=n,
                               volumes=tuple(_sparse_volumes(n, pattern)),
                               dtype_size=DOUBLE_BYTES,
                               config=config, cost=cost)
        key = bucket_key(ctx)
        if skip(key, "sparse    ", label, n):
            continue
        latencies = {}
        for algorithm in REGISTRY.candidates("sparse_alltoall", ctx):
            latencies[algorithm.name] = _measure_sparse(
                n, pattern, algorithm.name, config, cost)
            stats.warmup_runs += 1
        table.record(key, latencies)
        if verbose:
            winner = min(latencies, key=latencies.get)
            print(f"  sparse     {label:>14} N={n:<3} -> {winner:<18} ({key})")

    return table


def count_warmup_runs(quick: bool = False, cost: Optional[CostModel] = None,
                      procs: Optional[Sequence[int]] = None) -> int:
    """How many simulator measurements a *cold* (un-seeded) sweep would
    execute -- the same grid walk as :func:`autotune`, candidates counted
    instead of measured.  Used by the bench CLI / CI to assert that
    pre-seeding strictly reduces warmup work without paying for a second
    full sweep."""
    cost = cost or CostModel(cpu_noise=0.0)
    procs = tuple(procs) if procs is not None else (PROCS_QUICK if quick else PROCS)
    config = MPIConfig.optimized()
    runs = 0
    for _label, n, counts in _allgatherv_scenarios(procs):
        volumes = [c * DOUBLE_BYTES for c in counts]
        ctx = SelectionContext(collective="allgatherv", size=n,
                               volumes=tuple(volumes), dtype_size=DOUBLE_BYTES,
                               config=config, cost=cost)
        runs += len(REGISTRY.candidates("allgatherv", ctx))
    for _label, n, pattern in _alltoallw_scenarios(procs):
        volumes = [0] * n
        if pattern == "ring":
            volumes[(0 + 1) % n] = volumes[(0 - 1) % n] = 100 * DOUBLE_BYTES
        else:
            volumes = [100 * DOUBLE_BYTES] * n
            volumes[0] = 0
        ctx = SelectionContext(collective="alltoallw", size=n,
                               volumes=tuple(volumes), dtype_size=DOUBLE_BYTES,
                               config=config, cost=cost)
        runs += len(REGISTRY.candidates("alltoallw", ctx))
    for _label, n, pattern in _sparse_scenarios(procs):
        ctx = SelectionContext(collective="sparse_alltoall", size=n,
                               volumes=tuple(_sparse_volumes(n, pattern)),
                               dtype_size=DOUBLE_BYTES,
                               config=config, cost=cost)
        runs += len(REGISTRY.candidates("sparse_alltoall", ctx))
    return runs


def compare_policies(table_path: str, quick: bool = False,
                     cost: Optional[CostModel] = None):
    """Replay the nonuniform benches under baseline/optimised/autotuned.

    Returns a :class:`repro.bench.harness.FigureData` with one row per
    (bench, procs); the ``autotuned`` column must tie-or-beat both fixed
    configurations on every row (asserted by the CLI / CI).
    """
    from repro.apps.allgatherv_bench import allgatherv_benchmark
    from repro.apps.alltoallw_bench import alltoallw_ring_benchmark
    from repro.bench.harness import FigureData

    # noise-free by default: the adaptive policy's detection pass draws from
    # the per-rank noise RNG, so a fair three-way comparison must not let
    # RNG phase differences swamp the (deterministic) algorithmic deltas
    cost = cost or CostModel(cpu_noise=0.0)
    base = MPIConfig.baseline()
    opt = MPIConfig.optimized()
    auto = MPIConfig.optimized().with_(
        selection_policy="autotuned", tuning_table=table_path,
        name="MVAPICH2-Autotuned",
    )
    procs = (8, 16, 32) if quick else (8, 16, 32, 64)

    fig = FigureData(
        "Autotune", "Autotuned policy vs fixed configs (usec)",
        ["bench", "procs", "MVAPICH2-0.9.5", "MVAPICH2-New",
         "MVAPICH2-Autotuned"],
    )
    for p in procs:
        rb = allgatherv_benchmark(p, 4096, base, cost=cost)
        ro = allgatherv_benchmark(p, 4096, opt, cost=cost)
        ra = allgatherv_benchmark(p, 4096, auto, cost=cost)
        assert rb.correct and ro.correct and ra.correct
        fig.add_row("allgatherv-outlier", p,
                    rb.latency * 1e6, ro.latency * 1e6, ra.latency * 1e6)
    for p in procs:
        rb = alltoallw_ring_benchmark(p, base, cost=cost)
        ro = alltoallw_ring_benchmark(p, opt, cost=cost)
        ra = alltoallw_ring_benchmark(p, auto, cost=cost)
        assert rb.correct and ro.correct and ra.correct
        fig.add_row("alltoallw-ring", p,
                    rb.latency * 1e6, ro.latency * 1e6, ra.latency * 1e6)
    return fig


def check_ties_or_beats(fig, tolerance: float = 1e-9) -> List[str]:
    """Rows where the autotuned column loses to a fixed config."""
    problems = []
    for row in fig.rows:
        bench, procs, base_t, opt_t, auto_t = row
        limit = min(base_t, opt_t) * (1.0 + tolerance)
        if auto_t > limit:
            problems.append(
                f"{bench} N={procs}: autotuned {auto_t:.3f} us loses to "
                f"fixed min {min(base_t, opt_t):.3f} us"
            )
    return problems
