"""Shared argument validation for the v-collectives.

``allgatherv``, ``gatherv``, ``scatterv`` and ``alltoallw`` all take a
per-rank ``counts`` (and optional ``displs``) vector; before this module
each of them hand-rolled the same checks.  The single normaliser lives
here so every collective rejects bad arguments with identical messages.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def normalize_counts_displs(
    size: int,
    counts: Sequence[int],
    displs: Optional[Sequence[int]] = None,
    what: str = "counts",
) -> Tuple[List[int], List[int]]:
    """Validate ``counts``/``displs`` against a communicator of ``size``.

    Returns ``(counts, displs)`` as plain int lists.  ``displs`` defaults
    to the dense packing (exclusive prefix sum of ``counts``).  Raises
    :class:`repro.mpi.comm.MPIError` for a wrong-length vector, a negative
    count, or a wrong-length ``displs``.
    """
    from repro.mpi.comm import MPIError  # local import: avoid cycle

    counts = [int(c) for c in counts]
    if len(counts) != size:
        raise MPIError(f"{what} has {len(counts)} entries for {size} ranks")
    for c in counts:
        if c < 0:
            raise MPIError("negative count")
    if displs is None:
        displs = np.concatenate(([0], np.cumsum(counts[:-1]))).tolist()
    displs = [int(d) for d in displs]
    if len(displs) != size:
        raise MPIError(f"displs has {len(displs)} entries for {size} ranks")
    return counts, displs


def check_spec_lengths(size: int, sendspecs: Sequence, recvspecs: Sequence) -> None:
    """Alltoallw-style per-peer spec vectors must have one entry per rank."""
    from repro.mpi.comm import MPIError  # local import: avoid cycle

    if len(sendspecs) != size or len(recvspecs) != size:
        raise MPIError(
            f"alltoallw specs must have {size} entries, got "
            f"{len(sendspecs)}/{len(recvspecs)}"
        )
