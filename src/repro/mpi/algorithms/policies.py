"""Selection policies: which registered algorithm does one call get?

Four policies (chosen by :attr:`repro.mpi.config.MPIConfig.selection_policy`):

``fixed:<name>``
    Pin every collective that registers an (applicable) algorithm of that
    name; others fall back to the ``mpich`` rule.  For microbenchmarks.

``mpich``
    The stock MPICH2 / MVAPICH2-0.9.5 selection tables of the paper's
    section 3.2: tree algorithms below the Allgatherv long-message
    threshold, the ring above it; round-robin Alltoallw.  Bit-for-bit the
    decisions :meth:`MPIConfig.baseline` made before the registry existed.

``adaptive``
    The paper's section 4.2 rules, generalised so any collective with a
    volume set can consult the outlier detector: in the Allgatherv
    long-message regime run the Floyd-Rivest outlier-ratio check (Eq. 1)
    and abandon the ring when the set is nonuniform; bin Alltoallw peers
    by message size.  Bit-for-bit :meth:`MPIConfig.optimized`'s decisions.

``autotuned``
    Look the call's bucket up in a tuning table measured in the simulator
    (``python -m repro.bench --autotune``); an LRU decision cache keeps the
    per-call overhead at one dict probe.  Untrained buckets fall back to
    the ``adaptive`` rule (including its detection-cost accounting).

A config whose ``selection_policy`` is None derives the policy from its
feature flags per collective (``adaptive_allgatherv``/``binned_alltoallw``),
which keeps single-flag ablation configs meaningful; with all flags off
that *is* the ``mpich`` policy, with all on it *is* ``adaptive``.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Any, Optional

from repro.mpi import outlier
from repro.mpi.algorithms.registry import REGISTRY, SelectionContext
from repro.mpi.algorithms.tuning import TuningTable, bucket_key, load_table
from repro.mpi.config import MPIConfig
from repro.prof import NULL_PROFILER


class Decision:
    """Outcome of one selection: the algorithm plus accounting metadata."""

    __slots__ = ("collective", "algorithm", "policy", "reason",
                 "detect_seconds", "cache")

    def __init__(self, collective: str, algorithm: str, policy: str,
                 reason: str = "", detect_seconds: float = 0.0,
                 cache: Optional[str] = None):
        self.collective = collective
        self.algorithm = algorithm
        self.policy = policy
        self.reason = reason
        #: CPU seconds the decision itself cost (charged by the caller on
        #: the simulated rank -- e.g. the linear-time outlier pass)
        self.detect_seconds = detect_seconds
        #: "hit"/"miss" when a tuning-table decision cache was consulted
        self.cache = cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Decision({self.collective}:{self.algorithm} "
                f"policy={self.policy} reason={self.reason!r})")


class SelectionPolicy:
    """Base class; subclasses implement :meth:`decide`."""

    name = "abstract"

    def __init__(self, config: MPIConfig):
        self.config = config

    def decide(self, ctx: SelectionContext, prof: Any = NULL_PROFILER) -> Decision:
        raise NotImplementedError

    # -- shared building blocks ---------------------------------------------

    def _sole(self, ctx: SelectionContext) -> Optional[Decision]:
        """Single-candidate collectives need no policy logic."""
        candidates = REGISTRY.candidates(ctx.collective)
        if len(candidates) == 1:
            return Decision(ctx.collective, candidates[0].name, self.name,
                            reason="sole")
        return None

    def _tree(self, ctx: SelectionContext) -> str:
        """The short-message / adapted Allgatherv algorithm for this N."""
        return "recursive_doubling" if ctx.pow2 else "dissemination"

    def _mpich_allgatherv(self, ctx: SelectionContext, reason_prefix: str = "mpich") -> Decision:
        if not ctx.contiguous:
            # tree algorithms forward multi-block regions as one HIndexed
            # message, which requires a contiguous element type; the ring
            # moves single blocks and is always applicable
            return Decision(ctx.collective, "ring", self.name,
                            reason=f"{reason_prefix}:noncontiguous")
        threshold = self.config.allgatherv_long_threshold
        if ctx.total_bytes < threshold:
            return Decision(ctx.collective, self._tree(ctx), self.name,
                            reason=f"{reason_prefix}:short")
        return Decision(ctx.collective, "ring", self.name,
                        reason=f"{reason_prefix}:long")

    def _adaptive_allgatherv(self, ctx: SelectionContext, prof: Any) -> Decision:
        if not ctx.contiguous:
            return Decision(ctx.collective, "ring", self.name,
                            reason="adaptive:noncontiguous")
        threshold = self.config.allgatherv_long_threshold
        if ctx.total_bytes < threshold:
            return Decision(ctx.collective, self._tree(ctx), self.name,
                            reason="adaptive:short")
        # section 4.2.1: a linear-time Floyd-Rivest outlier pass over the
        # (locally known) volume set, charged to the deciding rank
        detect = outlier.detection_cpu_seconds(ctx.size)
        if prof.enabled:
            stats = outlier.SelectStats()
            found = outlier.has_outliers(ctx.volumes, ctx.cost, stats=stats)
            prof.count("repro_outlier_checks_total")
            prof.count("repro_kselect_calls_total", stats.calls)
            prof.count("repro_kselect_pivot_passes_total", stats.pivot_passes)
            if found:
                prof.count("repro_outlier_detected_total")
        else:
            found = outlier.has_outliers(ctx.volumes, ctx.cost)
        if found:
            return Decision(ctx.collective, self._tree(ctx), self.name,
                            reason="adaptive:outliers", detect_seconds=detect)
        return Decision(ctx.collective, "ring", self.name,
                        reason="adaptive:uniform", detect_seconds=detect)

    def _adaptive_sparse(self, ctx: SelectionContext) -> Decision:
        """NBX-family choice for one sparse exchange.

        The dense-vs-NBX boundary crosses wire protocols, so that call is
        never made here (the caller already committed to NBX on
        rank-uniform grounds); ``nbx`` vs ``nbx_binned`` interoperate on
        the wire, so the binning choice may consult the local volume set.
        """
        threshold = ctx.cost.small_message_threshold if ctx.cost else 0
        sizes = [v for v in ctx.volumes if v > 0]
        mixed = bool(threshold and sizes
                     and any(v < threshold for v in sizes)
                     and any(v >= threshold for v in sizes))
        if mixed:
            return Decision(ctx.collective, "nbx_binned", self.name,
                            reason="adaptive:mixed-sizes")
        return Decision(ctx.collective, "nbx", self.name, reason="adaptive")


class MpichPolicy(SelectionPolicy):
    """Today's baseline thresholds, everywhere."""

    name = "mpich"

    def decide(self, ctx: SelectionContext, prof: Any = NULL_PROFILER) -> Decision:
        sole = self._sole(ctx)
        if sole is not None:
            return sole
        if ctx.collective == "allgatherv":
            return self._mpich_allgatherv(ctx)
        if ctx.collective == "alltoallw":
            return Decision(ctx.collective, "round_robin", self.name,
                            reason="mpich")
        if ctx.collective == "sparse_alltoall":
            # the pre-NBX protocol: a dense counts exchange on every call
            return Decision(ctx.collective, "dense", self.name,
                            reason="mpich")
        return self._first_applicable(ctx)

    def _first_applicable(self, ctx: SelectionContext) -> Decision:
        candidates = REGISTRY.candidates(ctx.collective, ctx)
        if not candidates:
            from repro.mpi.comm import MPIError

            raise MPIError(
                f"no applicable algorithm for {ctx.collective} (N={ctx.size})")
        return Decision(ctx.collective, candidates[0].name, self.name,
                        reason="first-applicable")


class AdaptivePolicy(MpichPolicy):
    """The paper's section 4.2 rules for every volume-carrying collective."""

    name = "adaptive"

    def decide(self, ctx: SelectionContext, prof: Any = NULL_PROFILER) -> Decision:
        sole = self._sole(ctx)
        if sole is not None:
            return sole
        if ctx.collective == "allgatherv":
            return self._adaptive_allgatherv(ctx, prof)
        if ctx.collective == "alltoallw":
            return Decision(ctx.collective, "binned", self.name,
                            reason="adaptive")
        if ctx.collective == "sparse_alltoall":
            return self._adaptive_sparse(ctx)
        return self._first_applicable(ctx)


class FlagPolicy(SelectionPolicy):
    """Per-collective mpich/adaptive derived from the config's feature
    flags -- the pre-registry dispatch, written once.  Reports the
    underlying rule ("mpich"/"adaptive") as its policy name so metrics
    reflect what actually decided."""

    def __init__(self, config: MPIConfig):
        super().__init__(config)
        self._mpich = MpichPolicy(config)
        self._adaptive = AdaptivePolicy(config)

    @property
    def name(self) -> str:  # type: ignore[override]
        if self.config.adaptive_allgatherv and self.config.binned_alltoallw:
            return "adaptive"
        if self.config.adaptive_allgatherv or self.config.binned_alltoallw:
            return "flags"
        return "mpich"

    def decide(self, ctx: SelectionContext, prof: Any = NULL_PROFILER) -> Decision:
        if ctx.collective == "allgatherv":
            delegate = (self._adaptive if self.config.adaptive_allgatherv
                        else self._mpich)
        elif ctx.collective in ("alltoallw", "sparse_alltoall"):
            delegate = (self._adaptive if self.config.binned_alltoallw
                        else self._mpich)
        else:
            delegate = self._mpich
        return delegate.decide(ctx, prof)


class FixedPolicy(SelectionPolicy):
    """Force one named algorithm wherever it is registered and applicable."""

    def __init__(self, config: MPIConfig, algorithm: str):
        super().__init__(config)
        self.algorithm = algorithm
        self.name = f"fixed:{algorithm}"
        self._fallback = MpichPolicy(config)

    def decide(self, ctx: SelectionContext, prof: Any = NULL_PROFILER) -> Decision:
        if self.algorithm in REGISTRY.names(ctx.collective):
            algorithm = REGISTRY.get(ctx.collective, self.algorithm)
            if algorithm.applicable(ctx):
                return Decision(ctx.collective, self.algorithm, self.name,
                                reason="fixed")
            reason = "fixed:inapplicable"
        else:
            reason = "fixed:unregistered"
        decision = self._fallback.decide(ctx, prof)
        decision.policy = self.name
        decision.reason = f"{reason}->{decision.reason}"
        return decision


class AutotunedPolicy(SelectionPolicy):
    """Tuning-table lookups with an LRU decision cache.

    A table hit costs one bucket classification plus a dict probe -- no
    simulated CPU is charged, unlike the adaptive policy's linear-time
    detection pass.  Untrained buckets fall back to the adaptive rule
    (with its honest detection cost).  Entries pre-seeded from the
    analyzer's static communication plans (``source: "static"``) decide
    with reason ``table:static`` so metrics distinguish measured
    evidence from static prediction."""

    name = "autotuned"
    CACHE_SIZE = 256

    def __init__(self, config: MPIConfig, table: Optional[TuningTable] = None):
        super().__init__(config)
        if table is None and config.tuning_table:
            table = load_table(config.tuning_table)
        self.table = table
        self._fallback = AdaptivePolicy(config)
        #: bucket key -> (algorithm, reason)
        self._cache: "OrderedDict[str, tuple]" = OrderedDict()

    def decide(self, ctx: SelectionContext, prof: Any = NULL_PROFILER) -> Decision:
        sole = self._sole(ctx)
        if sole is not None:
            return sole
        key = bucket_key(ctx)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            algorithm, reason = cached
            if REGISTRY.get(ctx.collective, algorithm).applicable(ctx):
                return Decision(ctx.collective, algorithm, self.name,
                                reason=reason, cache="hit")
        algorithm = self.table.lookup(key) if self.table is not None else None
        if (algorithm is not None
                and algorithm in REGISTRY.names(ctx.collective)
                and REGISTRY.get(ctx.collective, algorithm).applicable(ctx)):
            reason = ("table:static"
                      if self.table.source(key) == "static" else "table")
            self._remember(key, algorithm, reason)
            return Decision(ctx.collective, algorithm, self.name,
                            reason=reason, cache="miss")
        decision = self._fallback.decide(ctx, prof)
        decision.policy = self.name
        decision.reason = f"untrained->{decision.reason}"
        decision.cache = "miss"
        return decision

    def _remember(self, key: str, algorithm: str,
                  reason: str = "table") -> None:
        self._cache[key] = (algorithm, reason)
        self._cache.move_to_end(key)
        while len(self._cache) > self.CACHE_SIZE:
            self._cache.popitem(last=False)


@lru_cache(maxsize=128)
def policy_for(config: MPIConfig) -> SelectionPolicy:
    """Resolve (and cache) the policy object one config maps onto.

    ``MPIConfig`` is frozen/hashable, so identical configs share one policy
    instance -- which is what gives the autotuned policy a process-wide
    decision cache per config.
    """
    spec = config.selection_policy
    if spec is None:
        if config.adaptive_allgatherv and config.binned_alltoallw:
            return AdaptivePolicy(config)
        if not config.adaptive_allgatherv and not config.binned_alltoallw:
            return MpichPolicy(config)
        return FlagPolicy(config)
    if spec == "mpich":
        return MpichPolicy(config)
    if spec == "adaptive":
        return AdaptivePolicy(config)
    if spec == "autotuned":
        return AutotunedPolicy(config)
    if spec.startswith("fixed:"):
        return FixedPolicy(config, spec.split(":", 1)[1])
    raise ValueError(f"unknown selection_policy {spec!r}")


def select(comm: Any, collective: str,
           ctx: Optional[SelectionContext] = None,
           algorithm: Optional[str] = None) -> Decision:
    """Select the algorithm for one collective call on ``comm``.

    ``algorithm`` forces a specific implementation (microbenchmarks); the
    decision is still validated against the registry.  Emits the
    selection-decision counter and tuning-cache metrics.
    """
    if ctx is None:
        ctx = SelectionContext.for_comm(comm, collective)
    cluster = getattr(comm, "cluster", None)
    prof = cluster.profiler if cluster is not None else NULL_PROFILER
    if algorithm is not None:
        REGISTRY.get(collective, algorithm)  # raises MPIError when unknown
        decision = Decision(collective, algorithm, "forced", reason="forced")
    else:
        decision = policy_for(comm.config).decide(ctx, prof)
    if prof.enabled:
        prof.count("repro_algorithm_selections_total", labels={
            "collective": collective,
            "algorithm": decision.algorithm,
            "policy": decision.policy,
        })
        if decision.cache == "hit":
            prof.count("repro_tuning_cache_hits_total")
        elif decision.cache == "miss":
            prof.count("repro_tuning_cache_misses_total")
    return decision
