"""The collective-algorithm registry (MPICH CVAR-table style).

Every collective of the simulated stack registers its candidate
implementations here as named :class:`Algorithm` entries carrying

- an **applicability predicate** over a :class:`SelectionContext`
  (power-of-two communicator only, contiguous element types only, ...),
- a **cost-model estimator**: a closed-form alpha-beta latency estimate
  used by the autotuner as a sanity prior and exposed for debugging,
- the implementation function itself (a per-rank generator).

Selection logic lives one layer up, in :mod:`repro.mpi.algorithms.policies`;
nothing outside this package should import a concrete implementation
function directly (lint rule LNT006 enforces it).

Implementation modules self-register on import via
:meth:`AlgorithmRegistry.register`; :data:`REGISTRY` lazily imports the
builtin collective modules on first use so the import graph stays acyclic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mpi.config import MPIConfig
from repro.util.costmodel import CostModel


@dataclass(frozen=True)
class SelectionContext:
    """Everything a selection policy may consult for one collective call.

    ``volumes`` is the communication-volume set in **bytes**: per-rank
    contributions for allgatherv-style collectives, per-peer send sizes for
    alltoallw.  Control-plane collectives pass an empty tuple.
    """

    collective: str
    size: int
    volumes: Tuple[int, ...] = ()
    dtype_size: int = 1
    contiguous: bool = True
    config: Optional[MPIConfig] = None
    cost: Optional[CostModel] = None

    @classmethod
    def for_comm(cls, comm: Any, collective: str,
                 volumes: Sequence[int] = (), dtype_size: int = 1,
                 contiguous: bool = True) -> "SelectionContext":
        return cls(
            collective=collective,
            size=comm.size,
            volumes=tuple(int(v) for v in volumes),
            dtype_size=dtype_size,
            contiguous=contiguous,
            config=comm.config,
            cost=comm.cost,
        )

    @property
    def pow2(self) -> bool:
        return self.size > 0 and self.size & (self.size - 1) == 0

    @property
    def total_bytes(self) -> int:
        return sum(self.volumes)

    @property
    def max_bytes(self) -> int:
        return max(self.volumes) if self.volumes else 0

    @property
    def nonzero(self) -> int:
        return sum(1 for v in self.volumes if v > 0)


@dataclass(frozen=True)
class Algorithm:
    """One named implementation of a collective."""

    collective: str
    name: str
    fn: Callable[..., Any]
    predicate: Optional[Callable[[SelectionContext], bool]] = None
    estimator: Optional[Callable[[SelectionContext], float]] = None
    description: str = ""

    def applicable(self, ctx: SelectionContext) -> bool:
        return self.predicate is None or bool(self.predicate(ctx))

    def estimate(self, ctx: SelectionContext) -> float:
        """Closed-form latency estimate (seconds); inf when no estimator."""
        if self.estimator is None:
            return math.inf
        return float(self.estimator(ctx))


class AlgorithmRegistry:
    """Name-keyed store of collective algorithms."""

    def __init__(self) -> None:
        self._algorithms: Dict[str, Dict[str, Algorithm]] = {}
        self._loaded = False

    # -- registration --------------------------------------------------------

    def register(self, algorithm: Algorithm) -> Algorithm:
        per = self._algorithms.setdefault(algorithm.collective, {})
        existing = per.get(algorithm.name)
        if existing is not None and existing.fn is not algorithm.fn:
            raise ValueError(
                f"algorithm {algorithm.collective}/{algorithm.name} already "
                "registered with a different implementation"
            )
        per[algorithm.name] = algorithm
        return algorithm

    def register_fn(self, collective: str, name: str,
                    predicate: Optional[Callable] = None,
                    estimator: Optional[Callable] = None,
                    description: str = "") -> Callable:
        """Decorator form of :meth:`register` used by the builtin modules."""

        def deco(fn: Callable) -> Callable:
            self.register(Algorithm(
                collective=collective, name=name, fn=fn,
                predicate=predicate, estimator=estimator,
                description=description,
            ))
            return fn

        return deco

    # -- lookup --------------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self._loaded = True
            _load_builtins()

    def collectives(self) -> List[str]:
        self._ensure_loaded()
        return sorted(self._algorithms)

    def names(self, collective: str) -> List[str]:
        self._ensure_loaded()
        return sorted(self._algorithms.get(collective, {}))

    def get(self, collective: str, name: str) -> Algorithm:
        self._ensure_loaded()
        per = self._algorithms.get(collective)
        if per is None:
            from repro.mpi.comm import MPIError

            raise MPIError(f"no algorithms registered for collective "
                           f"{collective!r}")
        algorithm = per.get(name)
        if algorithm is None:
            from repro.mpi.comm import MPIError

            raise MPIError(
                f"unknown {collective} algorithm {name!r} "
                f"(registered: {sorted(per)})"
            )
        return algorithm

    def implementation(self, collective: str, name: str) -> Callable[..., Any]:
        return self.get(collective, name).fn

    def candidates(self, collective: str,
                   ctx: Optional[SelectionContext] = None) -> List[Algorithm]:
        """All algorithms of ``collective``; filtered by applicability when
        a context is given."""
        self._ensure_loaded()
        algorithms = [self._algorithms.get(collective, {})[n]
                      for n in self.names(collective)]
        if ctx is not None:
            algorithms = [a for a in algorithms if a.applicable(ctx)]
        return algorithms

    def only(self, collective: str) -> Algorithm:
        """The sole registered algorithm of a single-candidate collective."""
        candidates = self.candidates(collective)
        if len(candidates) != 1:
            raise ValueError(
                f"collective {collective!r} has {len(candidates)} candidates; "
                "use a selection policy"
            )
        return candidates[0]


#: the process-wide registry every collective self-registers into
REGISTRY = AlgorithmRegistry()


def _load_builtins() -> None:
    """Import the builtin collective modules (self-registering)."""
    import repro.mpi.collectives.allgatherv  # noqa: F401
    import repro.mpi.collectives.alltoallw  # noqa: F401
    import repro.mpi.collectives.basic  # noqa: F401
    import repro.mpi.collectives.gather  # noqa: F401
    import repro.mpi.collectives.reduce  # noqa: F401
    import repro.mpi.collectives.sparse  # noqa: F401
