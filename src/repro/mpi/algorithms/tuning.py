"""Tuning tables for the ``autotuned`` selection policy.

A tuning table maps a **bucket key** -- collective, communicator-size
bucket, total-volume bucket and volume-profile class -- to the algorithm
that won a simulator measurement sweep (:mod:`repro.mpi.algorithms.autotune`).

Schema (``repro-tuning/1``, JSON)::

    {
      "schema": "repro-tuning/1",
      "cost_model": {"alpha": ..., "beta": ..., "copy_byte": ...},
      "entries": {
        "allgatherv|p64|b15|outlier": {
          "algorithm": "recursive_doubling",
          "latency_us": {"ring": 812.4, "recursive_doubling": 96.1, ...},
          "scenarios": 2
        },
        ...
      }
    }

Bucket keys are coarse on purpose: a table trained on a handful of sweep
points generalises to every call that lands in the same bucket.  At
runtime the :class:`repro.mpi.algorithms.policies.AutotunedPolicy` keeps an
LRU cache of recent decisions so the per-call overhead is one dict hit.
"""

from __future__ import annotations

import json
import math
from functools import lru_cache
from typing import Dict, Optional, Sequence

from repro.mpi.algorithms.registry import SelectionContext

SCHEMA = "repro-tuning/1"

#: the analyzer's static communication-plan artifact
#: (``repro.analyze.emit.to_plans``); :meth:`TuningTable.preseed` ingests it
PLANS_SCHEMA = "repro-plans/1"

#: max-over-mean ratio above which a volume set is classed as "outlier"
OUTLIER_PROFILE_RATIO = 4.0

#: fraction of zero-volume entries above which a set is classed "sparse"
SPARSE_ZERO_FRACTION = 0.5


def volume_profile(volumes: Sequence[int]) -> str:
    """Coarse volume-distribution class: zero / sparse / outlier / uniform.

    This is a bucketing heuristic, *not* the paper's Eq. 1 decision rule --
    it only has to route a call to the right trained table entry, so a
    cheap max/mean ratio (no k-select pass) is enough.
    """
    volumes = list(volumes)
    n = len(volumes)
    if n == 0:
        return "zero"
    total = sum(volumes)
    if total == 0:
        return "zero"
    zeros = sum(1 for v in volumes if v == 0)
    if zeros / n >= SPARSE_ZERO_FRACTION:
        return "sparse"
    if max(volumes) * n / total >= OUTLIER_PROFILE_RATIO:
        return "outlier"
    return "uniform"


def size_bucket(n: int) -> int:
    """Communicator sizes bucket to the next power of two."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def total_bucket(total_bytes: int) -> int:
    """Total volumes bucket to log2 (0 for empty)."""
    if total_bytes <= 0:
        return 0
    return int(math.log2(total_bytes))


#: collectives whose algorithm choice must be rank-uniform *without*
#: communicating: their algorithms speak incompatible wire protocols
#: (``sparse_alltoall``'s dense counts exchange vs NBX consensus), and the
#: per-rank volume set differs on every rank -- a volume-derived bucket
#: could send different ranks to different table entries and deadlock the
#: exchange.  These collectives bucket on rank-uniform features only.
UNIFORM_BUCKET_COLLECTIVES = frozenset({"sparse_alltoall"})


def bucket_key(ctx: SelectionContext) -> str:
    """The table key one collective call falls into."""
    if ctx.collective in UNIFORM_BUCKET_COLLECTIVES:
        return f"{ctx.collective}|p{size_bucket(ctx.size)}|uniform"
    return (
        f"{ctx.collective}|p{size_bucket(ctx.size)}"
        f"|b{total_bucket(ctx.total_bytes)}|{volume_profile(ctx.volumes)}"
    )


class TuningTable:
    """In-memory view of one tuning-table JSON document."""

    def __init__(self, entries: Optional[Dict[str, dict]] = None,
                 cost_model: Optional[dict] = None):
        self.entries: Dict[str, dict] = dict(entries or {})
        self.cost_model = dict(cost_model or {})

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, key: str) -> Optional[str]:
        """The winning algorithm for ``key``, or None when untrained."""
        entry = self.entries.get(key)
        return None if entry is None else entry.get("algorithm")

    def record(self, key: str, latencies: Dict[str, float]) -> None:
        """Merge one scenario's per-algorithm latencies (seconds) into the
        table; the entry's winner is the argmin of accumulated latency.
        A measurement upgrades a statically pre-seeded entry."""
        entry = self.entries.setdefault(
            key, {"algorithm": None, "latency_us": {}, "scenarios": 0})
        acc = entry.setdefault("latency_us", {})
        for name, seconds in latencies.items():
            acc[name] = acc.get(name, 0.0) + seconds * 1e6
        entry["scenarios"] = entry.get("scenarios", 0) + 1
        entry["algorithm"] = min(acc, key=acc.get)
        entry["source"] = "measured"

    def source(self, key: str) -> Optional[str]:
        """``"measured"`` / ``"static"`` for a trained key, None when
        untrained (entries predating the field count as measured)."""
        entry = self.entries.get(key)
        if entry is None:
            return None
        return entry.get("source", "measured")

    def preseed(self, plans_doc: dict) -> int:
        """Pre-seed untrained buckets from a ``repro-plans/1`` document
        (the analyzer's static communication plans).

        Each statically classified bucket whose call sites agree on a
        predicted algorithm becomes a ``source: "static"`` entry with no
        latency evidence; measured entries are never overwritten.
        Returns the number of buckets seeded.
        """
        if plans_doc.get("schema") != PLANS_SCHEMA:
            raise ValueError(
                f"not a {PLANS_SCHEMA} document "
                f"(schema={plans_doc.get('schema')!r})")
        seeded = 0
        for key, info in sorted(plans_doc.get("buckets", {}).items()):
            algorithm = info.get("algorithm")
            if not algorithm or key in self.entries:
                continue
            self.entries[key] = {
                "algorithm": algorithm,
                "latency_us": {},
                "scenarios": 0,
                "source": "static",
            }
            seeded += 1
        return seeded

    # -- (de)serialisation ---------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "cost_model": self.cost_model,
            "entries": self.entries,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "TuningTable":
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} document (schema={doc.get('schema')!r})")
        return cls(entries=doc.get("entries"), cost_model=doc.get("cost_model"))

    @classmethod
    def load(cls, path: str) -> "TuningTable":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@lru_cache(maxsize=16)
def load_table(path: str) -> TuningTable:
    """Cached table loader used by the autotuned policy (one parse per
    path per process)."""
    return TuningTable.load(path)
