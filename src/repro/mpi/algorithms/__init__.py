"""``repro.mpi.algorithms`` -- the collective-algorithm registry and its
selection-policy layer (the production shape of the paper's section 4.2
runtime algorithm selection).

Three layers:

- :mod:`repro.mpi.algorithms.registry` -- :data:`REGISTRY`, an
  :class:`AlgorithmRegistry` of named implementations per collective with
  applicability predicates and cost estimators,
- :mod:`repro.mpi.algorithms.policies` -- ``fixed(name)`` / ``mpich`` /
  ``adaptive`` / ``autotuned`` selection policies plus :func:`select`, the
  single dispatch point every collective entry function calls,
- :mod:`repro.mpi.algorithms.tuning` / ``autotune`` -- the tuning-table
  schema and the simulator sweep that fills it
  (``python -m repro.bench --autotune``).

:mod:`repro.mpi.algorithms.validation` additionally hosts the shared
counts/displacements normaliser the v-collectives use.
"""

from repro.mpi.algorithms.registry import (  # noqa: F401
    REGISTRY,
    Algorithm,
    AlgorithmRegistry,
    SelectionContext,
)
from repro.mpi.algorithms.policies import (  # noqa: F401
    AdaptivePolicy,
    AutotunedPolicy,
    Decision,
    FixedPolicy,
    FlagPolicy,
    MpichPolicy,
    SelectionPolicy,
    policy_for,
    select,
)
from repro.mpi.algorithms.tuning import (  # noqa: F401
    TuningTable,
    bucket_key,
    load_table,
    size_bucket,
    total_bucket,
    volume_profile,
)
from repro.mpi.algorithms.validation import (  # noqa: F401
    check_spec_lengths,
    normalize_counts_displs,
)

__all__ = [
    "REGISTRY",
    "Algorithm",
    "AlgorithmRegistry",
    "AdaptivePolicy",
    "AutotunedPolicy",
    "Decision",
    "FixedPolicy",
    "FlagPolicy",
    "MpichPolicy",
    "SelectionContext",
    "SelectionPolicy",
    "TuningTable",
    "bucket_key",
    "check_spec_lengths",
    "load_table",
    "normalize_counts_displs",
    "policy_for",
    "select",
    "size_bucket",
    "total_bucket",
    "volume_profile",
]
