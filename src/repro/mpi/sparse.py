"""Public API of the sparse dynamic data exchange.

``sparse_alltoall`` is the communicator-level entry point (also available
as :meth:`repro.mpi.comm.Comm.sparse_alltoall`, which adds the fail-fast
failure semantics every collective carries); :func:`ibarrier` is the
reusable nonblocking-consensus primitive NBX is built on.  The algorithm
implementations, their registry entries and the wire-protocol contract
live in :mod:`repro.mpi.collectives.sparse`.
"""

from repro.mpi.collectives.sparse import ibarrier, sparse_alltoall

__all__ = ["ibarrier", "sparse_alltoall"]
