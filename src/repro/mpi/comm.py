"""Cluster, communicator and point-to-point messaging.

Timing protocol (see DESIGN.md):

- **Datatype processing happens at send-call time on the sender's CPU**, as
  in MPICH2: ``send``/``isend`` charge the engine-planned look-ahead, search
  and pack costs before anything reaches the wire.  This is exactly why the
  baseline ``Alltoallw`` delays small-message peers behind large
  noncontiguous ones (paper section 3.2) -- the processing is serialised by
  the host processor.
- **Eager protocol** (payload <= ``eager_threshold``): the send completes as
  soon as the payload is packed; delivery proceeds in the background and
  does not require the receive to be posted first.
- **Rendezvous protocol** (larger payloads): the wire transfer starts only
  once the matching receive is posted, and the send completes when the last
  chunk has left the sender.
- **The wire** is the :class:`repro.simtime.network.NetworkModel`: every
  message (even zero-byte) pays ``alpha``; nodes have one send and one
  receive port, so concurrent messages through a node serialise.
- **Receiver-side unpack** is charged to the receiver after arrival; the
  receive completes after it.

Payload bytes genuinely move: the packed numpy bytes of the send buffer are
unpacked into the receive buffer's typed layout on delivery.
"""

from __future__ import annotations

import zlib
from time import perf_counter
from typing import Any, Callable, Generator, List, Optional, Sequence

import numpy as np

from repro.datatypes.engine import engine_for, unpack_stage_cost
from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import BYTE, Datatype, primitive_for, sig_crc
from repro.mpi.config import MPIConfig
from repro.mpi.errors import (
    CommRevokedError,
    FaultToleranceError,
    RankFailedError,
    TransportError,
)
from repro.mpi.request import Request, Status
from repro.prof import NULL_PROFILER
from repro.prof.session import attach_if_enabled
from repro.simtime.engine import Delay, Engine, SimFuture
from repro.simtime.network import NetworkModel, WireOutcome
from repro.util.costmodel import CostLedger, CostModel

ANY_SOURCE = -1
ANY_TAG = -1

#: tags at or above this value are reserved for collective operations
_COLLECTIVE_TAG_BASE = 1_000_000


class MPIError(RuntimeError):
    """Erroneous use of the message-passing API."""


def payload_crc(data: Any) -> int:
    """CRC32 of a message payload, as computed by the reliable transport.

    Packed payloads (numpy byte arrays from :meth:`TypedBuffer.pack`) are
    checksummed over their raw bytes; control-plane python objects over
    their ``repr``.  Exposed so tests and the chaos harness can verify
    end-to-end payload integrity independently of the transport.
    """
    if isinstance(data, np.ndarray):
        return zlib.crc32(data.tobytes()) & 0xFFFFFFFF
    return zlib.crc32(repr(data).encode("utf-8")) & 0xFFFFFFFF


def _first_of(engine: Engine, *futures: SimFuture) -> Generator:
    """Yieldable: resume as soon as ANY of ``futures`` resolves.

    Unlike yielding a future directly, this does not retrieve results or
    raise stored exceptions -- the caller re-inspects the futures it cares
    about afterwards.  Used to race a rendezvous match against a liveness
    poll timer.
    """
    for fut in futures:
        if fut.done:
            return
    winner = engine.future("first-of")

    def wake(_fut: SimFuture) -> None:
        if not winner.done:
            winner.set_result(None)

    for fut in futures:
        fut.add_done_callback(wake)
    yield winner


class TruncationError(MPIError):
    """A message arrived that is larger than the posted receive buffer."""


def as_typed(
    buffer: Any,
    datatype: Optional[Datatype] = None,
    count: Optional[int] = None,
    offset_bytes: int = 0,
) -> TypedBuffer:
    """Normalise user buffer arguments into a :class:`TypedBuffer`.

    Accepts a ready-made ``TypedBuffer`` or a numpy array (datatype inferred
    from the array's dtype when not given; count defaults to the whole
    array).
    """
    if isinstance(buffer, TypedBuffer):
        return buffer
    arr = np.asarray(buffer)
    if datatype is None:
        datatype = primitive_for(arr.dtype)
    if count is None:
        if arr.size * arr.itemsize % datatype.extent:
            raise MPIError(
                f"buffer of {arr.size * arr.itemsize} bytes does not hold a "
                f"whole number of {datatype!r} (extent {datatype.extent})"
            )
        count = (arr.size * arr.itemsize - offset_bytes) // datatype.extent
    return TypedBuffer(arr, datatype, count=count, offset_bytes=offset_bytes)


class _SendRecord:
    """Bookkeeping for one in-flight message (ranks are cluster-global)."""

    __slots__ = (
        "src", "dst", "tag", "ctx", "data", "nbytes", "is_obj",
        "match_fut", "recv_rec", "sent_fut", "recv_fut", "arrived", "sig",
        "seq", "crc", "transport_exc", "msg_id",
    )

    def __init__(self, engine: Engine, src: int, dst: int, tag: int,
                 ctx: Any, data: Any, nbytes: int, is_obj: bool,
                 sig: Optional[int] = None, msg_id: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.ctx = ctx
        self.data = data
        self.nbytes = nbytes
        self.is_obj = is_obj
        self.sig = sig  # flattened typemap signature tuple (None for obj sends)
        #: cluster-unique causal id threaded through the wire events, the
        #: Request, the trace records and the profiler spans of this message
        self.msg_id = msg_id
        self.match_fut = engine.future(f"match {src}->{dst} tag={tag}")
        self.recv_rec: Optional[_RecvRecord] = None
        self.sent_fut = engine.future(f"sent {src}->{dst} tag={tag}")
        self.recv_fut: Optional[SimFuture] = None
        self.arrived = False
        #: reliable-transport state: sequence number and payload checksum
        #: (assigned by the transport; None on the fast default path)
        self.seq: Optional[int] = None
        self.crc: Optional[int] = None
        #: terminal transport failure; poisons a late-binding receive
        self.transport_exc: Optional[BaseException] = None


class _RecvRecord:
    """A posted receive (``source`` is cluster-global or ANY_SOURCE)."""

    __slots__ = ("source", "tag", "ctx", "tb", "future", "is_obj", "comm", "sig")

    def __init__(self, source: int, tag: int, ctx: Any,
                 tb: Optional[TypedBuffer], future: SimFuture, is_obj: bool,
                 comm: "Comm", sig: Optional[int] = None):
        self.source = source
        self.tag = tag
        self.ctx = ctx
        self.tb = tb
        self.future = future
        self.is_obj = is_obj
        self.comm = comm
        self.sig = sig  # expected signature tuple (None for obj receives)

    def matches(self, rec: _SendRecord) -> bool:
        return (
            self.ctx == rec.ctx
            and (self.source == ANY_SOURCE or self.source == rec.src)
            and (self.tag == ANY_TAG or self.tag == rec.tag)
            and self.is_obj == rec.is_obj
        )


class Cluster:
    """A simulated cluster running one MPI job.

    >>> cluster = Cluster(4, config=MPIConfig.optimized())
    >>> def main(comm):
    ...     yield from comm.barrier()
    ...     return comm.rank
    >>> cluster.run(main)
    [0, 1, 2, 3]
    """

    def __init__(
        self,
        nranks: int,
        config: Optional[MPIConfig] = None,
        cost: Optional[CostModel] = None,
        seed: int = 0,
        heterogeneous: Optional[bool] = None,
        fault_plan: Optional[Any] = None,
    ):
        self.nranks = nranks
        self.config = config or MPIConfig.optimized()
        self.cost = cost or CostModel()
        self.engine = Engine()
        self.net = NetworkModel(
            self.engine, nranks, cost=self.cost, seed=seed,
            heterogeneous=heterogeneous,
        )
        self.ledgers = [CostLedger() for _ in range(nranks)]
        self._posted: List[List[_RecvRecord]] = [[] for _ in range(nranks)]
        self._unexpected: List[List[_SendRecord]] = [[] for _ in range(nranks)]
        self._observers: List[Any] = []
        #: the instrumentation sink; NULL_PROFILER until a
        #: :class:`repro.prof.Profiler` is attached (no-op, near-zero cost)
        self.profiler = NULL_PROFILER
        # -- fault-tolerance state (inert unless faults are injected) -----
        #: cluster-global ranks declared failed (crash semantics)
        self.failed_ranks: set = set()
        #: cluster-global ranks that hang: silently stopped, not yet failed
        self.hung_ranks: set = set()
        #: revoked communicator contexts -> cause exception (or None)
        self._revoked: dict = {}
        #: grank -> main SimProcess (populated by :meth:`run`)
        self._rank_procs: dict = {}
        #: reliable-transport sequence numbers and per-rank dedupe sets
        self._msg_seq = 0
        self._seen_seqs: List[set] = [set() for _ in range(nranks)]
        #: causal message ids (one per logical p2p message, all protocols)
        self._next_msg_id = 0
        #: the attached :class:`repro.faults.injector.FaultInjector` (or None)
        self.fault_injector: Optional[Any] = None
        if fault_plan is None:
            # a process-global plan (repro.faults.set_default_plan, used by
            # `repro.bench --degrade` for the regression-gate self-test)
            # applies to every cluster not given an explicit plan
            from repro.faults.injector import get_default_plan
            fault_plan = get_default_plan()
        if fault_plan is not None:
            # imported lazily: repro.faults depends on repro.mpi.errors only,
            # but keeping the import out of module scope avoids any cycle
            from repro.faults.injector import FaultInjector
            self.fault_injector = FaultInjector(fault_plan, self)
            self.fault_injector.install()
        # wire transfers fan out through the observer machinery ("transfer")
        self.net.add_transfer_listener(self._on_transfer)
        self._comms = [Comm(self, r) for r in range(nranks)]
        # a process-wide profiling session (repro.prof.session) auto-attaches
        attach_if_enabled(self)

    def _on_transfer(self, event: Any) -> None:
        self._notify("transfer", event)

    def _new_msg_id(self) -> int:
        """The next causal message id (cluster-unique, starts at 1)."""
        self._next_msg_id += 1
        return self._next_msg_id

    # -- instrumentation -----------------------------------------------------

    def add_observer(self, observer: Any) -> None:
        """Register an instrumentation observer.

        An observer is any object; for every event ``evt`` the cluster looks
        up an ``on_<evt>`` method and, when present, calls it.  Events:

        ==================  =====================================================
        ``send_posted``     ``(rec)`` -- a message entered the matching machinery
        ``recv_posted``     ``(grank, rrec)`` -- a receive was posted
        ``match``           ``(rec, rrec)`` -- a send/receive pair bound
        ``truncation``      ``(rec, rrec)`` -- a bind failed: message too large
        ``request``         ``(grank, req)`` -- a :class:`Request` was handed out
        ``collective``      ``(grank, ctx, seq, op, detail)`` -- collective entry
        ``transfer``        ``(event)`` -- a wire transfer completed
                            (:class:`repro.simtime.network.TransferEvent`)
        ==================  =====================================================

        Used by :class:`repro.analyze.runtime.RuntimeVerifier`,
        :class:`repro.mpi.trace.MessageTrace` and
        :class:`repro.prof.Profiler` -- all ordinary subscribers; nothing
        monkey-patches ``net.transfer`` anymore.
        """
        self._observers.append(observer)

    def _notify(self, event: str, *args: Any) -> None:
        for obs in self._observers:
            fn = getattr(obs, "on_" + event, None)
            if fn is not None:
                fn(*args)

    def comm(self, rank: int) -> "Comm":
        return self._comms[rank]

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the job started."""
        return self.engine.now

    def run(self, fn: Callable[..., Generator], *args: Any,
            return_exceptions: bool = False) -> List[Any]:
        """Spawn ``fn(comm, *args)`` on every rank; run; return rank results.

        With ``return_exceptions=True`` a rank that terminated with an
        exception (e.g. a :class:`RankFailedError` from an injected crash)
        contributes the exception object to the result list instead of
        re-raising it -- the fault-tolerant analogue of letting the job
        finish with some ranks dead.  The default re-raises the first
        failing rank's exception, exactly like ``Engine.run_all``.
        """
        procs = [
            self.engine.spawn(fn(self._comms[r], *args), f"rank{r}")
            for r in range(self.nranks)
        ]
        self._rank_procs = {r: procs[r] for r in range(self.nranks)}
        if return_exceptions:
            # register as a joiner on every rank so a failing rank parks
            # its exception for collection instead of aborting the engine
            for proc in procs:
                proc.add_done_callback(lambda _p: None)
        self.engine.run()
        results: List[Any] = []
        for proc in procs:
            if proc.exception is not None:
                if not return_exceptions:
                    raise proc.exception
                results.append(proc.exception)
            else:
                results.append(proc.result)
        return results

    def ledger_total(self, category: str) -> float:
        return sum(ledger.get(category) for ledger in self.ledgers)

    def utilization_report(self) -> dict:
        """Post-run statistics: wall (simulated) time, wire traffic, link
        occupancy and per-category CPU shares -- the numbers an MPI
        profiler would summarise.

        A zero-elapsed run (nothing ever advanced the clock) reports 0.0
        link utilization explicitly rather than dividing by a fake
        1-second wall time.
        """
        elapsed = self.elapsed
        send_busy = [p.busy_time for p in self.net.send_ports]
        recv_busy = [p.busy_time for p in self.net.recv_ports]
        categories = sorted({k for led in self.ledgers for k in led.totals})
        return {
            "elapsed": elapsed,
            "messages": self.net.messages_on_wire,
            "bytes": self.net.bytes_on_wire,
            "max_send_link_utilization": (
                max(send_busy) / elapsed if send_busy and elapsed > 0 else 0.0
            ),
            "max_recv_link_utilization": (
                max(recv_busy) / elapsed if recv_busy and elapsed > 0 else 0.0
            ),
            "cpu_seconds_by_category": {
                c: self.ledger_total(c) for c in categories
            },
        }

    # -- fault management (repro.faults; docs/FAULTS.md) ---------------------

    def fail_rank(self, grank: int, reason: str = "injected crash") -> None:
        """Crash cluster-global rank ``grank`` at the current simulated time.

        The rank's main process is killed with a :class:`RankFailedError`
        (its ``finally`` blocks run, releasing any held resources), and
        every pending operation a survivor could block on forever is
        poisoned with the same error:

        - receives posted by survivors naming ``grank`` as the source,
        - unmatched sends to or from ``grank`` (their conduits terminate),
        - probes waiting for a message from ``grank``.

        Messages that had already *matched* keep flowing -- the simulated
        network is store-and-forward -- so in-flight deliveries complete.
        Idempotent: failing an already-failed rank is a no-op.
        """
        if grank in self.failed_ranks:
            return
        if not 0 <= grank < self.nranks:
            raise ValueError(f"rank out of range: {grank}")
        self.failed_ranks.add(grank)
        self.hung_ranks.discard(grank)
        if self.profiler.enabled:
            self.profiler.count("repro_rank_failures_total")
        self._notify("rank_failed", grank, reason)
        proc = self._rank_procs.get(grank)
        if proc is not None:
            self.engine.kill(proc, RankFailedError(grank, reason))
        self._sweep_failed_rank(grank, reason)

    def hang_rank(self, grank: int, detect_after: Optional[float] = None,
                  reason: str = "injected hang") -> None:
        """Silently stop ``grank``'s main process (a hang, not a crash).

        No exception is delivered and no queues are swept: partners block
        exactly as they would on a real unresponsive peer, until either
        the reliable transport times out (:class:`TransportError`) or --
        when ``detect_after`` is given -- the failure detector declares
        the rank failed after that many simulated seconds and converts
        the hang into a crash via :meth:`fail_rank`.
        """
        if grank in self.failed_ranks or grank in self.hung_ranks:
            return
        if not 0 <= grank < self.nranks:
            raise ValueError(f"rank out of range: {grank}")
        self.hung_ranks.add(grank)
        self._notify("rank_hung", grank, reason)
        proc = self._rank_procs.get(grank)
        if proc is not None:
            self.engine.kill(proc, None)
        if detect_after is not None:
            self.engine.schedule(
                detect_after,
                lambda: self.fail_rank(
                    grank, f"{reason} (declared failed by the detector)"
                ),
            )

    def revoke_ctx(self, ctx: Any, cause: Optional[BaseException] = None) -> None:
        """Revoke communicator context ``ctx`` (``MPI_Comm_revoke``).

        Every pending operation on the context is completed with a
        :class:`CommRevokedError` carrying ``cause`` (typically the
        :class:`RankFailedError` that triggered the revocation), and any
        operation posted on it afterwards fails immediately.  This is how
        the first rank to observe a failure inside a collective releases
        every other rank blocked in the same collective.  Idempotent.
        """
        if ctx in self._revoked:
            return
        self._revoked[ctx] = cause
        for dst in range(self.nranks):
            keep_r: List[_RecvRecord] = []
            for rrec in self._posted[dst]:
                if rrec.ctx == ctx:
                    if not rrec.future.done:
                        rrec.future.set_exception(CommRevokedError(ctx, cause))
                else:
                    keep_r.append(rrec)
            self._posted[dst][:] = keep_r
            keep_s: List[_SendRecord] = []
            for rec in self._unexpected[dst]:
                if rec.ctx == ctx:
                    if not rec.match_fut.done:
                        rec.match_fut.set_exception(CommRevokedError(ctx, cause))
                    if not rec.sent_fut.done:
                        rec.sent_fut.set_exception(CommRevokedError(ctx, cause))
                else:
                    keep_s.append(rec)
            self._unexpected[dst][:] = keep_s
        waiters = getattr(self, "_probe_waiters", None)
        if waiters:
            for entries in waiters.values():
                keep_p = []
                for probe_rrec, fut in entries:
                    if probe_rrec.ctx == ctx and not fut.done:
                        fut.set_exception(CommRevokedError(ctx, cause))
                    else:
                        keep_p.append((probe_rrec, fut))
                entries[:] = keep_p

    def _sweep_failed_rank(self, grank: int, reason: str) -> None:
        """Poison every pending operation that rank ``grank``'s crash
        orphaned (see :meth:`fail_rank` for the exact rules)."""
        for dst in range(self.nranks):
            if dst == grank:
                # the dead rank's own posted receives: nobody waits on them
                self._posted[dst].clear()
                continue
            keep_r: List[_RecvRecord] = []
            for rrec in self._posted[dst]:
                if rrec.source == grank:
                    if not rrec.future.done:
                        rrec.future.set_exception(RankFailedError(grank, reason))
                else:
                    keep_r.append(rrec)
            self._posted[dst][:] = keep_r
        for dst in range(self.nranks):
            keep_s: List[_SendRecord] = []
            for rec in self._unexpected[dst]:
                if dst == grank or rec.src == grank:
                    if not rec.match_fut.done:
                        rec.match_fut.set_exception(RankFailedError(grank, reason))
                    if not rec.sent_fut.done:
                        rec.sent_fut.set_exception(RankFailedError(grank, reason))
                else:
                    keep_s.append(rec)
            self._unexpected[dst][:] = keep_s
        waiters = getattr(self, "_probe_waiters", None)
        if waiters:
            for dst, entries in waiters.items():
                if dst == grank:
                    entries.clear()
                    continue
                keep_p = []
                for probe_rrec, fut in entries:
                    if probe_rrec.source == grank and not fut.done:
                        fut.set_exception(RankFailedError(grank, reason))
                    else:
                        keep_p.append((probe_rrec, fut))
                entries[:] = keep_p

    # -- matching ------------------------------------------------------------

    def _post_send(self, rec: _SendRecord) -> None:
        self._notify("send_posted", rec)
        if self._revoked and rec.ctx in self._revoked:
            # the ctx was revoked while the sender was mid-call (e.g.
            # suspended in datatype-processing CPU charges): fail the send
            # here, the authoritative gate, so no record ever enters the
            # matching queues of a dead context
            exc = CommRevokedError(rec.ctx, self._revoked[rec.ctx])
            if not rec.sent_fut.done:
                rec.sent_fut.set_exception(exc)
            if not rec.match_fut.done:
                rec.match_fut.set_exception(exc)
            return
        if rec.dst in self.failed_ranks:
            # fail-fast: a send to a dead rank errors instead of buffering
            exc = RankFailedError(rec.dst, "destination rank has failed")
            if not rec.sent_fut.done:
                rec.sent_fut.set_exception(exc)
            if not rec.match_fut.done:
                rec.match_fut.set_exception(exc)
            return
        posted = self._posted[rec.dst]
        for i, rrec in enumerate(posted):
            if rrec.matches(rec):
                del posted[i]
                self._bind(rec, rrec)
                return
        self._unexpected[rec.dst].append(rec)
        waiters = getattr(self, "_probe_waiters", None)
        if waiters:
            for i, (probe_rrec, fut) in enumerate(waiters.get(rec.dst, [])):
                if probe_rrec.matches(rec):
                    del waiters[rec.dst][i]
                    fut.set_result(rec)
                    break

    def _post_recv(self, dst: int, rrec: _RecvRecord) -> None:
        self._notify("recv_posted", dst, rrec)
        if self._revoked and rrec.ctx in self._revoked:
            rrec.future.set_exception(
                CommRevokedError(rrec.ctx, self._revoked[rrec.ctx])
            )
            return
        if rrec.source != ANY_SOURCE and rrec.source in self.failed_ranks:
            # fail-fast: a receive naming a dead source can never complete
            rrec.future.set_exception(
                RankFailedError(rrec.source, "source rank has failed")
            )
            return
        unexpected = self._unexpected[dst]
        for i, rec in enumerate(unexpected):
            if rrec.matches(rec):
                del unexpected[i]
                self._bind(rec, rrec)
                return
        self._posted[dst].append(rrec)

    def _bind(self, rec: _SendRecord, rrec: _RecvRecord) -> None:
        if rec.transport_exc is not None:
            # the reliable transport already gave up on this message; a
            # receive binding to it late inherits the terminal failure
            rrec.future.set_exception(rec.transport_exc)
            return
        if not rec.is_obj:
            capacity = rrec.tb.nbytes if rrec.tb is not None else 0
            if rec.nbytes > capacity:
                self._notify("truncation", rec, rrec)
                exc = TruncationError(
                    f"message {rec.src}->{rec.dst} tag={rec.tag} is "
                    f"{rec.nbytes} bytes but the receive holds {capacity}"
                )
                rrec.future.set_exception(exc)
                rec.match_fut.set_exception(exc)
                return
        self._notify("match", rec, rrec)
        rec.recv_rec = rrec
        rec.recv_fut = rrec.future
        rec.match_fut.set_result(rrec)


class Comm:
    """A rank-bound communicator handle (what user generators receive).

    A communicator is a *group* of cluster-global ranks plus a matching
    context: messages only match within the same context, so subgroup
    communicators (from :meth:`dup`/:meth:`split`) never cross-talk with
    their parent.  ``rank``/``size`` are communicator-local; the global
    identity is :attr:`grank`.
    """

    def __init__(self, cluster: Cluster, rank: int,
                 group: Optional[Sequence[int]] = None, ctx: Any = 0):
        self.cluster = cluster
        self.group = list(group) if group is not None else list(range(cluster.nranks))
        self.ctx = ctx
        self.rank = rank                      # communicator-local
        self.grank = self.group[rank]         # cluster-global
        self.size = len(self.group)
        self.config = cluster.config
        self.cost = cluster.cost
        self.net = cluster.net
        self.engine = cluster.engine
        self.ledger = cluster.ledgers[self.grank]
        self._ctx_seq = 0

    def _to_global(self, rank: int) -> int:
        return self.group[rank]

    def _to_local(self, grank: int) -> int:
        return self.group.index(grank)

    # -- derived communicators ----------------------------------------------------

    def _next_ctx(self) -> Any:
        """A fresh context id, deterministic per parent communicator (all
        group members derive the same id by calling in the same order, the
        usual MPI collective-ordering requirement)."""
        self._ctx_seq += 1
        return (self.ctx, self._ctx_seq)

    def dup(self) -> "Comm":
        """A communicator with the same group but an isolated context
        (``MPI_Comm_dup``).  Collective over the group."""
        return Comm(self.cluster, self.rank, self.group, self._next_ctx())

    def split(self, color: Optional[int], key: Optional[int] = None) -> Generator:
        """Partition the group by ``color`` (``MPI_Comm_split``).

        Ranks passing the same color form a new communicator, ordered by
        ``(key, old rank)``; ``color=None`` (MPI_UNDEFINED) returns None.
        Collective over the group -- the color/key exchange costs a real
        gather + broadcast round.
        """
        ctx = self._next_ctx()
        mine = (color, key if key is not None else self.rank, self.rank)
        entries = yield from self.gather_obj(mine, root=0)
        entries = yield from self.bcast(entries, root=0)
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in entries if c == color
        )
        group = [self._to_global(r) for _k, r in members]
        new_rank = [r for _k, r in members].index(self.rank)
        return Comm(self.cluster, new_rank, group, (ctx, color))

    # -- fault tolerance (ULFM-style; see docs/FAULTS.md) ---------------------

    def _check_revoked(self) -> None:
        """Raise :class:`CommRevokedError` if this context was revoked."""
        revoked = self.cluster._revoked
        if revoked and self.ctx in revoked:
            raise CommRevokedError(self.ctx, revoked[self.ctx])

    @property
    def revoked(self) -> bool:
        """True once :meth:`revoke` ran (here or on any rank) for this ctx."""
        return self.ctx in self.cluster._revoked

    def revoke(self, cause: Optional[BaseException] = None) -> None:
        """Revoke this communicator (``MPIX_Comm_revoke``): every pending
        and future operation on its context fails with
        :class:`CommRevokedError` on *every* rank.  Local call, global
        effect -- this is how one rank releases peers blocked on a dead
        process.  Idempotent."""
        self.cluster.revoke_ctx(self.ctx, cause)

    def _survivors(self) -> List[int]:
        """Cluster-global ranks of this group that are still alive."""
        cluster = self.cluster
        dead = cluster.failed_ranks | cluster.hung_ranks
        return [g for g in self.group if g not in dead]

    def shrink(self) -> Generator:
        """A new communicator over the surviving subgroup
        (``MPIX_Comm_shrink``).  Collective over the survivors and usable
        even when this communicator is revoked: the replacement gets a
        fresh context derived deterministically from the survivor set, so
        all survivors construct the same one without communicating over
        the broken context.  A barrier on the new communicator confirms
        everyone arrived."""
        survivors = self._survivors()
        if self.grank not in survivors:
            raise RankFailedError(self.grank, "shrinking rank is itself dead")
        self._ctx_seq += 1
        ctx = ("shrunk", self.ctx, self._ctx_seq, tuple(survivors))
        new = Comm(self.cluster, survivors.index(self.grank), survivors, ctx)
        yield from new.barrier()
        return new

    def agree(self, flag: bool = True) -> Generator:
        """Fault-tolerant agreement (``MPIX_Comm_agree``): the logical AND
        of ``flag`` across all surviving ranks, over an ephemeral
        survivor-only context so it completes even after failures or
        revocation."""
        survivors = self._survivors()
        if self.grank not in survivors:
            raise RankFailedError(self.grank, "agreeing rank is itself dead")
        self._ctx_seq += 1
        ctx = ("agree", self.ctx, self._ctx_seq, tuple(survivors))
        sc = Comm(self.cluster, survivors.index(self.grank), survivors, ctx)
        result = yield from sc.allreduce(
            bool(flag), lambda a, b: bool(a and b)
        )
        return result

    # -- CPU accounting --------------------------------------------------------

    def cpu(self, seconds: float, category: str = "compute") -> Generator:
        """Charge ``seconds`` of nominal CPU work on this rank."""
        scaled = self.net.cpu_seconds(self.grank, seconds)
        self.ledger.charge(category, scaled)
        with self.cluster.profiler.span("cpu", category, self.grank):
            yield Delay(scaled)

    def compute(self, seconds: float) -> Generator:
        yield from self.cpu(seconds, "compute")

    # -- point-to-point --------------------------------------------------------

    def isend(
        self,
        buffer: Any,
        dest: int,
        tag: int = 0,
        datatype: Optional[Datatype] = None,
        count: Optional[int] = None,
        offset_bytes: int = 0,
    ) -> Generator:
        """Nonblocking typed send; returns a :class:`Request`.

        Datatype processing (look-ahead / search / pack) is charged inline,
        on this rank, before the call returns -- see the module docstring.
        """
        if not 0 <= dest < self.size:
            raise MPIError(f"invalid destination rank {dest}")
        self._check_revoked()
        tb = as_typed(buffer, datatype, count, offset_bytes)
        nbytes = tb.nbytes
        prof = self.cluster.profiler
        msg_id = self.cluster._new_msg_id()

        # IR-plan attribution rides on the isend span (never as new "cpu"
        # span names, which would distort the pack/wait breakdown)
        plan_attrs = (tb.plan.info()
                      if prof.enabled and tb.plan is not None else {})
        with prof.span("p2p", "isend", self.grank,
                       dest=self._to_global(dest), tag=tag, nbytes=nbytes,
                       msg_id=msg_id, **plan_attrs):
            if prof.enabled:
                prof.count("repro_send_messages_total")
                prof.count("repro_send_bytes_total", nbytes)
                if nbytes == 0:
                    prof.count("repro_zero_byte_sends_total")
            # charge datatype processing (block structure read off the
            # compiled IR plan shared by every equal-structure send)
            if nbytes > 0 and not tb.is_contiguous():
                engine = engine_for(tb, self.cost,
                                    self.config.dual_context_engine)
                stages = engine.plan()
                look = search = pack = 0.0
                for stage in stages:
                    look += stage.lookahead_s
                    search += stage.search_s
                    pack += stage.pack_s
                if prof.enabled:
                    self._count_pack_stages(prof, stages, nbytes)
                for category, seconds in (("lookahead", look),
                                          ("search", search), ("pack", pack)):
                    if seconds:
                        yield from self.cpu(seconds, category)

            if prof.enabled:
                t0 = perf_counter()
                data = tb.pack()
                prof.observe("repro_datatype_pack_exec_seconds",
                             perf_counter() - t0)
                if tb.plan is not None:
                    prof.count("repro_datatype_pack_ops_total",
                               tb.plan.program.num_ops)
            else:
                data = tb.pack()
            rec = _SendRecord(self.engine, self.grank, self._to_global(dest),
                              tag, self.ctx, data, nbytes, is_obj=False,
                              sig=tb.signature(), msg_id=msg_id)
            self.cluster._post_send(rec)
            self.engine.spawn(self._deliver(rec), f"deliver {self.rank}->{dest}")
            if nbytes <= self.config.eager_threshold and not rec.sent_fut.done:
                # eager: the payload is buffered; the send is already
                # complete (unless _post_send already failed it fail-fast)
                rec.sent_fut.set_result(None)
            req = Request(rec.sent_fut, "send", profiler=prof, rank=self.grank,
                          msg_id=msg_id)
            self.cluster._notify("request", self.grank, req)
            return req

    def _count_pack_stages(self, prof, stages, nbytes: int) -> None:
        """Pack-engine metrics for one noncontiguous send plan."""
        dense = sum(1 for s in stages if s.dense)
        prof.count("repro_pack_stages_total", len(stages))
        prof.count("repro_lookahead_dense_total", dense)
        prof.count("repro_lookahead_sparse_total", len(stages) - dense)
        prof.count("repro_pack_bytes_total", nbytes)
        researches = [s for s in stages if s.search_s > 0]
        if researches:
            prof.count("repro_research_total", len(researches))
            for s in researches:
                prof.observe("repro_research_depth_blocks", s.search_blocks)

    def send(self, buffer: Any, dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             offset_bytes: int = 0) -> Generator:
        """Blocking typed send."""
        req = yield from self.isend(buffer, dest, tag, datatype, count, offset_bytes)
        yield from req.wait()

    def irecv(
        self,
        buffer: Any,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        datatype: Optional[Datatype] = None,
        count: Optional[int] = None,
        offset_bytes: int = 0,
    ) -> Request:
        """Nonblocking typed receive; returns a :class:`Request` whose
        ``wait()`` yields a :class:`Status`."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise MPIError(f"invalid source rank {source}")
        self._check_revoked()
        tb = as_typed(buffer, datatype, count, offset_bytes)
        fut = self.engine.future(f"recv@{self.rank} tag={tag}")
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        rrec = _RecvRecord(gsource, tag, self.ctx, tb, fut, is_obj=False,
                           comm=self, sig=tb.signature())
        self.cluster._post_recv(self.grank, rrec)
        req = Request(fut, "recv", profiler=self.cluster.profiler,
                      rank=self.grank)
        self.cluster._notify("request", self.grank, req)
        return req

    def recv(self, buffer: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             offset_bytes: int = 0) -> Generator:
        """Blocking typed receive; returns a :class:`Status`."""
        req = self.irecv(buffer, source, tag, datatype, count, offset_bytes)
        status = yield from req.wait()
        return status

    # -- probing --------------------------------------------------------------

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking check for a pending (unexpected) message; returns a
        :class:`Status` without consuming it, or None."""
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        probe_rrec = _RecvRecord(gsource, tag, self.ctx, None, None, False, self)
        for rec in self.cluster._unexpected[self.grank]:
            if not rec.is_obj and probe_rrec.matches(rec):
                return Status(self._to_local(rec.src), rec.tag, rec.nbytes)
        return None

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking probe: waits until a matching message is pending and
        returns its :class:`Status` (the message is NOT consumed)."""
        status = self.iprobe(source, tag)
        if status is not None:
            return status
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        probe_rrec = _RecvRecord(gsource, tag, self.ctx, None, None, False, self)
        fut = self.engine.future(f"probe@{self.grank}")
        waiters = getattr(self.cluster, "_probe_waiters", None)
        if waiters is None:
            waiters = self.cluster._probe_waiters = {}
        waiters.setdefault(self.grank, []).append((probe_rrec, fut))
        rec = yield fut
        return Status(self._to_local(rec.src), rec.tag, rec.nbytes)

    def sendrecv(
        self,
        sendbuffer: Any,
        dest: int,
        recvbuffer: Any,
        source: int,
        sendtag: int = 0,
        recvtag: Optional[int] = None,
    ) -> Generator:
        """Simultaneous send and receive (deadlock-free pairwise exchange)."""
        if recvtag is None:
            recvtag = sendtag
        rreq = self.irecv(recvbuffer, source, recvtag)
        sreq = yield from self.isend(sendbuffer, dest, sendtag)
        status = yield from rreq.wait()
        yield from sreq.wait()
        return status

    # -- control-plane (python object) messages ---------------------------------

    def isend_obj(self, value: Any, dest: int, tag: int, nbytes: int = 64) -> Request:
        """Send a small python object (control plane); ``nbytes`` is its
        nominal wire size for timing purposes."""
        if not 0 <= dest < self.size:
            raise MPIError(f"invalid destination rank {dest}")
        self._check_revoked()
        rec = _SendRecord(self.engine, self.grank, self._to_global(dest), tag,
                          self.ctx, value, nbytes, is_obj=True,
                          msg_id=self.cluster._new_msg_id())
        self.cluster._post_send(rec)
        self.engine.spawn(self._deliver(rec), f"deliver-obj {self.rank}->{dest}")
        if not rec.sent_fut.done:
            rec.sent_fut.set_result(None)
        # control-plane sends complete eagerly; dropping the request is fine,
        # so it is exempt from leak tracking (kind "send_obj")
        return Request(rec.sent_fut, "send_obj")

    def recv_obj(self, source: int, tag: int) -> Generator:
        """Receive a python object; returns the value."""
        self._check_revoked()
        fut = self.engine.future(f"recv-obj@{self.rank} tag={tag}")
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        rrec = _RecvRecord(gsource, tag, self.ctx, None, fut, is_obj=True, comm=self)
        self.cluster._post_recv(self.grank, rrec)
        value = yield fut
        return value

    # -- delivery ------------------------------------------------------------------

    def _deliver(self, rec: _SendRecord) -> Generator:
        """Background conduit process that moves one message to its receiver.

        Dispatches to the reliable transport when
        ``MPIConfig.reliable_transport`` is set; the default path is the
        historical best-effort delivery, bit-for-bit and
        schedule-identical to the pre-fault stack.  Fault-tolerance
        exceptions (peer crash, context revocation, retransmit
        exhaustion) terminate the conduit quietly -- the endpoints were
        already notified through their own futures by the sweep that
        raised them.
        """
        try:
            if self.config.reliable_transport:
                yield from self._deliver_reliable(rec)
            else:
                yield from self._deliver_basic(rec)
        except FaultToleranceError:
            pass

    def _deliver_basic(self, rec: _SendRecord) -> Generator:
        """Best-effort delivery (the historical, fault-free fast path)."""
        cost = self.cost
        prof = self.cluster.profiler
        rendezvous = rec.nbytes > self.config.eager_threshold
        if rendezvous:
            t_posted = self.engine.now
            yield rec.match_fut  # wire starts only once the receive is posted
            if prof.enabled:
                prof.observe("repro_rendezvous_stall_seconds",
                             self.engine.now - t_posted)

        # wire time: contiguous payloads go as one transfer; packed
        # noncontiguous payloads flow in pipeline chunks
        start = self.engine.now
        sig_meta = None if rec.sig is None else sig_crc(rec.sig)
        if rec.nbytes <= cost.pipeline_chunk or rec.is_obj:
            yield from self.net.transfer(rec.src, rec.dst, rec.nbytes,
                                         tag=rec.tag, sig=sig_meta,
                                         msg_id=rec.msg_id)
        else:
            pos = 0
            while pos < rec.nbytes:
                chunk = min(cost.pipeline_chunk, rec.nbytes - pos)
                yield from self.net.transfer(rec.src, rec.dst, chunk,
                                             tag=rec.tag, sig=sig_meta,
                                             msg_id=rec.msg_id)
                pos += chunk
        self.cluster.ledgers[rec.src].charge("comm", self.engine.now - start)
        rec.arrived = True
        if rendezvous and not rec.sent_fut.done:
            rec.sent_fut.set_result(None)

        yield from self._finish_delivery(rec)

    def _finish_delivery(self, rec: _SendRecord) -> Generator:
        """Receiver side of a delivery whose payload reached ``rec.dst``:
        wait for the match, charge the unpack, move the bytes, resolve the
        receive future.  Shared by the best-effort and reliable paths."""
        cost = self.cost
        prof = self.cluster.profiler
        if not rec.match_fut.done:
            yield rec.match_fut
        rrec = rec.recv_rec
        if rrec is None:
            # the match was poisoned (peer crash / revocation) after the
            # payload was already on the wire; retrieve the stored
            # exception, which terminates this conduit
            yield rec.match_fut
            raise MPIError("matched send record lost its receive")

        if rec.is_obj:
            if not rrec.future.done:
                rrec.future.set_result(rec.data)
            return

        # receiver-side unpack: charged on the receiver's CPU.  The span
        # lives on the receiver's "io" lane -- several deliveries may
        # overlap the receiver's own flow (and each other)
        tb = rrec.tb
        if rec.nbytes > 0 and not tb.is_contiguous():
            first, last = tb.blocks.blocks_in_range(0, rec.nbytes)
            seconds = unpack_stage_cost(rec.nbytes, last - first, cost, contiguous=False)
            scaled = self.net.cpu_seconds(rec.dst, seconds)
            self.cluster.ledgers[rec.dst].charge("pack", scaled)
            if prof.enabled:
                prof.count("repro_unpack_bytes_total", rec.nbytes)
            with prof.span("cpu", "unpack", rec.dst, lane="io",
                           src=rec.src, nbytes=rec.nbytes,
                           msg_id=rec.msg_id):
                yield Delay(scaled)

        # functional delivery
        if rec.nbytes == tb.nbytes:
            if prof.enabled:
                t0 = perf_counter()
                tb.unpack(rec.data)
                prof.observe("repro_datatype_pack_exec_seconds",
                             perf_counter() - t0)
            else:
                tb.unpack(rec.data)
        elif rec.nbytes > 0:
            if tb.is_contiguous():
                partial = TypedBuffer(tb.buffer, BYTE, count=rec.nbytes,
                                      offset_bytes=tb.offset_bytes)
                partial.unpack(rec.data)
            else:
                raise MPIError(
                    "partial delivery into a noncontiguous receive type is "
                    "not supported"
                )
        if not rrec.future.done:
            rrec.future.set_result(
                Status(rrec.comm._to_local(rec.src), rec.tag, rec.nbytes)
            )

    # -- reliable delivery (MPIConfig.reliable_transport) ---------------------

    def _deliver_reliable(self, rec: _SendRecord) -> Generator:
        """Go-back-N-style reliable delivery of one message.

        The payload carries a cluster-unique sequence number and a CRC32
        over its packed bytes.  Each wire attempt can be dropped,
        corrupted (receiver's checksum rejects it silently) or duplicated
        (receiver dedupes by sequence number) by the fault injector; the
        receiver acknowledges clean arrivals with a zero-byte control
        message that itself rides the faulty wire.  The sender retransmits
        on an :meth:`Engine.timeout` timer with capped exponential
        backoff, and surfaces :class:`TransportError` once
        ``MPIConfig.max_retransmits`` attempts failed to produce an
        acknowledged, checksum-clean delivery.
        """
        cluster = self.cluster
        cfg = self.config
        engine = self.engine
        prof = cluster.profiler
        cluster._msg_seq += 1
        rec.seq = cluster._msg_seq
        rec.crc = payload_crc(rec.data)
        sig_meta = None if rec.sig is None else sig_crc(rec.sig)
        rendezvous = rec.nbytes > cfg.eager_threshold

        if rendezvous:
            t_posted = engine.now
            yield from self._reliable_await_match(rec)
            if prof.enabled:
                prof.observe("repro_rendezvous_stall_seconds",
                             engine.now - t_posted)

        start = engine.now
        timeout = cfg.retransmit_timeout
        acked = False
        attempts = 0
        while attempts < cfg.max_retransmits:
            attempts += 1
            if attempts > 1 and prof.enabled:
                prof.count("repro_retransmits_total")
            if rec.dst in cluster.failed_ranks:
                self._fail_send(rec, RankFailedError(
                    rec.dst, "destination failed during delivery"))
                return
            outcome = yield from self._reliable_wire(rec, sig_meta)
            alive = (rec.dst not in cluster.failed_ranks
                     and rec.dst not in cluster.hung_ranks)
            if outcome.dropped or not alive:
                pass  # lost on the wire (or nobody home); await the timer
            elif outcome.corrupted:
                # the receiver's CRC check rejects the payload silently;
                # the sender only learns through the missing ack
                if prof.enabled:
                    prof.count("repro_checksum_failures_total")
            else:
                # clean arrival; receiver dedupes by sequence number (a
                # wire-duplicated packet, or a retransmission whose first
                # copy's ack was lost, is delivered exactly once)
                cluster._seen_seqs[rec.dst].add(rec.seq)
                ack = yield from self.net.transfer(rec.dst, rec.src, 0,
                                                   tag=rec.tag,
                                                   msg_id=rec.msg_id)
                if not (ack.dropped or ack.corrupted):
                    acked = True
                    break
            timer = engine.timeout(timeout)
            yield timer
            timeout = min(timeout * cfg.backoff_factor, cfg.backoff_cap)

        if not acked:
            self._fail_send(rec, TransportError(rec.src, rec.dst, rec.tag,
                                                attempts))
            return

        cluster.ledgers[rec.src].charge("comm", engine.now - start)
        rec.arrived = True
        if rendezvous and not rec.sent_fut.done:
            rec.sent_fut.set_result(None)
        yield from self._finish_delivery(rec)

    def _reliable_wire(self, rec: _SendRecord, sig_meta: Optional[int]) -> Generator:
        """One wire attempt (possibly chunked); returns the merged
        :class:`WireOutcome` -- any chunk lost/corrupted spoils the whole
        message, exactly like a partial frame failing its CRC."""
        cost = self.cost
        merged = WireOutcome()
        if rec.nbytes <= cost.pipeline_chunk or rec.is_obj:
            out = yield from self.net.transfer(rec.src, rec.dst, rec.nbytes,
                                               tag=rec.tag, sig=sig_meta,
                                               msg_id=rec.msg_id)
            merged.absorb(out)
        else:
            pos = 0
            while pos < rec.nbytes:
                chunk = min(cost.pipeline_chunk, rec.nbytes - pos)
                out = yield from self.net.transfer(rec.src, rec.dst, chunk,
                                                   tag=rec.tag, sig=sig_meta,
                                                   msg_id=rec.msg_id)
                merged.absorb(out)
                pos += chunk
        return merged

    def _reliable_await_match(self, rec: _SendRecord) -> Generator:
        """Rendezvous wait with a liveness poll: instead of blocking
        unconditionally on the match, re-check the peer every
        ``MPIConfig.rendezvous_poll`` seconds so a hung or crashed
        receiver turns into a bounded :class:`TransportError` /
        :class:`RankFailedError` rather than a deadlock."""
        cluster = self.cluster
        cfg = self.config
        engine = self.engine
        polls = 0
        while not rec.match_fut.done:
            if rec.dst in cluster.failed_ranks:
                exc = RankFailedError(rec.dst, "peer failed before matching")
                self._fail_send(rec, exc)
                raise exc
            if rec.dst in cluster.hung_ranks:
                polls += 1
                if polls > cfg.max_retransmits:
                    exc = TransportError(
                        rec.src, rec.dst, rec.tag, polls,
                        reason="peer unresponsive during rendezvous",
                    )
                    self._fail_send(rec, exc)
                    raise exc
            timer = engine.timeout(cfg.rendezvous_poll)
            yield from _first_of(engine, rec.match_fut, timer)
            timer.cancel()  # harmless if it already fired
        # retrieve a poisoned match (e.g. the context was revoked while
        # we waited); a clean match resumes with the receive record
        yield rec.match_fut

    def _fail_send(self, rec: _SendRecord, exc: BaseException) -> None:
        """Terminal transport failure for ``rec``: notify the sender, the
        matched receiver if any, and poison late-binding receives."""
        rec.transport_exc = exc
        if not rec.sent_fut.done:
            rec.sent_fut.set_exception(exc)
        rrec = rec.recv_rec
        if rrec is not None and not rrec.future.done:
            rrec.future.set_exception(exc)

    # -- collectives (implemented in repro.mpi.collectives) -------------------------
    #
    # Every collective dispatches through _fail_fast, which gives ALL
    # registered algorithms uniform ULFM failure semantics without each
    # implementation knowing about faults.

    def _fail_fast(self, body: Generator) -> Generator:
        """Run one collective with fail-fast failure semantics.

        The first rank to observe a peer failure inside the collective
        revokes the communicator context, which releases every other rank
        blocked in the same collective (their pending operations complete
        with :class:`CommRevokedError`).  The revocation cause is then
        normalised, so *every* surviving rank of the communicator raises
        the same exception -- a :class:`RankFailedError` naming the same
        failed rank (or the same :class:`TransportError`) -- rather than
        some ranks deadlocking or seeing a different error.  On the
        fault-free path this adds no events and no yields.
        """
        try:
            result = yield from body
        except RankFailedError as exc:
            self.revoke(exc)
            raise RankFailedError(exc.rank, exc.reason) from None
        except TransportError as exc:
            self.revoke(exc)
            raise
        except CommRevokedError as exc:
            cause = exc.cause
            if isinstance(cause, RankFailedError):
                raise RankFailedError(cause.rank, cause.reason) from None
            if isinstance(cause, TransportError):
                raise TransportError(cause.src, cause.dst, cause.tag,
                                     cause.attempts, cause.reason) from None
            raise
        return result

    def barrier(self) -> Generator:
        from repro.mpi.collectives.basic import barrier
        yield from self._fail_fast(barrier(self))

    def bcast(self, value: Any, root: int = 0) -> Generator:
        from repro.mpi.collectives.basic import bcast
        result = yield from self._fail_fast(bcast(self, value, root))
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Generator:
        from repro.mpi.collectives.basic import allreduce
        result = yield from self._fail_fast(allreduce(self, value, op))
        return result

    def gather_obj(self, value: Any, root: int = 0) -> Generator:
        from repro.mpi.collectives.basic import gather_obj
        result = yield from self._fail_fast(gather_obj(self, value, root))
        return result

    def allgatherv(
        self,
        sendbuffer: Any,
        recvbuffer: np.ndarray,
        counts: Sequence[int],
        displs: Optional[Sequence[int]] = None,
        datatype: Optional[Datatype] = None,
        algorithm: Optional[str] = None,
    ) -> Generator:
        from repro.mpi.collectives.allgatherv import allgatherv
        yield from self._fail_fast(
            allgatherv(self, sendbuffer, recvbuffer, counts, displs,
                       datatype, algorithm=algorithm)
        )

    def alltoallw(
        self,
        sendspecs: Sequence[Optional[TypedBuffer]],
        recvspecs: Sequence[Optional[TypedBuffer]],
        algorithm: Optional[str] = None,
    ) -> Generator:
        from repro.mpi.collectives.alltoallw import alltoallw
        yield from self._fail_fast(
            alltoallw(self, sendspecs, recvspecs, algorithm=algorithm)
        )

    def reduce(self, sendbuf, recvbuf=None, op=None, root: int = 0) -> Generator:
        from repro.mpi.collectives.reduce import reduce as _reduce
        result = yield from self._fail_fast(_reduce(
            self, sendbuf, recvbuf, op if op is not None else np.add, root
        ))
        return result

    def allreduce_array(self, sendbuf, recvbuf=None, op=None) -> Generator:
        from repro.mpi.collectives.reduce import allreduce_array
        result = yield from self._fail_fast(allreduce_array(
            self, sendbuf, recvbuf, op if op is not None else np.add
        ))
        return result

    def scan(self, sendbuf, recvbuf=None, op=None) -> Generator:
        from repro.mpi.collectives.reduce import scan as _scan
        result = yield from self._fail_fast(_scan(
            self, sendbuf, recvbuf, op if op is not None else np.add
        ))
        return result

    def gatherv(self, sendbuf, recvbuf=None, counts=None, displs=None,
                root: int = 0, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import gatherv
        result = yield from self._fail_fast(gatherv(
            self, sendbuf, recvbuf, counts, displs, root, datatype
        ))
        return result

    def scatterv(self, sendbuf=None, counts=None, displs=None, recvbuf=None,
                 root: int = 0, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import scatterv
        result = yield from self._fail_fast(scatterv(
            self, sendbuf, counts, displs, recvbuf, root, datatype
        ))
        return result

    def allgather(self, sendbuf, recvbuf, count=None, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import allgather
        yield from self._fail_fast(allgather(self, sendbuf, recvbuf, count, datatype))

    def alltoall(self, sendbuf, recvbuf, count: int, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import alltoall
        result = yield from self._fail_fast(
            alltoall(self, sendbuf, recvbuf, count, datatype)
        )
        return result

    def sparse_alltoall(self, payloads, algorithm: Optional[str] = None) -> Generator:
        """Sparse dynamic exchange: send ``{dest rank: payload}``; which
        ranks send to *me* is discovered by the algorithm (NBX consensus
        or the dense counts exchange).  Returns ``{source rank: float64
        array}`` of the received payloads."""
        from repro.mpi.collectives.sparse import sparse_alltoall
        result = yield from self._fail_fast(
            sparse_alltoall(self, payloads, algorithm=algorithm)
        )
        return result
