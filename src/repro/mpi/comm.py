"""Cluster, communicator and point-to-point messaging.

Timing protocol (see DESIGN.md):

- **Datatype processing happens at send-call time on the sender's CPU**, as
  in MPICH2: ``send``/``isend`` charge the engine-planned look-ahead, search
  and pack costs before anything reaches the wire.  This is exactly why the
  baseline ``Alltoallw`` delays small-message peers behind large
  noncontiguous ones (paper section 3.2) -- the processing is serialised by
  the host processor.
- **Eager protocol** (payload <= ``eager_threshold``): the send completes as
  soon as the payload is packed; delivery proceeds in the background and
  does not require the receive to be posted first.
- **Rendezvous protocol** (larger payloads): the wire transfer starts only
  once the matching receive is posted, and the send completes when the last
  chunk has left the sender.
- **The wire** is the :class:`repro.simtime.network.NetworkModel`: every
  message (even zero-byte) pays ``alpha``; nodes have one send and one
  receive port, so concurrent messages through a node serialise.
- **Receiver-side unpack** is charged to the receiver after arrival; the
  receive completes after it.

Payload bytes genuinely move: the packed numpy bytes of the send buffer are
unpacked into the receive buffer's typed layout on delivery.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

import numpy as np

from repro.datatypes.engine import make_engine, unpack_stage_cost
from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import BYTE, Datatype, primitive_for, sig_crc
from repro.mpi.config import MPIConfig
from repro.mpi.request import Request, Status
from repro.prof import NULL_PROFILER
from repro.prof.session import attach_if_enabled
from repro.simtime.engine import Delay, Engine, SimFuture
from repro.simtime.network import NetworkModel
from repro.util.costmodel import CostLedger, CostModel

ANY_SOURCE = -1
ANY_TAG = -1

#: tags at or above this value are reserved for collective operations
_COLLECTIVE_TAG_BASE = 1_000_000


class MPIError(RuntimeError):
    """Erroneous use of the message-passing API."""


class TruncationError(MPIError):
    """A message arrived that is larger than the posted receive buffer."""


def as_typed(
    buffer: Any,
    datatype: Optional[Datatype] = None,
    count: Optional[int] = None,
    offset_bytes: int = 0,
) -> TypedBuffer:
    """Normalise user buffer arguments into a :class:`TypedBuffer`.

    Accepts a ready-made ``TypedBuffer`` or a numpy array (datatype inferred
    from the array's dtype when not given; count defaults to the whole
    array).
    """
    if isinstance(buffer, TypedBuffer):
        return buffer
    arr = np.asarray(buffer)
    if datatype is None:
        datatype = primitive_for(arr.dtype)
    if count is None:
        if arr.size * arr.itemsize % datatype.extent:
            raise MPIError(
                f"buffer of {arr.size * arr.itemsize} bytes does not hold a "
                f"whole number of {datatype!r} (extent {datatype.extent})"
            )
        count = (arr.size * arr.itemsize - offset_bytes) // datatype.extent
    return TypedBuffer(arr, datatype, count=count, offset_bytes=offset_bytes)


class _SendRecord:
    """Bookkeeping for one in-flight message (ranks are cluster-global)."""

    __slots__ = (
        "src", "dst", "tag", "ctx", "data", "nbytes", "is_obj",
        "match_fut", "recv_rec", "sent_fut", "recv_fut", "arrived", "sig",
    )

    def __init__(self, engine: Engine, src: int, dst: int, tag: int,
                 ctx: Any, data: Any, nbytes: int, is_obj: bool,
                 sig: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.ctx = ctx
        self.data = data
        self.nbytes = nbytes
        self.is_obj = is_obj
        self.sig = sig  # flattened typemap signature tuple (None for obj sends)
        self.match_fut = engine.future(f"match {src}->{dst} tag={tag}")
        self.recv_rec: Optional[_RecvRecord] = None
        self.sent_fut = engine.future(f"sent {src}->{dst} tag={tag}")
        self.recv_fut: Optional[SimFuture] = None
        self.arrived = False


class _RecvRecord:
    """A posted receive (``source`` is cluster-global or ANY_SOURCE)."""

    __slots__ = ("source", "tag", "ctx", "tb", "future", "is_obj", "comm", "sig")

    def __init__(self, source: int, tag: int, ctx: Any,
                 tb: Optional[TypedBuffer], future: SimFuture, is_obj: bool,
                 comm: "Comm", sig: Optional[int] = None):
        self.source = source
        self.tag = tag
        self.ctx = ctx
        self.tb = tb
        self.future = future
        self.is_obj = is_obj
        self.comm = comm
        self.sig = sig  # expected signature tuple (None for obj receives)

    def matches(self, rec: _SendRecord) -> bool:
        return (
            self.ctx == rec.ctx
            and (self.source == ANY_SOURCE or self.source == rec.src)
            and (self.tag == ANY_TAG or self.tag == rec.tag)
            and self.is_obj == rec.is_obj
        )


class Cluster:
    """A simulated cluster running one MPI job.

    >>> cluster = Cluster(4, config=MPIConfig.optimized())
    >>> def main(comm):
    ...     yield from comm.barrier()
    ...     return comm.rank
    >>> cluster.run(main)
    [0, 1, 2, 3]
    """

    def __init__(
        self,
        nranks: int,
        config: Optional[MPIConfig] = None,
        cost: Optional[CostModel] = None,
        seed: int = 0,
        heterogeneous: Optional[bool] = None,
    ):
        self.nranks = nranks
        self.config = config or MPIConfig.optimized()
        self.cost = cost or CostModel()
        self.engine = Engine()
        self.net = NetworkModel(
            self.engine, nranks, cost=self.cost, seed=seed,
            heterogeneous=heterogeneous,
        )
        self.ledgers = [CostLedger() for _ in range(nranks)]
        self._posted: List[List[_RecvRecord]] = [[] for _ in range(nranks)]
        self._unexpected: List[List[_SendRecord]] = [[] for _ in range(nranks)]
        self._observers: List[Any] = []
        #: the instrumentation sink; NULL_PROFILER until a
        #: :class:`repro.prof.Profiler` is attached (no-op, near-zero cost)
        self.profiler = NULL_PROFILER
        # wire transfers fan out through the observer machinery ("transfer")
        self.net.add_transfer_listener(self._on_transfer)
        self._comms = [Comm(self, r) for r in range(nranks)]
        # a process-wide profiling session (repro.prof.session) auto-attaches
        attach_if_enabled(self)

    def _on_transfer(self, event: Any) -> None:
        self._notify("transfer", event)

    # -- instrumentation -----------------------------------------------------

    def add_observer(self, observer: Any) -> None:
        """Register an instrumentation observer.

        An observer is any object; for every event ``evt`` the cluster looks
        up an ``on_<evt>`` method and, when present, calls it.  Events:

        ==================  =====================================================
        ``send_posted``     ``(rec)`` -- a message entered the matching machinery
        ``recv_posted``     ``(grank, rrec)`` -- a receive was posted
        ``match``           ``(rec, rrec)`` -- a send/receive pair bound
        ``truncation``      ``(rec, rrec)`` -- a bind failed: message too large
        ``request``         ``(grank, req)`` -- a :class:`Request` was handed out
        ``collective``      ``(grank, ctx, seq, op, detail)`` -- collective entry
        ``transfer``        ``(event)`` -- a wire transfer completed
                            (:class:`repro.simtime.network.TransferEvent`)
        ==================  =====================================================

        Used by :class:`repro.analyze.runtime.RuntimeVerifier`,
        :class:`repro.mpi.trace.MessageTrace` and
        :class:`repro.prof.Profiler` -- all ordinary subscribers; nothing
        monkey-patches ``net.transfer`` anymore.
        """
        self._observers.append(observer)

    def _notify(self, event: str, *args: Any) -> None:
        for obs in self._observers:
            fn = getattr(obs, "on_" + event, None)
            if fn is not None:
                fn(*args)

    def comm(self, rank: int) -> "Comm":
        return self._comms[rank]

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the job started."""
        return self.engine.now

    def run(self, fn: Callable[..., Generator], *args: Any) -> List[Any]:
        """Spawn ``fn(comm, *args)`` on every rank; run; return rank results."""
        return self.engine.run_all(
            [fn(self._comms[r], *args) for r in range(self.nranks)],
            names=[f"rank{r}" for r in range(self.nranks)],
        )

    def ledger_total(self, category: str) -> float:
        return sum(ledger.get(category) for ledger in self.ledgers)

    def utilization_report(self) -> dict:
        """Post-run statistics: wall (simulated) time, wire traffic, link
        occupancy and per-category CPU shares -- the numbers an MPI
        profiler would summarise."""
        elapsed = self.elapsed or 1.0
        send_busy = [p.busy_time for p in self.net.send_ports]
        recv_busy = [p.busy_time for p in self.net.recv_ports]
        categories = sorted({k for led in self.ledgers for k in led.totals})
        return {
            "elapsed": self.elapsed,
            "messages": self.net.messages_on_wire,
            "bytes": self.net.bytes_on_wire,
            "max_send_link_utilization": max(send_busy) / elapsed if send_busy else 0.0,
            "max_recv_link_utilization": max(recv_busy) / elapsed if recv_busy else 0.0,
            "cpu_seconds_by_category": {
                c: self.ledger_total(c) for c in categories
            },
        }

    # -- matching ------------------------------------------------------------

    def _post_send(self, rec: _SendRecord) -> None:
        self._notify("send_posted", rec)
        posted = self._posted[rec.dst]
        for i, rrec in enumerate(posted):
            if rrec.matches(rec):
                del posted[i]
                self._bind(rec, rrec)
                return
        self._unexpected[rec.dst].append(rec)
        waiters = getattr(self, "_probe_waiters", None)
        if waiters:
            for i, (probe_rrec, fut) in enumerate(waiters.get(rec.dst, [])):
                if probe_rrec.matches(rec):
                    del waiters[rec.dst][i]
                    fut.set_result(rec)
                    break

    def _post_recv(self, dst: int, rrec: _RecvRecord) -> None:
        self._notify("recv_posted", dst, rrec)
        unexpected = self._unexpected[dst]
        for i, rec in enumerate(unexpected):
            if rrec.matches(rec):
                del unexpected[i]
                self._bind(rec, rrec)
                return
        self._posted[dst].append(rrec)

    def _bind(self, rec: _SendRecord, rrec: _RecvRecord) -> None:
        if not rec.is_obj:
            capacity = rrec.tb.nbytes if rrec.tb is not None else 0
            if rec.nbytes > capacity:
                self._notify("truncation", rec, rrec)
                exc = TruncationError(
                    f"message {rec.src}->{rec.dst} tag={rec.tag} is "
                    f"{rec.nbytes} bytes but the receive holds {capacity}"
                )
                rrec.future.set_exception(exc)
                rec.match_fut.set_exception(exc)
                return
        self._notify("match", rec, rrec)
        rec.recv_rec = rrec
        rec.recv_fut = rrec.future
        rec.match_fut.set_result(rrec)


class Comm:
    """A rank-bound communicator handle (what user generators receive).

    A communicator is a *group* of cluster-global ranks plus a matching
    context: messages only match within the same context, so subgroup
    communicators (from :meth:`dup`/:meth:`split`) never cross-talk with
    their parent.  ``rank``/``size`` are communicator-local; the global
    identity is :attr:`grank`.
    """

    def __init__(self, cluster: Cluster, rank: int,
                 group: Optional[Sequence[int]] = None, ctx: Any = 0):
        self.cluster = cluster
        self.group = list(group) if group is not None else list(range(cluster.nranks))
        self.ctx = ctx
        self.rank = rank                      # communicator-local
        self.grank = self.group[rank]         # cluster-global
        self.size = len(self.group)
        self.config = cluster.config
        self.cost = cluster.cost
        self.net = cluster.net
        self.engine = cluster.engine
        self.ledger = cluster.ledgers[self.grank]
        self._ctx_seq = 0

    def _to_global(self, rank: int) -> int:
        return self.group[rank]

    def _to_local(self, grank: int) -> int:
        return self.group.index(grank)

    # -- derived communicators ----------------------------------------------------

    def _next_ctx(self) -> Any:
        """A fresh context id, deterministic per parent communicator (all
        group members derive the same id by calling in the same order, the
        usual MPI collective-ordering requirement)."""
        self._ctx_seq += 1
        return (self.ctx, self._ctx_seq)

    def dup(self) -> "Comm":
        """A communicator with the same group but an isolated context
        (``MPI_Comm_dup``).  Collective over the group."""
        return Comm(self.cluster, self.rank, self.group, self._next_ctx())

    def split(self, color: Optional[int], key: Optional[int] = None) -> Generator:
        """Partition the group by ``color`` (``MPI_Comm_split``).

        Ranks passing the same color form a new communicator, ordered by
        ``(key, old rank)``; ``color=None`` (MPI_UNDEFINED) returns None.
        Collective over the group -- the color/key exchange costs a real
        gather + broadcast round.
        """
        ctx = self._next_ctx()
        mine = (color, key if key is not None else self.rank, self.rank)
        entries = yield from self.gather_obj(mine, root=0)
        entries = yield from self.bcast(entries, root=0)
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in entries if c == color
        )
        group = [self._to_global(r) for _k, r in members]
        new_rank = [r for _k, r in members].index(self.rank)
        return Comm(self.cluster, new_rank, group, (ctx, color))

    # -- CPU accounting --------------------------------------------------------

    def cpu(self, seconds: float, category: str = "compute") -> Generator:
        """Charge ``seconds`` of nominal CPU work on this rank."""
        scaled = self.net.cpu_seconds(self.grank, seconds)
        self.ledger.charge(category, scaled)
        with self.cluster.profiler.span("cpu", category, self.grank):
            yield Delay(scaled)

    def compute(self, seconds: float) -> Generator:
        yield from self.cpu(seconds, "compute")

    # -- point-to-point --------------------------------------------------------

    def isend(
        self,
        buffer: Any,
        dest: int,
        tag: int = 0,
        datatype: Optional[Datatype] = None,
        count: Optional[int] = None,
        offset_bytes: int = 0,
    ) -> Generator:
        """Nonblocking typed send; returns a :class:`Request`.

        Datatype processing (look-ahead / search / pack) is charged inline,
        on this rank, before the call returns -- see the module docstring.
        """
        if not 0 <= dest < self.size:
            raise MPIError(f"invalid destination rank {dest}")
        tb = as_typed(buffer, datatype, count, offset_bytes)
        nbytes = tb.nbytes
        prof = self.cluster.profiler

        with prof.span("p2p", "isend", self.grank,
                       dest=self._to_global(dest), tag=tag, nbytes=nbytes):
            if prof.enabled:
                prof.count("repro_send_messages_total")
                prof.count("repro_send_bytes_total", nbytes)
                if nbytes == 0:
                    prof.count("repro_zero_byte_sends_total")
            # charge datatype processing
            if nbytes > 0 and not tb.is_contiguous():
                engine = make_engine(tb.blocks, self.cost,
                                     self.config.dual_context_engine)
                stages = engine.plan()
                look = search = pack = 0.0
                for stage in stages:
                    look += stage.lookahead_s
                    search += stage.search_s
                    pack += stage.pack_s
                if prof.enabled:
                    self._count_pack_stages(prof, stages, nbytes)
                for category, seconds in (("lookahead", look),
                                          ("search", search), ("pack", pack)):
                    if seconds:
                        yield from self.cpu(seconds, category)

            data = tb.pack()
            rec = _SendRecord(self.engine, self.grank, self._to_global(dest),
                              tag, self.ctx, data, nbytes, is_obj=False,
                              sig=tb.signature())
            self.cluster._post_send(rec)
            self.engine.spawn(self._deliver(rec), f"deliver {self.rank}->{dest}")
            if nbytes <= self.config.eager_threshold:
                # eager: the payload is buffered; the send is already complete
                rec.sent_fut.set_result(None)
            req = Request(rec.sent_fut, "send", profiler=prof, rank=self.grank)
            self.cluster._notify("request", self.grank, req)
            return req

    def _count_pack_stages(self, prof, stages, nbytes: int) -> None:
        """Pack-engine metrics for one noncontiguous send plan."""
        dense = sum(1 for s in stages if s.dense)
        prof.count("repro_pack_stages_total", len(stages))
        prof.count("repro_lookahead_dense_total", dense)
        prof.count("repro_lookahead_sparse_total", len(stages) - dense)
        prof.count("repro_pack_bytes_total", nbytes)
        researches = [s for s in stages if s.search_s > 0]
        if researches:
            prof.count("repro_research_total", len(researches))
            for s in researches:
                prof.observe("repro_research_depth_blocks", s.search_blocks)

    def send(self, buffer: Any, dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             offset_bytes: int = 0) -> Generator:
        """Blocking typed send."""
        req = yield from self.isend(buffer, dest, tag, datatype, count, offset_bytes)
        yield from req.wait()

    def irecv(
        self,
        buffer: Any,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        datatype: Optional[Datatype] = None,
        count: Optional[int] = None,
        offset_bytes: int = 0,
    ) -> Request:
        """Nonblocking typed receive; returns a :class:`Request` whose
        ``wait()`` yields a :class:`Status`."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise MPIError(f"invalid source rank {source}")
        tb = as_typed(buffer, datatype, count, offset_bytes)
        fut = self.engine.future(f"recv@{self.rank} tag={tag}")
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        rrec = _RecvRecord(gsource, tag, self.ctx, tb, fut, is_obj=False,
                           comm=self, sig=tb.signature())
        self.cluster._post_recv(self.grank, rrec)
        req = Request(fut, "recv", profiler=self.cluster.profiler,
                      rank=self.grank)
        self.cluster._notify("request", self.grank, req)
        return req

    def recv(self, buffer: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             offset_bytes: int = 0) -> Generator:
        """Blocking typed receive; returns a :class:`Status`."""
        req = self.irecv(buffer, source, tag, datatype, count, offset_bytes)
        status = yield from req.wait()
        return status

    # -- probing --------------------------------------------------------------

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking check for a pending (unexpected) message; returns a
        :class:`Status` without consuming it, or None."""
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        probe_rrec = _RecvRecord(gsource, tag, self.ctx, None, None, False, self)
        for rec in self.cluster._unexpected[self.grank]:
            if not rec.is_obj and probe_rrec.matches(rec):
                return Status(self._to_local(rec.src), rec.tag, rec.nbytes)
        return None

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking probe: waits until a matching message is pending and
        returns its :class:`Status` (the message is NOT consumed)."""
        status = self.iprobe(source, tag)
        if status is not None:
            return status
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        probe_rrec = _RecvRecord(gsource, tag, self.ctx, None, None, False, self)
        fut = self.engine.future(f"probe@{self.grank}")
        waiters = getattr(self.cluster, "_probe_waiters", None)
        if waiters is None:
            waiters = self.cluster._probe_waiters = {}
        waiters.setdefault(self.grank, []).append((probe_rrec, fut))
        rec = yield fut
        return Status(self._to_local(rec.src), rec.tag, rec.nbytes)

    def sendrecv(
        self,
        sendbuffer: Any,
        dest: int,
        recvbuffer: Any,
        source: int,
        sendtag: int = 0,
        recvtag: Optional[int] = None,
    ) -> Generator:
        """Simultaneous send and receive (deadlock-free pairwise exchange)."""
        if recvtag is None:
            recvtag = sendtag
        rreq = self.irecv(recvbuffer, source, recvtag)
        sreq = yield from self.isend(sendbuffer, dest, sendtag)
        status = yield from rreq.wait()
        yield from sreq.wait()
        return status

    # -- control-plane (python object) messages ---------------------------------

    def isend_obj(self, value: Any, dest: int, tag: int, nbytes: int = 64) -> Request:
        """Send a small python object (control plane); ``nbytes`` is its
        nominal wire size for timing purposes."""
        if not 0 <= dest < self.size:
            raise MPIError(f"invalid destination rank {dest}")
        rec = _SendRecord(self.engine, self.grank, self._to_global(dest), tag,
                          self.ctx, value, nbytes, is_obj=True)
        self.cluster._post_send(rec)
        self.engine.spawn(self._deliver(rec), f"deliver-obj {self.rank}->{dest}")
        rec.sent_fut.set_result(None)
        # control-plane sends complete eagerly; dropping the request is fine,
        # so it is exempt from leak tracking (kind "send_obj")
        return Request(rec.sent_fut, "send_obj")

    def recv_obj(self, source: int, tag: int) -> Generator:
        """Receive a python object; returns the value."""
        fut = self.engine.future(f"recv-obj@{self.rank} tag={tag}")
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        rrec = _RecvRecord(gsource, tag, self.ctx, None, fut, is_obj=True, comm=self)
        self.cluster._post_recv(self.grank, rrec)
        value = yield fut
        return value

    # -- delivery ------------------------------------------------------------------

    def _deliver(self, rec: _SendRecord) -> Generator:
        """Background process that moves one message across the wire."""
        cost = self.cost
        prof = self.cluster.profiler
        rendezvous = rec.nbytes > self.config.eager_threshold
        if rendezvous:
            t_posted = self.engine.now
            yield rec.match_fut  # wire starts only once the receive is posted
            if prof.enabled:
                prof.observe("repro_rendezvous_stall_seconds",
                             self.engine.now - t_posted)

        # wire time: contiguous payloads go as one transfer; packed
        # noncontiguous payloads flow in pipeline chunks
        start = self.engine.now
        sig_meta = None if rec.sig is None else sig_crc(rec.sig)
        if rec.nbytes <= cost.pipeline_chunk or rec.is_obj:
            yield from self.net.transfer(rec.src, rec.dst, rec.nbytes,
                                         tag=rec.tag, sig=sig_meta)
        else:
            pos = 0
            while pos < rec.nbytes:
                chunk = min(cost.pipeline_chunk, rec.nbytes - pos)
                yield from self.net.transfer(rec.src, rec.dst, chunk,
                                             tag=rec.tag, sig=sig_meta)
                pos += chunk
        self.cluster.ledgers[rec.src].charge("comm", self.engine.now - start)
        rec.arrived = True
        if rendezvous:
            rec.sent_fut.set_result(None)

        if not rec.match_fut.done:
            yield rec.match_fut
        rrec = rec.recv_rec
        assert rrec is not None

        if rec.is_obj:
            rrec.future.set_result(rec.data)
            return

        # receiver-side unpack: charged on the receiver's CPU.  The span
        # lives on the receiver's "io" lane -- several deliveries may
        # overlap the receiver's own flow (and each other)
        tb = rrec.tb
        if rec.nbytes > 0 and not tb.is_contiguous():
            first, last = tb.blocks.blocks_in_range(0, rec.nbytes)
            seconds = unpack_stage_cost(rec.nbytes, last - first, cost, contiguous=False)
            scaled = self.net.cpu_seconds(rec.dst, seconds)
            self.cluster.ledgers[rec.dst].charge("pack", scaled)
            if prof.enabled:
                prof.count("repro_unpack_bytes_total", rec.nbytes)
            with prof.span("cpu", "unpack", rec.dst, lane="io",
                           src=rec.src, nbytes=rec.nbytes):
                yield Delay(scaled)

        # functional delivery
        if rec.nbytes == tb.nbytes:
            tb.unpack(rec.data)
        elif rec.nbytes > 0:
            if tb.is_contiguous():
                partial = TypedBuffer(tb.buffer, BYTE, count=rec.nbytes,
                                      offset_bytes=tb.offset_bytes)
                partial.unpack(rec.data)
            else:
                raise MPIError(
                    "partial delivery into a noncontiguous receive type is "
                    "not supported"
                )
        rrec.future.set_result(
            Status(rrec.comm._to_local(rec.src), rec.tag, rec.nbytes)
        )

    # -- collectives (implemented in repro.mpi.collectives) -------------------------

    def barrier(self) -> Generator:
        from repro.mpi.collectives.basic import barrier
        yield from barrier(self)

    def bcast(self, value: Any, root: int = 0) -> Generator:
        from repro.mpi.collectives.basic import bcast
        result = yield from bcast(self, value, root)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Generator:
        from repro.mpi.collectives.basic import allreduce
        result = yield from allreduce(self, value, op)
        return result

    def gather_obj(self, value: Any, root: int = 0) -> Generator:
        from repro.mpi.collectives.basic import gather_obj
        result = yield from gather_obj(self, value, root)
        return result

    def allgatherv(
        self,
        sendbuffer: Any,
        recvbuffer: np.ndarray,
        counts: Sequence[int],
        displs: Optional[Sequence[int]] = None,
        datatype: Optional[Datatype] = None,
        algorithm: Optional[str] = None,
    ) -> Generator:
        from repro.mpi.collectives.allgatherv import allgatherv
        yield from allgatherv(self, sendbuffer, recvbuffer, counts, displs,
                              datatype, algorithm=algorithm)

    def alltoallw(
        self,
        sendspecs: Sequence[Optional[TypedBuffer]],
        recvspecs: Sequence[Optional[TypedBuffer]],
        algorithm: Optional[str] = None,
    ) -> Generator:
        from repro.mpi.collectives.alltoallw import alltoallw
        yield from alltoallw(self, sendspecs, recvspecs, algorithm=algorithm)

    def reduce(self, sendbuf, recvbuf=None, op=None, root: int = 0) -> Generator:
        from repro.mpi.collectives.reduce import reduce as _reduce
        result = yield from _reduce(
            self, sendbuf, recvbuf, op if op is not None else np.add, root
        )
        return result

    def allreduce_array(self, sendbuf, recvbuf=None, op=None) -> Generator:
        from repro.mpi.collectives.reduce import allreduce_array
        result = yield from allreduce_array(
            self, sendbuf, recvbuf, op if op is not None else np.add
        )
        return result

    def scan(self, sendbuf, recvbuf=None, op=None) -> Generator:
        from repro.mpi.collectives.reduce import scan as _scan
        result = yield from _scan(
            self, sendbuf, recvbuf, op if op is not None else np.add
        )
        return result

    def gatherv(self, sendbuf, recvbuf=None, counts=None, displs=None,
                root: int = 0, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import gatherv
        result = yield from gatherv(
            self, sendbuf, recvbuf, counts, displs, root, datatype
        )
        return result

    def scatterv(self, sendbuf=None, counts=None, displs=None, recvbuf=None,
                 root: int = 0, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import scatterv
        result = yield from scatterv(
            self, sendbuf, counts, displs, recvbuf, root, datatype
        )
        return result

    def allgather(self, sendbuf, recvbuf, count=None, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import allgather
        yield from allgather(self, sendbuf, recvbuf, count, datatype)

    def alltoall(self, sendbuf, recvbuf, count: int, datatype=None) -> Generator:
        from repro.mpi.collectives.gather import alltoall
        result = yield from alltoall(self, sendbuf, recvbuf, count, datatype)
        return result
