"""The simulated MPI library.

Two configurations of the same library reproduce the paper's comparison:

- ``MPIConfig.baseline()`` models MVAPICH2-0.9.5 / stock MPICH2: a
  single-context datatype engine (section 3.1), the ring algorithm for
  large-total ``Allgatherv`` (section 3.2), and round-robin ``Alltoallw``
  that sends zero-byte messages and processes peers in rank order,
- ``MPIConfig.optimized()`` models the paper's modified stack
  ("MVAPICH2-New"): the dual-context look-ahead engine (section 4.1),
  outlier-detecting adaptive ``Allgatherv`` (section 4.2.1) and binned
  ``Alltoallw`` (section 4.2.2).

User code is a per-rank generator that receives a rank-bound :class:`Comm`;
see :class:`repro.mpi.comm.Cluster`.
"""

from repro.mpi.config import MPIConfig
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Cluster, Comm, MPIError, TruncationError
from repro.mpi.errors import (
    CommRevokedError,
    FaultToleranceError,
    RankFailedError,
    TransportError,
)
from repro.mpi.request import Request, Status
from repro.mpi.io import File
from repro.mpi.rma import Win
from repro.mpi.trace import MessageTrace
from repro.mpi.pack import mpi_pack, mpi_unpack, pack_size, payload_crc

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Cluster",
    "Comm",
    "CommRevokedError",
    "FaultToleranceError",
    "File",
    "RankFailedError",
    "TransportError",
    "MessageTrace",
    "MPIConfig",
    "MPIError",
    "Request",
    "Status",
    "TruncationError",
    "Win",
    "mpi_pack",
    "mpi_unpack",
    "pack_size",
    "payload_crc",
]
