"""One-sided communication (MPI-2 RMA): windows, put/get/accumulate.

The paper's related-work section cites several InfiniBand RDMA designs for
MPI datatype communication (Wu et al. [24], Santhanaraman et al. [19],
Tipparaju et al. [23]); this module models the design space they explore
for a noncontiguous **put**:

- ``method="pack"`` (host-assisted): the origin packs into a contiguous
  buffer, ships ONE message, and the *target host CPU* scatters it into
  place -- cheap on the wire, but not zero-copy and it burns target cycles,
- ``method="multi_rdma"`` (zero-copy): one RDMA operation per contiguous
  block of the target layout -- no target CPU at all, but each block pays
  the RDMA initiation cost, so sparse layouts flood the NIC with tiny ops.

``benchmarks/test_rma_datatype.py`` sweeps block size to reproduce the
crossover between the two, the central trade-off of that literature.

Synchronisation follows MPI: **fence** epochs (collective; all outstanding
operations complete at the fence) and passive-target **lock/unlock**
(exclusive per target, FIFO).  Functional semantics: the bytes land in the
target's exposed numpy array when the operation completes.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.datatypes.engine import make_engine, unpack_stage_cost
from repro.datatypes.packing import TypedBuffer
from repro.mpi.comm import Comm, MPIError, as_typed
from repro.simtime.engine import Delay, SimProcess
from repro.simtime.resources import Resource


class Win:
    """An RMA window: one exposed array per rank of the communicator.

    Create collectively with :meth:`create`; all ranks share the returned
    handle semantics but each holds its own instance.
    """

    _registry_key = "_rma_windows"

    def __init__(self, comm: Comm, win_id: int, exposed: List[np.ndarray],
                 locks: List[Resource]):
        self.comm = comm
        self.win_id = win_id
        self._exposed = exposed
        self._locks = locks
        self._pending: List[SimProcess] = []

    # -- creation -------------------------------------------------------------

    @classmethod
    def create(cls, comm: Comm, local_array: np.ndarray) -> Generator:
        """Collective window creation: every rank exposes ``local_array``."""
        arr = np.asarray(local_array)
        if not arr.flags.c_contiguous:
            raise MPIError("exposed array must be C-contiguous")
        registry = getattr(comm.cluster, cls._registry_key, None)
        if registry is None:
            registry = {}
            setattr(comm.cluster, cls._registry_key, registry)
        seq = getattr(comm, "_win_seq", 0)
        comm._win_seq = seq + 1
        key = (comm.ctx, seq)
        entry = registry.setdefault(
            key,
            {
                "arrays": [None] * comm.size,
                "locks": [Resource(comm.engine, 1, f"winlock{key}-{r}")
                          for r in range(comm.size)],
            },
        )
        entry["arrays"][comm.rank] = arr
        yield from comm.barrier()  # exposure epoch starts collectively
        return cls(comm, seq, entry["arrays"], entry["locks"])

    # -- data movement ------------------------------------------------------------

    def _target_tb(self, target_rank: int, datatype, count, offset_bytes) -> TypedBuffer:
        target_arr = self._exposed[target_rank]
        if target_arr is None:
            raise MPIError(f"rank {target_rank} exposed no array")
        return as_typed(target_arr, datatype, count, offset_bytes)

    def put(
        self,
        origin,
        target_rank: int,
        target_datatype=None,
        target_count: Optional[int] = None,
        target_offset_bytes: int = 0,
        method: str = "pack",
    ) -> Generator:
        """Write origin data into the target's exposed array.

        Nonblocking in the MPI sense: completion is only guaranteed at the
        next :meth:`fence` (or :meth:`unlock`).  ``method`` selects the
        noncontiguous strategy (see module docstring).
        """
        if method not in ("pack", "multi_rdma"):
            raise MPIError(f"unknown RMA method {method!r}")
        if not 0 <= target_rank < self.comm.size:
            raise MPIError(f"invalid target rank {target_rank}")
        origin_tb = as_typed(origin)
        target_tb = self._target_tb(
            target_rank, target_datatype, target_count, target_offset_bytes
        )
        if origin_tb.nbytes != target_tb.nbytes:
            raise MPIError(
                f"put size mismatch: origin {origin_tb.nbytes} B, "
                f"target {target_tb.nbytes} B"
            )
        data = origin_tb.pack()
        proc = self.comm.engine.spawn(
            self._do_put(data, origin_tb, target_tb, target_rank, method),
            f"rma-put->{target_rank}",
        )
        self._pending.append(proc)
        yield Delay(0.0)

    def _do_put(self, data, origin_tb, target_tb, target_rank, method) -> Generator:
        comm = self.comm
        cost = comm.cost
        src = comm.grank
        dst = comm._to_global(target_rank)
        # origin-side datatype processing (same engines as two-sided)
        if not origin_tb.is_contiguous():
            engine = make_engine(origin_tb.blocks, cost,
                                 comm.config.dual_context_engine)
            cpu = engine.total_cpu_s()
            yield from comm.cpu(cpu, "pack")
        if method == "pack" or target_tb.is_contiguous():
            yield from comm.net.transfer(src, dst, target_tb.nbytes)
            if not target_tb.is_contiguous():
                # host-assisted: the TARGET CPU scatters the data
                first, last = target_tb.blocks.blocks_in_range(0, target_tb.nbytes)
                seconds = unpack_stage_cost(
                    target_tb.nbytes, last - first, cost, contiguous=False
                )
                scaled = comm.net.cpu_seconds(dst, seconds)
                comm.cluster.ledgers[dst].charge("pack", scaled)
                yield Delay(scaled)
        else:
            # zero-copy: one RDMA op per contiguous target block, each
            # paying the (cheaper) RDMA initiation instead of full alpha
            blocks = target_tb.blocks
            for length in blocks.lengths.tolist():
                yield from comm.net.transfer(
                    src, dst, int(length), latency=cost.rdma_alpha
                )
        target_tb.unpack(data)

    def get(
        self,
        origin,
        target_rank: int,
        target_datatype=None,
        target_count: Optional[int] = None,
        target_offset_bytes: int = 0,
    ) -> Generator:
        """Read the target's exposed data into the origin buffer
        (completes at the next fence/unlock)."""
        if not 0 <= target_rank < self.comm.size:
            raise MPIError(f"invalid target rank {target_rank}")
        origin_tb = as_typed(origin)
        target_tb = self._target_tb(
            target_rank, target_datatype, target_count, target_offset_bytes
        )
        if origin_tb.nbytes != target_tb.nbytes:
            raise MPIError("get size mismatch")
        proc = self.comm.engine.spawn(
            self._do_get(origin_tb, target_tb, target_rank),
            f"rma-get<-{target_rank}",
        )
        self._pending.append(proc)
        yield Delay(0.0)

    def _do_get(self, origin_tb, target_tb, target_rank) -> Generator:
        comm = self.comm
        src = comm._to_global(target_rank)  # data flows target -> origin
        dst = comm.grank
        yield from comm.net.transfer(src, dst, target_tb.nbytes)
        data = target_tb.pack()
        if not origin_tb.is_contiguous():
            first, last = origin_tb.blocks.blocks_in_range(0, origin_tb.nbytes)
            yield from comm.cpu(
                unpack_stage_cost(origin_tb.nbytes, last - first, comm.cost,
                                  contiguous=False),
                "pack",
            )
        origin_tb.unpack(data)

    def accumulate(
        self,
        origin,
        target_rank: int,
        target_datatype=None,
        target_count: Optional[int] = None,
        target_offset_bytes: int = 0,
    ) -> Generator:
        """Atomic elementwise-sum into the target (MPI_Accumulate, MPI_SUM);
        serialised per target through the window lock."""
        origin_tb = as_typed(origin)
        target_tb = self._target_tb(
            target_rank, target_datatype, target_count, target_offset_bytes
        )
        if origin_tb.nbytes != target_tb.nbytes:
            raise MPIError("accumulate size mismatch")
        data = origin_tb.pack()
        proc = self.comm.engine.spawn(
            self._do_accumulate(data, target_tb, target_rank),
            f"rma-acc->{target_rank}",
        )
        self._pending.append(proc)
        yield Delay(0.0)

    def _do_accumulate(self, data, target_tb, target_rank) -> Generator:
        comm = self.comm
        dst = comm._to_global(target_rank)
        lock = self._locks[target_rank]
        yield from lock.acquire()
        try:
            yield from comm.net.transfer(comm.grank, dst, target_tb.nbytes)
            current = target_tb.pack()
            summed = (
                current.view(np.float64) + np.asarray(data).view(np.float64)
            )
            target_tb.unpack(summed.view(np.uint8))
            seconds = target_tb.nbytes * comm.cost.copy_byte
            scaled = comm.net.cpu_seconds(dst, seconds)
            comm.cluster.ledgers[dst].charge("compute", scaled)
            yield Delay(scaled)
        finally:
            lock.release()

    # -- synchronisation -------------------------------------------------------------

    def _drain(self) -> Generator:
        pending, self._pending = self._pending, []
        for proc in pending:
            yield proc

    def fence(self) -> Generator:
        """Close the current epoch: complete all local operations, then
        synchronise everyone (collective)."""
        yield from self._drain()
        yield from self.comm.barrier()

    def lock(self, target_rank: int) -> Generator:
        """Begin a passive-target exclusive access epoch."""
        yield from self._locks[target_rank].acquire()

    def unlock(self, target_rank: int) -> Generator:
        """Complete outstanding ops and release the passive-target lock."""
        yield from self._drain()
        self._locks[target_rank].release()
