"""Message tracing and communication statistics.

Attach a :class:`MessageTrace` to a cluster before running to record every
message (simulated send time, arrival time, source, destination, tag,
payload bytes, and the flattened datatype signature hash).  The trace can
then answer the questions one asks of a real MPI profile: the rank-to-rank
communication matrix, per-rank message/byte counts, zero-byte
synchronisation counts (the quantity the paper's binned Alltoallw
eliminates), a simple timeline histogram, and -- for the correctness
analyzer -- which messages never matched a receive (:meth:`unmatched`) and
whether send/receive signatures agreed on the wire.

>>> cluster = Cluster(8, config=MPIConfig.baseline())
>>> trace = MessageTrace.attach(cluster)
>>> cluster.run(main)
>>> trace.matrix()          # nranks x nranks byte counts
>>> trace.zero_byte_count() # pure synchronisation messages
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One delivered message (one wire chunk for pipelined payloads)."""

    t_sent: float     # when the payload entered the wire
    t_arrived: float  # when the last chunk landed
    src: int
    dst: int
    tag: int
    nbytes: int
    #: crc32 of the run-length-encoded primitive typemap of the send buffer
    #: (``None`` for control-plane object messages and raw transfers)
    sig: Optional[int] = None
    #: causal message id assigned by the p2p layer; all wire chunks of one
    #: logical message share it (``None`` for raw transfers, e.g. RMA)
    msg_id: Optional[int] = None


class MessageTrace:
    """A passive recorder of every wire message in a cluster run."""

    def __init__(self, nranks: int):
        self.nranks = nranks
        self.records: List[TraceRecord] = []
        self.cluster = None  # set by attach()

    @classmethod
    def attach(cls, cluster) -> "MessageTrace":
        """Instrument ``cluster`` (call before ``cluster.run``).

        The trace subscribes to the cluster's observer API
        (:meth:`repro.mpi.comm.Cluster.add_observer`) and records each
        ``transfer`` event.  It never wraps or replaces
        ``cluster.net.transfer``, so any number of traces, verifiers and
        profilers can be attached to the same cluster without interfering.
        """
        trace = cls(cluster.nranks)
        trace.cluster = cluster
        cluster.add_observer(trace)
        return trace

    def on_transfer(self, event) -> None:
        """Observer hook: record one completed wire transfer."""
        self.records.append(
            TraceRecord(event.t_start, event.t_end, event.src, event.dst,
                        event.tag, event.nbytes, event.sig, event.msg_id)
        )

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def matrix(self) -> np.ndarray:
        """Rank-to-rank total bytes."""
        m = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        for r in self.records:
            m[r.src, r.dst] += r.nbytes
        return m

    def message_counts(self) -> np.ndarray:
        """Rank-to-rank message counts."""
        m = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        for r in self.records:
            m[r.src, r.dst] += 1
        return m

    def zero_byte_count(self) -> int:
        """Pure synchronisation messages (what the zero bin exempts)."""
        return sum(1 for r in self.records if r.nbytes == 0)

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def per_rank_sent(self) -> np.ndarray:
        out = np.zeros(self.nranks, dtype=np.int64)
        for r in self.records:
            out[r.src] += r.nbytes
        return out

    def by_message(self) -> dict:
        """Wire chunks grouped by causal message id.

        One logical p2p message may cross the wire as several pipeline
        chunks (and, under the reliable transport, retransmissions and the
        ack); all carry the same ``msg_id``.  Records without an id (raw
        transfers issued below the p2p layer) are excluded.
        """
        out: dict = {}
        for r in self.records:
            if r.msg_id is not None:
                out.setdefault(r.msg_id, []).append(r)
        return out

    def signature_counts(self) -> dict:
        """Histogram of datatype signature hashes seen on the wire."""
        out: dict = {}
        for r in self.records:
            if r.sig is not None:
                out[r.sig] = out.get(r.sig, 0) + 1
        return out

    def unmatched(self) -> dict:
        """Operations still pending in the matching machinery.

        Call after (or instead of) ``cluster.run``.  Returns::

            {"sends": [(src, dst, tag, nbytes), ...],   # never received
             "recvs": [(rank, source, tag), ...]}       # never satisfied

        Non-empty lists after a completed run indicate unmatched traffic:
        a send nobody received, or a posted receive nobody sent to -- the
        runtime verifier turns these into P2P001/P2P002 findings.
        """
        if self.cluster is None:
            return {"sends": [], "recvs": []}
        sends = [
            (rec.src, rec.dst, rec.tag, rec.nbytes)
            for pending in self.cluster._unexpected
            for rec in pending
        ]
        recvs = [
            (rank, rrec.source, rrec.tag)
            for rank, posted in enumerate(self.cluster._posted)
            for rrec in posted
        ]
        return {"sends": sends, "recvs": recvs}

    def busiest_pair(self) -> Optional[tuple]:
        """((src, dst), bytes) of the heaviest pair, or None."""
        if not self.records:
            return None
        m = self.matrix()
        flat = int(np.argmax(m))
        return divmod(flat, self.nranks), int(m.reshape(-1)[flat])

    def timeline(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Bytes entering the wire per time bin across the run.

        Returns ``(edges, hist)`` where ``edges`` has ``bins + 1`` bin
        boundaries in simulated seconds and ``hist[i]`` is the total bytes
        of messages whose send time falls in ``[edges[i], edges[i+1])``
        (the last bin is closed on the right).  An empty trace -- or one
        whose messages all left at the same instant -- yields edges spanning
        ``[0, max(t, 1)]`` so the histogram is always well defined.
        """
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        hist = np.zeros(bins, dtype=np.int64)
        if not self.records:
            edges = np.linspace(0.0, 1.0, bins + 1)
            return edges, hist
        t_end = max(r.t_arrived for r in self.records)
        if t_end <= 0.0:
            # zero-duration run (e.g. only local copies at t=0)
            edges = np.linspace(0.0, 1.0, bins + 1)
            hist[0] = self.total_bytes()
            return edges, hist
        edges = np.linspace(0.0, t_end, bins + 1)
        for r in self.records:
            b = min(bins - 1, int(r.t_sent / t_end * bins))
            hist[b] += r.nbytes
        return edges, hist

    def summary(self) -> str:
        """A human-readable digest."""
        lines = [
            f"messages : {len(self.records)}",
            f"bytes    : {self.total_bytes()}",
            f"zero-byte: {self.zero_byte_count()}",
        ]
        pair = self.busiest_pair()
        if pair:
            (src, dst), nbytes = pair
            lines.append(f"busiest  : {src} -> {dst} ({nbytes} B)")
        return "\n".join(lines)
