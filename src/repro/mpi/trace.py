"""Message tracing and communication statistics.

Attach a :class:`MessageTrace` to a cluster before running to record every
message (simulated send time, arrival time, source, destination, tag,
payload bytes, and the flattened datatype signature hash).  The trace can
then answer the questions one asks of a real MPI profile: the rank-to-rank
communication matrix, per-rank message/byte counts, zero-byte
synchronisation counts (the quantity the paper's binned Alltoallw
eliminates), a simple timeline histogram, and -- for the correctness
analyzer -- which messages never matched a receive (:meth:`unmatched`) and
whether send/receive signatures agreed on the wire.

>>> cluster = Cluster(8, config=MPIConfig.baseline())
>>> trace = MessageTrace.attach(cluster)
>>> cluster.run(main)
>>> trace.matrix()          # nranks x nranks byte counts
>>> trace.zero_byte_count() # pure synchronisation messages
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One delivered message (one wire chunk for pipelined payloads)."""

    t_sent: float     # when the payload entered the wire
    t_arrived: float  # when the last chunk landed
    src: int
    dst: int
    tag: int
    nbytes: int
    #: crc32 of the run-length-encoded primitive typemap of the send buffer
    #: (``None`` for control-plane object messages and raw transfers)
    sig: Optional[int] = None


class MessageTrace:
    """A passive recorder of every wire message in a cluster run."""

    def __init__(self, nranks: int):
        self.nranks = nranks
        self.records: List[TraceRecord] = []
        self.cluster = None  # set by attach()

    @classmethod
    def attach(cls, cluster) -> "MessageTrace":
        """Instrument ``cluster`` (call before ``cluster.run``)."""
        trace = cls(cluster.nranks)
        trace.cluster = cluster
        original = cluster.net.transfer

        def traced_transfer(src, dst, nbytes, latency=None, tag=-1, sig=None):
            t_sent = cluster.engine.now
            yield from original(src, dst, nbytes, latency, tag=tag, sig=sig)
            trace.records.append(
                TraceRecord(t_sent, cluster.engine.now, src, dst, tag, nbytes, sig)
            )

        cluster.net.transfer = traced_transfer
        return trace

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def matrix(self) -> np.ndarray:
        """Rank-to-rank total bytes."""
        m = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        for r in self.records:
            m[r.src, r.dst] += r.nbytes
        return m

    def message_counts(self) -> np.ndarray:
        """Rank-to-rank message counts."""
        m = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        for r in self.records:
            m[r.src, r.dst] += 1
        return m

    def zero_byte_count(self) -> int:
        """Pure synchronisation messages (what the zero bin exempts)."""
        return sum(1 for r in self.records if r.nbytes == 0)

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def per_rank_sent(self) -> np.ndarray:
        out = np.zeros(self.nranks, dtype=np.int64)
        for r in self.records:
            out[r.src] += r.nbytes
        return out

    def signature_counts(self) -> dict:
        """Histogram of datatype signature hashes seen on the wire."""
        out: dict = {}
        for r in self.records:
            if r.sig is not None:
                out[r.sig] = out.get(r.sig, 0) + 1
        return out

    def unmatched(self) -> dict:
        """Operations still pending in the matching machinery.

        Call after (or instead of) ``cluster.run``.  Returns::

            {"sends": [(src, dst, tag, nbytes), ...],   # never received
             "recvs": [(rank, source, tag), ...]}       # never satisfied

        Non-empty lists after a completed run indicate unmatched traffic:
        a send nobody received, or a posted receive nobody sent to -- the
        runtime verifier turns these into P2P001/P2P002 findings.
        """
        if self.cluster is None:
            return {"sends": [], "recvs": []}
        sends = [
            (rec.src, rec.dst, rec.tag, rec.nbytes)
            for pending in self.cluster._unexpected
            for rec in pending
        ]
        recvs = [
            (rank, rrec.source, rrec.tag)
            for rank, posted in enumerate(self.cluster._posted)
            for rrec in posted
        ]
        return {"sends": sends, "recvs": recvs}

    def busiest_pair(self) -> Optional[tuple]:
        """((src, dst), bytes) of the heaviest pair, or None."""
        if not self.records:
            return None
        m = self.matrix()
        flat = int(np.argmax(m))
        return divmod(flat, self.nranks), int(m.reshape(-1)[flat])

    def timeline(self, bins: int = 10) -> np.ndarray:
        """Bytes on the wire per time bin across the run."""
        if not self.records:
            return np.zeros(bins, dtype=np.int64)
        t_end = max(r.t_arrived for r in self.records) or 1.0
        hist = np.zeros(bins, dtype=np.int64)
        for r in self.records:
            b = min(bins - 1, int(r.t_sent / t_end * bins))
            hist[b] += r.nbytes
        return hist

    def summary(self) -> str:
        """A human-readable digest."""
        lines = [
            f"messages : {len(self.records)}",
            f"bytes    : {self.total_bytes()}",
            f"zero-byte: {self.zero_byte_count()}",
        ]
        pair = self.busiest_pair()
        if pair:
            (src, dst), nbytes = pair
            lines.append(f"busiest  : {src} -> {dst} ({nbytes} B)")
        return "\n".join(lines)
