"""MPI-IO: file views with derived datatypes, independent and collective IO.

Parallel IO is the *other* great consumer of derived datatypes: each rank's
``set_view`` describes its noncontiguous slice of a shared file (the
``MPI_File_set_view`` + ``Create_vector`` idiom from the mpi4py tutorial),
and the IO layer must move that interleaved data efficiently.

Two paths are provided, mirroring ROMIO:

- **independent** (``write_at``/``read_at`` and plain ``write``/``read``):
  every contiguous file block of the view becomes its own file-system
  operation through the shared server -- interleaved views degenerate into
  storms of tiny ops,
- **collective two-phase** (``write_all``/``read_all``): ranks first
  redistribute data over the (fast) network so each *aggregator* holds one
  contiguous file region, then issue one large file-system operation each.
  The classic two-phase win for interleaved patterns falls out of the cost
  model: network beta is ~50x cheaper than an IO op.

The file system is simulated: one shared server resource (requests
serialise) with per-op latency and per-byte bandwidth from the
:class:`CostModel`; file contents are real bytes, so reads verify writes.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.datatypes.typemap import Contiguous, Datatype, Resized
from repro.mpi.comm import Comm, MPIError, as_typed
from repro.mpi.collectives.basic import _tag_window
from repro.mpi.request import Request
from repro.simtime.resources import Resource


class _SimFileSystem:
    """Cluster-wide shared store: named byte arrays + one server resource."""

    key = "_sim_fs"

    def __init__(self, cluster):
        self.files: Dict[str, np.ndarray] = {}
        self.server = Resource(cluster.engine, 1, "fs-server")
        self.ops = 0
        self.bytes_moved = 0

    @classmethod
    def of(cls, cluster) -> "_SimFileSystem":
        fs = getattr(cluster, cls.key, None)
        if fs is None:
            fs = cls(cluster)
            setattr(cluster, cls.key, fs)
        return fs

    def ensure_size(self, name: str, nbytes: int) -> np.ndarray:
        arr = self.files.get(name)
        if arr is None:
            arr = np.zeros(max(nbytes, 1), dtype=np.uint8)
            self.files[name] = arr
        elif arr.size < nbytes:
            grown = np.zeros(nbytes, dtype=np.uint8)
            grown[: arr.size] = arr
            arr = self.files[name] = grown
        return arr

    def io(self, cost, nbytes: int) -> Generator:
        """One file-system operation of ``nbytes`` through the server."""
        self.ops += 1
        self.bytes_moved += nbytes
        yield from self.server.use(cost.io_op_latency + nbytes * cost.io_byte)


class File:
    """An open parallel file handle (per rank; open collectively)."""

    def __init__(self, comm: Comm, name: str, fs: _SimFileSystem):
        self.comm = comm
        self.name = name
        self._fs = fs
        self._disp = 0
        self._filetype: Optional[Datatype] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def open(cls, comm: Comm, name: str) -> Generator:
        """Collective open (creates the file if missing)."""
        fs = _SimFileSystem.of(comm.cluster)
        fs.ensure_size(name, 0)
        yield from comm.barrier()
        return cls(comm, name, fs)

    def close(self) -> Generator:
        """Collective close."""
        self._check_open()
        self._closed = True
        yield from self.comm.barrier()

    def _check_open(self):
        if self._closed:
            raise MPIError(f"file {self.name!r} is closed")

    # -- views -------------------------------------------------------------------

    def set_view(self, displacement: int, filetype: Optional[Datatype] = None) -> None:
        """This rank's window onto the file: the ``filetype`` tiled from
        byte ``displacement`` (``MPI_File_set_view``)."""
        self._check_open()
        if displacement < 0:
            raise MPIError("negative displacement")
        self._disp = int(displacement)
        self._filetype = filetype

    def _view_offsets(self, nbytes: int) -> Tuple[np.ndarray, np.ndarray]:
        """(offsets, lengths) of the first ``nbytes`` payload bytes of the
        view, as absolute file positions."""
        if self._filetype is None:
            return (np.array([self._disp], dtype=np.int64),
                    np.array([nbytes], dtype=np.int64))
        ft = self._filetype
        if nbytes % ft.size:
            raise MPIError(
                f"payload of {nbytes} B is not a whole number of filetypes "
                f"({ft.size} B each)"
            )
        tiles = nbytes // ft.size
        tiled = Contiguous(tiles, Resized(ft, ft.extent)) if tiles > 1 else ft
        blocks = tiled.flatten().shifted(self._disp)
        return blocks.offsets, blocks.lengths

    # -- independent IO --------------------------------------------------------------

    def write(self, buffer, datatype=None, count=None) -> Generator:
        """Independent write through the view: one file-system operation
        per contiguous view block."""
        self._check_open()
        tb = as_typed(buffer, datatype, count)
        data = tb.pack()
        offs, lens = self._view_offsets(tb.nbytes)
        arr = self._fs.ensure_size(self.name, int((offs + lens).max()) if len(offs) else 0)
        pos = 0
        for off, length in zip(offs.tolist(), lens.tolist()):
            arr[off:off + length] = data[pos:pos + length]
            pos += length
            yield from self._fs.io(self.comm.cost, length)

    def read(self, buffer, datatype=None, count=None) -> Generator:
        """Independent read through the view."""
        self._check_open()
        tb = as_typed(buffer, datatype, count)
        offs, lens = self._view_offsets(tb.nbytes)
        end = int((offs + lens).max()) if len(offs) else 0
        arr = self._fs.ensure_size(self.name, end)
        data = np.empty(tb.nbytes, dtype=np.uint8)
        pos = 0
        for off, length in zip(offs.tolist(), lens.tolist()):
            data[pos:pos + length] = arr[off:off + length]
            pos += length
            yield from self._fs.io(self.comm.cost, length)
        tb.unpack(data)

    def write_at(self, offset: int, buffer, datatype=None, count=None) -> Generator:
        """Independent contiguous write at an explicit byte offset
        (ignores the view)."""
        self._check_open()
        tb = as_typed(buffer, datatype, count)
        data = tb.pack()
        arr = self._fs.ensure_size(self.name, offset + tb.nbytes)
        arr[offset:offset + tb.nbytes] = data
        yield from self._fs.io(self.comm.cost, tb.nbytes)

    def read_at(self, offset: int, buffer, datatype=None, count=None) -> Generator:
        self._check_open()
        tb = as_typed(buffer, datatype, count)
        arr = self._fs.ensure_size(self.name, offset + tb.nbytes)
        yield from self._fs.io(self.comm.cost, tb.nbytes)
        tb.unpack(arr[offset:offset + tb.nbytes])

    # -- collective two-phase IO ----------------------------------------------------------

    def write_all(self, buffer, datatype=None, count=None) -> Generator:
        """Collective two-phase write: redistribute over the network so
        every rank writes one contiguous file region."""
        self._check_open()
        comm = self.comm
        tb = as_typed(buffer, datatype, count)
        data = tb.pack()
        offs, lens = self._view_offsets(tb.nbytes)
        yield from self._two_phase(offs, lens, data, write=True, out_tb=None)

    def read_all(self, buffer, datatype=None, count=None) -> Generator:
        """Collective two-phase read."""
        self._check_open()
        tb = as_typed(buffer, datatype, count)
        offs, lens = self._view_offsets(tb.nbytes)
        yield from self._two_phase(offs, lens, None, write=False, out_tb=tb)

    def _two_phase(self, offs, lens, data, write: bool, out_tb) -> Generator:
        comm = self.comm
        base = _tag_window(comm, op="io_collective")
        my_lo = int(offs.min()) if len(offs) else 0
        my_hi = int((offs + lens).max()) if len(offs) else 0
        extents = yield from comm.gather_obj((my_lo, my_hi), root=0)
        extents = yield from comm.bcast(extents, root=0)
        lo = min(e[0] for e in extents)
        hi = max(e[1] for e in extents)
        if hi <= lo:
            return
        # aggregator r owns file bytes [bounds[r], bounds[r+1])
        n = comm.size
        span = hi - lo
        bounds = [lo + span * r // n for r in range(n + 1)]
        my_chunk = np.zeros(max(1, bounds[comm.rank + 1] - bounds[comm.rank]),
                            dtype=np.uint8)

        # split my view blocks by aggregator, preserving payload order
        ends = np.cumsum(lens)
        starts = ends - lens
        bounds_arr = np.asarray(bounds, dtype=np.int64)
        pieces: Dict[int, List[tuple]] = {}
        for off, length, p0 in zip(offs.tolist(), lens.tolist(), starts.tolist()):
            pos = off
            while pos < off + length:
                agg = int(np.searchsorted(bounds_arr, pos, side="right")) - 1
                agg = min(n - 1, max(0, agg))
                agg_end = bounds[agg + 1]
                take = min(off + length, agg_end) - pos
                pieces.setdefault(agg, []).append(
                    (pos, take, p0 + (pos - off))
                )
                pos += take

        requests: List[Request] = []
        incoming: List[tuple] = []
        # metadata: how many pieces / bytes each peer will send me
        out_meta = np.zeros(n * 2)
        for agg, plist in pieces.items():
            out_meta[2 * agg] = len(plist)
            out_meta[2 * agg + 1] = sum(t[1] for t in plist)
        in_meta = np.zeros(n * 2)
        yield from comm.alltoall(out_meta, in_meta, 2)
        for peer in range(n):
            npieces = int(in_meta[2 * peer])
            nbytes = int(in_meta[2 * peer + 1])
            if npieces == 0:
                continue
            head = np.empty(2 * npieces)
            payload = np.empty(nbytes, dtype=np.uint8) if write else None
            incoming.append((peer, head, payload, nbytes))
            requests.append(comm.irecv(head, peer, base))
            if write:
                requests.append(comm.irecv(payload, peer, base + 1))
        for agg, plist in sorted(pieces.items()):
            head = np.array(
                [v for (pos, take, _p) in plist for v in (pos, take)],
                dtype=np.float64,
            )
            requests.append((yield from comm.isend(head, agg, base)))
            if write:
                chunks = [data[p:p + take] for (pos, take, p) in plist]
                payload = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint8)
                requests.append((yield from comm.isend(payload, agg, base + 1)))
        yield from Request.waitall(requests)

        arr = self._fs.ensure_size(self.name, hi)
        chunk_lo = bounds[comm.rank]
        chunk_hi = bounds[comm.rank + 1]
        if write:
            for peer, head, payload, _nb in incoming:
                meta = head.reshape(-1, 2).astype(np.int64)
                pos = 0
                for fpos, take in meta:
                    my_chunk[fpos - chunk_lo:fpos - chunk_lo + take] = \
                        payload[pos:pos + take]
                    pos += take
            if chunk_hi > chunk_lo:
                arr[chunk_lo:chunk_hi] = my_chunk[: chunk_hi - chunk_lo]
                yield from self._fs.io(comm.cost, chunk_hi - chunk_lo)
        else:
            if chunk_hi > chunk_lo:
                yield from self._fs.io(comm.cost, chunk_hi - chunk_lo)
                my_chunk[: chunk_hi - chunk_lo] = arr[chunk_lo:chunk_hi]
            # answer each requester with its pieces
            answers: List[Request] = []
            recvs: List[tuple] = []
            for peer, head, _payload, nbytes in incoming:
                meta = head.reshape(-1, 2).astype(np.int64)
                out = np.concatenate([
                    my_chunk[fpos - chunk_lo:fpos - chunk_lo + take]
                    for fpos, take in meta
                ]) if len(meta) else np.empty(0, dtype=np.uint8)
                answers.append((yield from comm.isend(out, peer, base + 2)))
            # receive my pieces back, in aggregator order
            total_in = sum(sum(t[1] for t in plist) for plist in pieces.values())
            assembled = np.empty(total_in, dtype=np.uint8)
            back: List[tuple] = []
            for agg, plist in sorted(pieces.items()):
                nbytes = sum(t[1] for t in plist)
                buf = np.empty(nbytes, dtype=np.uint8)
                back.append((agg, plist, buf))
                recvs.append(comm.irecv(buf, agg, base + 2))
            yield from Request.waitall(recvs + answers)
            data_out = np.empty(int(np.sum(lens)), dtype=np.uint8)
            for agg, plist, buf in back:
                pos = 0
                for fpos, take, p in plist:
                    data_out[p:p + take] = buf[pos:pos + take]
                    pos += take
            out_tb.unpack(data_out)
