"""Outlier detection in communication-volume sets (paper section 4.2.1).

The paper formulates "is this Allgatherv nonuniform enough to abandon the
ring algorithm?" as an outlier-detection problem over ``COMM_VOL_SET`` (the
per-rank volumes, already known to every process in an Allgatherv), Eq. 1::

            k_select(COMM_VOL_SET, N)
    ratio = ------------------------------------------
            k_select(COMM_VOL_SET, N x OUTLIER_FRACT)

with ``k_select`` evaluated by the Floyd-Rivest linear-time selection
algorithm.  The numerator is the maximum volume; the denominator is the
upper edge of the "bulk" of the distribution -- the k-th smallest volume
with ``k = ceil(N x (1 - OUTLIER_FRACT))``, i.e. allowing at most an
``OUTLIER_FRACT`` fraction of processes to sit above it.  A ratio above the
threshold means a small subset of processes carries disproportionately
large volumes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.util.costmodel import CostModel
from repro.util.kselect import SelectStats, k_select  # noqa: F401 (re-export)

#: nominal CPU cost per set element of the linear-time detection pass
DETECT_COST_PER_ELEMENT = 5e-9


def outlier_ratio(volumes: Sequence[int], outlier_fraction: float,
                  stats: Optional[SelectStats] = None) -> float:
    """Eq. 1: max volume over the bulk's upper-edge volume.

    Returns ``inf`` when the bulk is all zeros but the maximum is not
    (e.g. one rank sends data and everyone else sends nothing).
    ``stats`` accumulates Floyd-Rivest call/pivot-pass counts for the
    profiler.
    """
    n = len(volumes)
    if n == 0:
        raise ValueError("empty volume set")
    if not 0.0 < outlier_fraction < 1.0:
        raise ValueError(f"outlier_fraction must be in (0, 1), got {outlier_fraction}")
    if n == 1:
        # a single volume can never be an outlier; skip the k-select pass
        # entirely so ``stats`` (and the adaptive policy's cost accounting)
        # reflects zero selection work
        return 1.0
    vmax = k_select(volumes, n, stats=stats)
    # the bulk's upper edge excludes at least one candidate outlier, and at
    # most an OUTLIER_FRACT fraction of the set
    n_outliers = max(1, math.floor(n * outlier_fraction))
    bulk_edge = k_select(volumes, n - n_outliers, stats=stats)
    if bulk_edge <= 0:
        return math.inf if vmax > 0 else 1.0
    return vmax / bulk_edge


def has_outliers(volumes: Sequence[int], cost: CostModel,
                 stats: Optional[SelectStats] = None) -> bool:
    """Decision used by the adaptive Allgatherv."""
    ratio = outlier_ratio(volumes, cost.outlier_fraction, stats=stats)
    return ratio > cost.outlier_ratio_threshold


def detection_cpu_seconds(n: int) -> float:
    """Nominal CPU cost of the linear-time detection over ``n`` volumes."""
    return n * DETECT_COST_PER_ELEMENT
