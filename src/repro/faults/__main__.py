"""CLI: ``python -m repro.faults chaos`` -- run the chaos harness.

Examples::

    python -m repro.faults chaos
    python -m repro.faults chaos --seeds 1 2 3 4 5 --nprocs 8 \
        --report chaos-report.json
    python -m repro.faults chaos --scenario crash_allgatherv --seeds 7

Exit status is 0 iff every invariant held; the JSON report (``--report``)
records per-run fault/transport counters for CI artifacts.
"""

from __future__ import annotations

import argparse
import sys

from repro.faults.chaos import SCENARIOS, run_chaos


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection chaos harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    chaos = sub.add_parser("chaos", help="run the invariant-checking harness")
    chaos.add_argument("--seeds", type=int, nargs="+",
                       default=[1, 2, 3, 4, 5],
                       help="fault-schedule seeds (default: 1..5)")
    chaos.add_argument("--nprocs", type=int, default=8,
                       help="simulated processes per scenario (default 8)")
    chaos.add_argument("--scenario", action="append", dest="scenarios",
                       choices=sorted(SCENARIOS),
                       help="run only this scenario (repeatable)")
    chaos.add_argument("--report", metavar="PATH",
                       help="write the JSON chaos report here")
    args = parser.parse_args(argv)

    report = run_chaos(seeds=tuple(args.seeds), nprocs=args.nprocs,
                       scenarios=args.scenarios, log=print)
    print()
    print(report.summary())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
