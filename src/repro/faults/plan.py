"""The fault-plan DSL: a declarative, seeded description of what goes wrong.

A :class:`FaultPlan` is a small immutable-after-build schedule with two kinds
of entries:

- :class:`WireRule` -- payload and timing faults applied per wire transfer
  (drop, corrupt, duplicate, delay spike, NIC degradation), filtered by
  endpoint, time window, payload size, or "the nth matching transfer",
- :class:`RankFault` -- process faults (crash, hang) triggered at a
  simulated time or at a rank's nth wire operation.

Plans are built with a chainable API::

    plan = (FaultPlan(seed=7)
            .drop(probability=0.05, after=1e-5)
            .corrupt(probability=0.02, src=3)
            .delay_spike(delay=5e-4, nth=10)
            .crash(rank=2, at_time=2e-4))

and are *deterministic*: the same plan (including its ``seed``) against the
same application produces the same fault sequence, because all probability
draws come from one private :class:`random.Random` seeded at install time
and the simulator itself is deterministic.

A plan is pure data; it holds no cluster state and can be reused across
runs (each :class:`repro.faults.injector.FaultInjector` re-seeds its own
RNG from ``plan.seed``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["WireRule", "RankFault", "FaultPlan"]

#: wire-fault kinds understood by the injector
WIRE_KINDS = ("drop", "corrupt", "duplicate", "delay", "degrade")
#: rank-fault kinds understood by the injector
RANK_KINDS = ("crash", "hang")


@dataclass(frozen=True)
class WireRule:
    """One per-transfer fault rule.

    A rule *matches* a transfer when every filter accepts it: ``src``/``dst``
    (None = any rank), the half-open time window ``[after, until)``, and
    ``min_bytes`` (lets a rule target payloads while sparing zero-byte
    acks/synchronisations -- or the reverse).  A matching rule *fires*
    either on its ``nth`` match (1-based, exactly once) or, when ``nth`` is
    None, independently with ``probability`` per match.
    """

    kind: str
    probability: float = 1.0
    src: Optional[int] = None
    dst: Optional[int] = None
    after: float = 0.0
    until: float = math.inf
    nth: Optional[int] = None
    #: extra seconds the packet sits in the NIC (kind == "delay")
    delay: float = 0.0
    #: wire-time multiplier, e.g. 4.0 = quarter bandwidth (kind == "degrade")
    scale: float = 1.0
    min_bytes: int = 0

    def __post_init__(self):
        if self.kind not in WIRE_KINDS:
            raise ValueError(f"unknown wire-fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability!r} not in [0, 1]")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth!r}")
        if self.delay < 0.0:
            raise ValueError(f"negative delay {self.delay!r}")
        if self.scale <= 0.0:
            raise ValueError(f"non-positive scale {self.scale!r}")

    def matches(self, src: int, dst: int, nbytes: int, now: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and nbytes >= self.min_bytes
            and self.after <= now < self.until
        )


@dataclass(frozen=True)
class RankFault:
    """One process fault: a crash (fail-stop) or a hang (silent stall).

    Exactly one trigger must be set:

    - ``at_time`` -- fire at that simulated time,
    - ``at_op``   -- fire when the rank *initiates* its ``at_op``-th wire
      transfer (1-based, counted on the send side), which places the fault
      deterministically *inside* a specific communication pattern
      regardless of timing jitter.

    For hangs, ``detect_after`` optionally models an external failure
    detector: that many seconds after the hang the rank is declared failed,
    upgrading the silent stall into normal crash propagation.
    """

    kind: str
    rank: int
    at_time: Optional[float] = None
    at_op: Optional[int] = None
    detect_after: Optional[float] = None
    reason: str = "injected fault"

    def __post_init__(self):
        if self.kind not in RANK_KINDS:
            raise ValueError(f"unknown rank-fault kind {self.kind!r}")
        if (self.at_time is None) == (self.at_op is None):
            raise ValueError("exactly one of at_time / at_op must be set")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"negative at_time {self.at_time!r}")
        if self.at_op is not None and self.at_op < 1:
            raise ValueError(f"at_op must be >= 1, got {self.at_op!r}")
        if self.detect_after is not None and self.kind != "hang":
            raise ValueError("detect_after only applies to hangs")


@dataclass
class FaultPlan:
    """A seeded schedule of wire and rank faults (see module docstring)."""

    seed: int = 0
    wire_rules: List[WireRule] = field(default_factory=list)
    rank_faults: List[RankFault] = field(default_factory=list)

    # -- chainable builders ------------------------------------------------

    def _wire(self, kind: str, **kw) -> "FaultPlan":
        self.wire_rules.append(WireRule(kind=kind, **kw))
        return self

    def drop(self, probability: float = 1.0, **kw) -> "FaultPlan":
        """Lose matching transfers (payload never arrives)."""
        return self._wire("drop", probability=probability, **kw)

    def corrupt(self, probability: float = 1.0, **kw) -> "FaultPlan":
        """Flip bits in matching transfers (CRC mismatch at the receiver)."""
        return self._wire("corrupt", probability=probability, **kw)

    def duplicate(self, probability: float = 1.0, **kw) -> "FaultPlan":
        """Deliver matching transfers twice (receiver must dedupe)."""
        return self._wire("duplicate", probability=probability, **kw)

    def delay_spike(self, delay: float, probability: float = 1.0,
                    **kw) -> "FaultPlan":
        """Hold matching packets in the NIC for ``delay`` extra seconds."""
        return self._wire("delay", delay=delay, probability=probability, **kw)

    def degrade(self, scale: float, probability: float = 1.0,
                **kw) -> "FaultPlan":
        """Multiply matching transfers' wire time by ``scale``."""
        return self._wire("degrade", scale=scale, probability=probability,
                          **kw)

    def crash(self, rank: int, at_time: Optional[float] = None,
              at_op: Optional[int] = None,
              reason: str = "injected crash") -> "FaultPlan":
        """Fail-stop ``rank`` at a time or at its nth wire operation."""
        self.rank_faults.append(RankFault(
            "crash", rank, at_time=at_time, at_op=at_op, reason=reason))
        return self

    def hang(self, rank: int, at_time: Optional[float] = None,
             at_op: Optional[int] = None,
             detect_after: Optional[float] = None,
             reason: str = "injected hang") -> "FaultPlan":
        """Silently stall ``rank``; optionally declare it failed later."""
        self.rank_faults.append(RankFault(
            "hang", rank, at_time=at_time, at_op=at_op,
            detect_after=detect_after, reason=reason))
        return self

    # -- canned schedules --------------------------------------------------

    @classmethod
    def random(cls, seed: int, nranks: int,
               drop_p: float = 0.02, corrupt_p: float = 0.01,
               duplicate_p: float = 0.01, delay_p: float = 0.01,
               delay: float = 2e-4, crash: bool = False) -> "FaultPlan":
        """A seeded random chaos schedule over ``nranks`` processes.

        Background probabilistic wire faults everywhere, plus (when
        ``crash``) one crash of a uniformly chosen non-root rank at a
        uniformly chosen early operation index.  Two calls with the same
        arguments build the identical plan.
        """
        rng = random.Random(seed)
        plan = cls(seed=seed)
        if drop_p > 0:
            plan.drop(probability=drop_p)
        if corrupt_p > 0:
            plan.corrupt(probability=corrupt_p)
        if duplicate_p > 0:
            plan.duplicate(probability=duplicate_p)
        if delay_p > 0:
            plan.delay_spike(delay=delay, probability=delay_p)
        if crash and nranks > 1:
            victim = rng.randrange(1, nranks)
            plan.crash(victim, at_op=rng.randrange(2, 12),
                       reason=f"chaos crash (seed {seed})")
        return plan

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        """One human-readable line per scheduled fault."""
        lines = []
        for r in self.wire_rules:
            where = f"{'*' if r.src is None else r.src}->" \
                    f"{'*' if r.dst is None else r.dst}"
            trig = f"nth={r.nth}" if r.nth is not None \
                else f"p={r.probability:g}"
            extra = ""
            if r.kind == "delay":
                extra = f" delay={r.delay:g}s"
            elif r.kind == "degrade":
                extra = f" scale={r.scale:g}x"
            lines.append(f"wire {r.kind} {where} {trig}{extra}")
        for f in self.rank_faults:
            trig = f"t={f.at_time:g}" if f.at_time is not None \
                else f"op={f.at_op}"
            lines.append(f"rank {f.kind} rank={f.rank} {trig}")
        return "\n".join(lines) if lines else "(empty plan)"

    def __bool__(self) -> bool:
        return bool(self.wire_rules or self.rank_faults)
