"""The fault injector: binds one :class:`FaultPlan` to one cluster.

Interception points (no application or algorithm code changes):

- **wire faults** -- :meth:`NetworkModel.transfer` consults
  :meth:`FaultInjector.on_wire` once per transfer attempt when
  ``net.fault_injector`` is set.  Timing faults (delay spike, NIC
  degradation) are applied by the network model itself; payload verdicts
  (drop / corrupt / duplicate) ride back on the
  :class:`repro.simtime.network.WireOutcome` and are *interpreted* by the
  reliable transport in :mod:`repro.mpi.comm` -- against the baseline
  fire-and-forget transport a dropped payload is simply lost, which is
  exactly the failure mode the reliable transport exists to mask,
- **rank faults** -- crashes and hangs are driven through
  :meth:`Cluster.fail_rank` / :meth:`Cluster.hang_rank`.  Time triggers are
  scheduled directly on the engine at install time; operation-count
  triggers are detected inside :meth:`on_wire` but *fired through*
  ``engine.schedule(0.0, ...)``: killing a generator from inside its own
  ``transfer`` frame would be re-entrant, so the kill always runs as its
  own zero-delay event.

Determinism: one private :class:`random.Random` seeded from ``plan.seed``
makes every probability draw reproducible; nth-match and per-rank op
counters are plain integers advanced in simulator order.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List

from repro.faults.plan import FaultPlan, RankFault
from repro.simtime.network import NO_FAULT, WireFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Cluster

__all__ = ["FaultInjector", "get_default_plan", "set_default_plan"]

#: process-global plan applied to every cluster constructed without an
#: explicit ``fault_plan`` (see :func:`set_default_plan`)
_DEFAULT_PLAN: FaultPlan | None = None


def set_default_plan(plan: FaultPlan | None) -> None:
    """Install (or, with None, clear) a process-wide default fault plan.

    While set, every :class:`repro.mpi.comm.Cluster` constructed *without*
    an explicit ``fault_plan`` installs an injector for this plan.  This is
    how ``python -m repro.bench --degrade`` uniformly slows the wire of
    clusters built many layers below the figure loops -- the seeded
    slowdown the CI perf-regression gate proves it can catch.  Always pair
    with a ``finally: set_default_plan(None)``.
    """
    global _DEFAULT_PLAN
    _DEFAULT_PLAN = plan


def get_default_plan() -> FaultPlan | None:
    """The process-wide default plan, or None (the usual case)."""
    return _DEFAULT_PLAN


class FaultInjector:
    """Applies a :class:`FaultPlan` to a :class:`Cluster` (see module doc)."""

    def __init__(self, plan: FaultPlan, cluster: "Cluster"):
        self.plan = plan
        self.cluster = cluster
        self._rng = random.Random(plan.seed)
        #: per-rule match counters (for ``nth`` triggers), rule-list order
        self._rule_matches: List[int] = [0] * len(plan.wire_rules)
        #: rank -> wire operations initiated (send side), for ``at_op``
        self._ops: Dict[int, int] = {}
        #: ``at_op`` faults not yet fired, in plan order
        self._pending_op_faults: List[RankFault] = [
            f for f in plan.rank_faults if f.at_op is not None
        ]
        #: faults injected so far, per kind (inspectable by the chaos harness
        #: without a profiler attached)
        self.counts: Dict[str, int] = {}
        self.injected = 0

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        """Attach to the cluster: hook the wire, schedule timed rank faults."""
        self.cluster.net.fault_injector = self
        engine = self.cluster.engine
        for f in self.plan.rank_faults:
            if f.at_time is None:
                continue
            engine.schedule(f.at_time, self._rank_fault_trigger(f))

    def _rank_fault_trigger(self, f: RankFault):
        def fire() -> None:
            self._count(f.kind)
            if f.kind == "crash":
                self.cluster.fail_rank(f.rank, f.reason)
            else:
                self.cluster.hang_rank(f.rank, detect_after=f.detect_after,
                                       reason=f.reason)
        return fire

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.injected += 1
        prof = self.cluster.profiler
        if prof.enabled:
            prof.count("repro_faults_injected_total",
                       labels={"kind": kind})

    # -- the wire hook -----------------------------------------------------

    def on_wire(self, src: int, dst: int, nbytes: int, tag: int,
                now: float) -> WireFault:
        """Verdict for one transfer attempt (called by the network model)."""
        # operation-count rank faults: counted on the initiating side
        if self._pending_op_faults:
            n = self._ops.get(src, 0) + 1
            self._ops[src] = n
            fired = None
            for f in self._pending_op_faults:
                if f.rank == src and n >= f.at_op:
                    fired = f
                    break
            if fired is not None:
                self._pending_op_faults.remove(fired)
                # never kill from inside the transfer frame (re-entrancy)
                self.cluster.engine.schedule(
                    0.0, self._rank_fault_trigger(fired))
        drop = corrupt = duplicate = False
        delay = 0.0
        scale = 1.0
        hit = False
        for i, rule in enumerate(self.plan.wire_rules):
            if not rule.matches(src, dst, nbytes, now):
                continue
            self._rule_matches[i] += 1
            if rule.nth is not None:
                fire = self._rule_matches[i] == rule.nth
            else:
                fire = (rule.probability >= 1.0
                        or self._rng.random() < rule.probability)
            if not fire:
                continue
            hit = True
            self._count(rule.kind)
            if rule.kind == "drop":
                drop = True
            elif rule.kind == "corrupt":
                corrupt = True
            elif rule.kind == "duplicate":
                duplicate = True
            elif rule.kind == "delay":
                delay += rule.delay
            elif rule.kind == "degrade":
                scale *= rule.scale
        if not hit:
            return NO_FAULT
        return WireFault(drop=drop, corrupt=corrupt, duplicate=duplicate,
                         delay=delay, scale=scale)
