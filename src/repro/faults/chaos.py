"""The chaos harness: seeded fault schedules + checked recovery invariants.

``python -m repro.faults chaos --seeds 1 2 3 4 5`` runs every scenario
below under each seed and fails loudly (exit code 1) when any invariant is
violated.  The scenarios and their invariants:

``fem_lossy`` / ``agv_lossy``
    The FEM Poisson solve / the nonuniform Allgatherv benchmark under a
    random background of message drops, corruption, duplication and delay
    spikes, with the reliable transport enabled.  **Invariant**: the
    application completes with results *identical* to the fault-free run
    of the same configuration (the transport masks every payload fault),
    and the retransmission count stays under the hard bound
    ``(max_retransmits - 1) x fault-free message count``.

``crash_allgatherv`` / ``crash_alltoallw``
    A crash injected while every registered algorithm of the collective is
    running.  **Invariant**: every surviving rank raises
    :class:`RankFailedError` naming the dead rank -- never a hang, never a
    :class:`SimulationDeadlock`, never a wrong answer silently returned.

``checkpoint_restart``
    A crash in the middle of a checkpointed CG solve.  **Invariant**: the
    survivors shrink, restart from the last checkpoint and converge to the
    same discretisation error as the fault-free solve.

``deadlock_diagnosis``
    A deliberately deadlocked program (satellite self-check).
    **Invariant**: the engine's :class:`SimulationDeadlock` carries a
    populated ``blocked`` payload naming each stuck process and what it
    waits on -- the debugging affordance the rest of the harness (and any
    user hitting a real deadlock) relies on.

``assembly_plan_disagree``
    Cached-assembly-plan reuse (``VEC_SUBSET_OFF_PROC_ENTRIES``) with one
    rank's stash growing beyond its recorded pattern.  **Invariant**:
    with guards disabled the disagreement is the documented deterministic
    deadlock (diagnosable ``blocked`` payload); with guards enabled the
    plan-signature agreement converts it into a uniform
    :class:`~repro.petsc.PlanMismatchError` on every rank; and in the
    fault-free control, cached assembly stays byte-identical to plan-free
    assembly while putting strictly fewer messages on the wire.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.mpi import Cluster, MPIConfig, RankFailedError
from repro.simtime.engine import SimulationDeadlock

__all__ = ["ChaosInvariantError", "ChaosRun", "ChaosReport", "run_chaos"]


class ChaosInvariantError(AssertionError):
    """A chaos invariant was violated."""


@dataclass
class ChaosRun:
    """Outcome of one scenario under one seed."""

    scenario: str
    seed: int
    ok: bool
    detail: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class ChaosReport:
    """All runs of one chaos session."""

    runs: List[ChaosRun] = field(default_factory=list)

    @property
    def failures(self) -> List[ChaosRun]:
        return [r for r in self.runs if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> str:
        return json.dumps(
            {"ok": self.ok, "runs": [asdict(r) for r in self.runs]},
            indent=2, sort_keys=True,
        )

    def summary(self) -> str:
        lines = []
        for r in self.runs:
            mark = "PASS" if r.ok else "FAIL"
            extra = f" -- {r.detail}" if (r.detail and not r.ok) else ""
            lines.append(f"[{mark}] {r.scenario} seed={r.seed}{extra}")
        lines.append(
            f"{len(self.runs) - len(self.failures)}/{len(self.runs)} passed"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# instrumentation helpers


def _counters(cluster: Cluster) -> Dict[str, float]:
    """Fault/transport counters for the report (profiler-backed)."""
    prof = cluster.profiler
    out: Dict[str, float] = {
        "messages_on_wire": float(cluster.net.messages_on_wire),
    }
    if not prof.enabled:
        return out
    for name in ("repro_faults_injected_total", "repro_retransmits_total",
                 "repro_checksum_failures_total",
                 "repro_rank_failures_total"):
        out[name] = prof.metrics.counter(name).total
    return out


def _observer(bucket: Dict):
    """App ``observe`` callback: attach a private profiler, keep handles."""
    def observe(cluster: Cluster) -> None:
        from repro.prof import Profiler
        bucket["cluster"] = cluster
        bucket["profiler"] = Profiler.attach(cluster)
    return observe


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ChaosInvariantError(message)


# ---------------------------------------------------------------------------
# scenarios


def _reliable_config() -> MPIConfig:
    return MPIConfig.optimized().with_(reliable_transport=True)


def _fem_lossy(seed: int, nprocs: int) -> Dict[str, float]:
    from repro.apps.fem_poisson import solve_poisson_fem

    cfg = _reliable_config()
    clean_bucket: Dict = {}
    clean = solve_poisson_fem(nprocs, n=10, config=cfg,
                              observe=_observer(clean_bucket))
    clean_counts = _counters(clean_bucket["cluster"])
    _require(clean_counts.get("repro_retransmits_total", 0) == 0,
             "fault-free reliable run performed retransmissions")

    plan = FaultPlan.random(seed, nprocs)
    bucket: Dict = {}
    res = solve_poisson_fem(nprocs, n=10, config=cfg, fault_plan=plan,
                            observe=_observer(bucket))
    counts = _counters(bucket["cluster"])

    _require(res.converged, "faulted solve did not converge")
    _require(res.iterations == clean.iterations,
             f"iteration count drifted: {res.iterations} != "
             f"{clean.iterations}")
    _require(res.error_max == clean.error_max,
             f"solution not byte-identical: error_max {res.error_max!r} "
             f"!= {clean.error_max!r}")
    max_r = cfg.max_retransmits
    bound = (max_r - 1) * clean_counts["messages_on_wire"]
    _require(counts.get("repro_retransmits_total", 0) <= bound,
             f"retransmissions {counts.get('repro_retransmits_total')} "
             f"exceed bound {bound}")
    return counts


def _agv_lossy(seed: int, nprocs: int) -> Dict[str, float]:
    from repro.apps.allgatherv_bench import allgatherv_benchmark

    cfg = _reliable_config()
    clean_bucket: Dict = {}
    clean = allgatherv_benchmark(nprocs, 512, cfg,
                                 observe=_observer(clean_bucket))
    clean_counts = _counters(clean_bucket["cluster"])
    _require(clean.correct, "fault-free benchmark produced wrong data")
    _require(clean_counts.get("repro_retransmits_total", 0) == 0,
             "fault-free reliable run performed retransmissions")

    plan = FaultPlan.random(seed, nprocs)
    bucket: Dict = {}
    res = allgatherv_benchmark(nprocs, 512, cfg, fault_plan=plan,
                               observe=_observer(bucket))
    counts = _counters(bucket["cluster"])
    _require(res.correct,
             "gathered data corrupted despite reliable transport")
    bound = (cfg.max_retransmits - 1) * clean_counts["messages_on_wire"]
    _require(counts.get("repro_retransmits_total", 0) <= bound,
             f"retransmissions exceed bound {bound}")
    return counts


def _crash_collective(seed: int, nprocs: int, collective: str) -> Dict[str, float]:
    """Crash one rank inside every registered algorithm of ``collective``."""
    from repro.mpi.algorithms import REGISTRY
    from repro.prof import Profiler

    counts: Dict[str, float] = {}
    for algorithm in REGISTRY.names(collective):
        n = nprocs
        if algorithm == "recursive_doubling" and n & (n - 1):
            # the algorithm only applies to power-of-two sizes
            n = 1 << (n.bit_length() - 1)
        victim = 1 + seed % (n - 1)
        plan = FaultPlan(seed=seed).crash(victim, at_op=2 + seed % 6,
                                          reason=f"chaos {collective}")
        cluster = Cluster(n, config=MPIConfig.optimized(),
                          fault_plan=plan)
        Profiler.attach(cluster)

        if collective == "allgatherv":
            counts_v = [3] * n
            counts_v[0] = 257  # outlier pattern exercises adaptive paths
            total = sum(counts_v)

            def main(comm):
                send = np.full(counts_v[comm.rank], float(comm.rank))
                recv = np.zeros(total)
                for _ in range(4):
                    yield from comm.allgatherv(send, recv, counts_v,
                                               algorithm=algorithm)
                return True
        else:
            from repro.datatypes import DOUBLE, TypedBuffer

            def main(comm):
                n = comm.size
                count = 32
                sendbuf = np.full((n, count), float(comm.rank))
                recvbuf = np.zeros((n, count))
                sendspecs = [
                    TypedBuffer(sendbuf, DOUBLE, count,
                                offset_bytes=p * count * 8)
                    for p in range(n)
                ]
                recvspecs = [
                    TypedBuffer(recvbuf, DOUBLE, count,
                                offset_bytes=p * count * 8)
                    for p in range(n)
                ]
                for _ in range(4):
                    yield from comm.alltoallw(sendspecs, recvspecs,
                                              algorithm=algorithm)
                return True

        try:
            outcomes = cluster.run(main, return_exceptions=True)
        except SimulationDeadlock as exc:
            raise ChaosInvariantError(
                f"{collective}/{algorithm}: deadlock instead of failure "
                f"propagation; blocked={exc.blocked!r}"
            ) from None
        for rank, out in enumerate(outcomes):
            if rank == victim:
                _require(isinstance(out, RankFailedError),
                         f"{collective}/{algorithm}: victim outcome "
                         f"{out!r}")
                continue
            _require(isinstance(out, RankFailedError),
                     f"{collective}/{algorithm}: rank {rank} got {out!r} "
                     "instead of RankFailedError")
            _require(out.rank == victim,
                     f"{collective}/{algorithm}: rank {rank} blames rank "
                     f"{out.rank}, victim was {victim}")
        run_counts = _counters(cluster)
        _require(run_counts.get("repro_rank_failures_total", 0) >= 1,
                 f"{collective}/{algorithm}: failure not counted")
        for k, v in run_counts.items():
            counts[f"{algorithm}.{k}"] = v
    return counts


def _checkpoint_restart(seed: int, nprocs: int) -> Dict[str, float]:
    from repro.apps.fem_poisson import solve_poisson_fem

    clean = solve_poisson_fem(nprocs, n=10)
    victim = 1 + seed % (nprocs - 1)
    plan = FaultPlan(seed=seed).crash(
        victim, at_time=clean.simulated_time * 0.5,
        reason="chaos crash mid-solve")
    bucket: Dict = {}
    res = solve_poisson_fem(nprocs, n=10, fault_plan=plan,
                            observe=_observer(bucket), checkpoint_every=5)
    counts = _counters(bucket["cluster"])
    _require(res.converged, "restarted solve did not converge")
    _require(abs(res.error_max - clean.error_max) < 1e-6,
             f"restarted solve drifted: {res.error_max} vs "
             f"{clean.error_max}")
    _require(counts.get("repro_rank_failures_total", 0) == 1,
             "expected exactly one rank failure")
    return counts


def _deadlock_diagnosis(seed: int, nprocs: int) -> Dict[str, float]:
    cluster = Cluster(2, config=MPIConfig.optimized())

    def main(comm):
        # both ranks receive, nobody sends: a textbook deadlock
        buf = np.zeros(1)
        yield from comm.recv(buf, source=1 - comm.rank)

    try:
        cluster.run(main)
    except SimulationDeadlock as exc:
        _require(bool(exc.blocked), "deadlock reported without a payload")
        names = [name for name, _wait in exc.blocked]
        _require(any(name.startswith("rank") for name in names),
                 f"blocked payload does not name the ranks: {exc.blocked!r}")
        for name, wait in exc.blocked:
            _require(bool(wait),
                     f"process {name!r} blocked on an unnamed target")
        return {"blocked": float(len(exc.blocked))}
    raise ChaosInvariantError("deadlocked program terminated cleanly")


def _assembly_plan_disagree(seed: int, nprocs: int) -> Dict[str, float]:
    """``VEC_SUBSET_OFF_PROC_ENTRIES`` reuse with ranks disagreeing.

    One rank's stash pattern grows beyond its cached plan from round
    ``1`` on while every other rank still conforms.  Unguarded reuse
    then mixes cached point-to-point with fresh discovery -- the
    documented PETSc deadlock.  Three invariants:

    1. guards off: a deterministic :class:`SimulationDeadlock` whose
       ``blocked`` payload names every stuck rank (never a wrong
       answer),
    2. guards on: the plan-signature agreement turns the same program
       into a *uniform* :class:`PlanMismatchError` on **all** ranks,
    3. fault-free control: cached assembly is byte-identical to
       plan-free assembly and puts strictly fewer messages on the wire.
    """
    from repro.petsc import Layout, PlanMismatchError, Vec
    from repro.prof import Profiler

    n = nprocs
    size_g = 4 * n
    victim = 1 + seed % (n - 1)

    def program(diverge: bool, guard: bool, rounds: int):
        def main(comm):
            lay = Layout(comm.size, size_g)
            v = Vec(comm, lay)
            v.set_option("subset_off_proc_entries", guard=guard)
            chunk = size_g // comm.size
            base = [((comm.rank + 1) % comm.size) * chunk]
            for rnd in range(rounds):
                tgt = list(base)
                if diverge and comm.rank == victim and rnd >= 1:
                    tgt.append(((comm.rank + 3) % comm.size) * chunk + 2)
                v.set_values(np.asarray(tgt, dtype=np.int64),
                             np.full(len(tgt), float(comm.rank + rnd)),
                             mode="add")
                yield from v.assemble()
            return v.local.copy()
        return main

    # -- fault-free control: cached vs plan-free, byte-identical, fewer
    # sends.  Six rounds: the guard agreement and the one-time pattern
    # fingerprint cost messages too, and amortise after ~4 cached rounds.
    control_rounds = 6
    cached_cluster = Cluster(n, config=MPIConfig.optimized())
    Profiler.attach(cached_cluster)
    cached = cached_cluster.run(program(diverge=False, guard=True,
                                        rounds=control_rounds))

    def plain_main(comm):
        lay = Layout(comm.size, size_g)
        v = Vec(comm, lay)
        chunk = size_g // comm.size
        for rnd in range(control_rounds):
            v.set_values(np.asarray([((comm.rank + 1) % comm.size) * chunk],
                                    dtype=np.int64),
                         np.asarray([float(comm.rank + rnd)]), mode="add")
            yield from v.assemble()
        return v.local.copy()

    plain_cluster = Cluster(n, config=MPIConfig.optimized())
    Profiler.attach(plain_cluster)
    plain = plain_cluster.run(plain_main)
    for rank, (a, b) in enumerate(zip(cached, plain)):
        _require(np.array_equal(a, b),
                 f"cached assembly diverged from plan-free on rank {rank}")
    cached_msgs = cached_cluster.net.messages_on_wire
    plain_msgs = plain_cluster.net.messages_on_wire
    _require(cached_msgs < plain_msgs,
             f"plan reuse did not reduce traffic: {cached_msgs} cached vs "
             f"{plain_msgs} plan-free messages")

    # -- guards on: uniform PlanMismatchError on every rank
    guarded = Cluster(n, config=MPIConfig.optimized())
    outcomes = guarded.run(program(diverge=True, guard=True, rounds=3),
                           return_exceptions=True)
    for rank, out in enumerate(outcomes):
        _require(isinstance(out, PlanMismatchError),
                 f"guarded rank {rank} got {out!r} instead of "
                 "PlanMismatchError")

    # -- guards off: the documented deadlock, with a diagnosable payload
    unguarded = Cluster(n, config=MPIConfig.optimized())
    try:
        unguarded.run(program(diverge=True, guard=False, rounds=3),
                      return_exceptions=True)
    except SimulationDeadlock as exc:
        _require(bool(exc.blocked),
                 "unguarded disagreement deadlocked without a payload")
        for name, wait in exc.blocked:
            _require(bool(wait),
                     f"process {name!r} blocked on an unnamed target")
        return {
            "messages_cached": float(cached_msgs),
            "messages_plan_free": float(plain_msgs),
            "blocked": float(len(exc.blocked)),
        }
    raise ChaosInvariantError(
        "unguarded plan disagreement completed instead of deadlocking")


SCENARIOS: Dict[str, Callable[[int, int], Dict[str, float]]] = {
    "fem_lossy": _fem_lossy,
    "agv_lossy": _agv_lossy,
    "crash_allgatherv": lambda s, n: _crash_collective(s, n, "allgatherv"),
    "crash_alltoallw": lambda s, n: _crash_collective(s, n, "alltoallw"),
    "checkpoint_restart": _checkpoint_restart,
    "deadlock_diagnosis": _deadlock_diagnosis,
    "assembly_plan_disagree": _assembly_plan_disagree,
}


def run_chaos(seeds=(1, 2, 3, 4, 5), nprocs: int = 8,
              scenarios: Optional[List[str]] = None,
              log: Optional[Callable[[str], None]] = None) -> ChaosReport:
    """Run every scenario under every seed; returns a :class:`ChaosReport`."""
    report = ChaosReport()
    names = scenarios or list(SCENARIOS)
    for name in names:
        fn = SCENARIOS[name]
        for seed in seeds:
            try:
                metrics = fn(seed, nprocs)
                run = ChaosRun(name, seed, True, metrics=metrics or {})
            except ChaosInvariantError as exc:
                run = ChaosRun(name, seed, False, detail=str(exc))
            except SimulationDeadlock as exc:
                run = ChaosRun(
                    name, seed, False,
                    detail=f"unexpected deadlock; blocked={exc.blocked!r}")
            except Exception as exc:  # noqa: BLE001 - report, don't mask
                run = ChaosRun(name, seed, False,
                               detail=f"{type(exc).__name__}: {exc}")
            report.runs.append(run)
            if log is not None:
                mark = "PASS" if run.ok else "FAIL"
                log(f"[{mark}] {name} seed={seed}"
                    + (f" -- {run.detail}" if run.detail else ""))
    return report
