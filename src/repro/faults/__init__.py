"""Deterministic fault injection and chaos testing for the simulator.

The package answers the robustness question the paper's stack raises but
cannot test on real hardware: *what happens to the optimized communication
algorithms when the network misbehaves or a rank dies mid-collective?*

Three layers:

- :mod:`repro.faults.plan` -- a declarative, seeded :class:`FaultPlan` DSL
  describing *what* goes wrong (message drop / corruption / duplication,
  delay spikes, NIC degradation, rank crashes and hangs) and *when*
  (time window, nth matching transfer, nth operation of a rank),
- :mod:`repro.faults.injector` -- the :class:`FaultInjector` that binds a
  plan to one :class:`repro.mpi.comm.Cluster`, intercepting
  :meth:`repro.simtime.network.NetworkModel.transfer` and scheduling rank
  faults on the engine without touching any call site,
- :mod:`repro.faults.chaos` -- the invariant-checking chaos harness
  (``python -m repro.faults chaos``) that runs the example applications
  under seeded fault schedules and asserts the recovery guarantees
  documented in ``docs/FAULTS.md``.

A cluster constructed without a ``fault_plan`` never imports this package's
machinery into its hot path: the fault-free build is byte- and
schedule-identical to the pre-fault simulator.
"""

from repro.faults.plan import FaultPlan, RankFault, WireRule
from repro.faults.injector import FaultInjector, get_default_plan, set_default_plan
from repro.faults.chaos import ChaosInvariantError, ChaosReport, ChaosRun, run_chaos

__all__ = [
    "ChaosInvariantError",
    "ChaosReport",
    "ChaosRun",
    "FaultInjector",
    "FaultPlan",
    "RankFault",
    "WireRule",
    "get_default_plan",
    "run_chaos",
    "set_default_plan",
]
