"""Trace export and breakdown attribution (``prof.export``).

Two consumers of a :class:`repro.prof.Profiler`'s data:

- :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event JSON format (load in ``chrome://tracing`` or Perfetto).  One
  process per profiled cluster, one thread ("track") per rank plus
  auxiliary ``io``/``wire`` lanes, so the interleaving the paper reasons
  about (packing overlapping the wire, small peers stuck behind large
  ones) is directly visible.

- :func:`breakdown` -- a Fig. 13-style *attribution* report: each
  collective invocation's elapsed simulated time, per rank, decomposed
  into ``pack`` (datatype processing: pack/search/look-ahead/unpack),
  ``compute`` (other CPU), ``wire`` (transfer occupancy not hidden behind
  CPU), and ``wait`` (idle: blocked on peers).  The decomposition uses
  interval-union arithmetic, so the four components sum *exactly* to the
  elapsed time of every row.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.prof.spans import Span

#: ledger/CPU-span names attributed to datatype processing
PACK_NAMES = frozenset({"pack", "search", "lookahead", "unpack"})

Interval = Tuple[float, float]


# -- interval arithmetic -----------------------------------------------------

def _union(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge intervals into a disjoint, sorted union."""
    out: List[Interval] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if out and start <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return out

def _length(intervals: Sequence[Interval]) -> float:
    return sum(e - s for s, e in intervals)

def _clip(intervals: Iterable[Interval], lo: float, hi: float) -> List[Interval]:
    return [(max(s, lo), min(e, hi))
            for s, e in intervals if min(e, hi) > max(s, lo)]

def _subtract(intervals: Sequence[Interval], holes: Sequence[Interval]) -> List[Interval]:
    """``union(intervals) \\ union(holes)`` (both must be disjoint unions)."""
    out: List[Interval] = []
    for start, end in intervals:
        pos = start
        for hs, he in holes:
            if he <= pos:
                continue
            if hs >= end:
                break
            if hs > pos:
                out.append((pos, hs))
            pos = max(pos, he)
            if pos >= end:
                break
        if pos < end:
            out.append((pos, end))
    return out


# -- breakdown attribution ---------------------------------------------------

def breakdown(profiler, category: str = "collective") -> List[Dict[str, Any]]:
    """Per-(invocation, rank) wait-vs-transfer attribution rows.

    Every span of ``category`` becomes one row::

        {"op", "rank", "t_start", "elapsed",
         "pack", "compute", "wire", "wait", "attrs"}

    with ``pack + compute + wire + wait == elapsed`` exactly:

    - ``pack``    -- union of dtype CPU spans (pack/search/lookahead/unpack)
      on this rank inside the window,
    - ``compute`` -- union of remaining CPU spans, minus time already
      counted as pack,
    - ``wire``    -- union of wire transfers touching this rank, minus time
      hidden behind CPU (overlap is attributed to the CPU phase -- the
      engine's whole point is overlapping packing with the wire),
    - ``wait``    -- the residual: blocked on peers with nothing local
      happening (the skew/serialisation cost of sections 3.2 and 4.2).
    """
    tracer = profiler.tracer
    transfers = getattr(profiler, "transfers", [])
    targets = [s for s in tracer.spans if s.category == category and not s.open]
    if not targets:
        return []

    # pre-index CPU spans and transfers by rank
    cpu_by_rank: Dict[int, List[Span]] = {}
    for s in tracer.spans:
        if s.category == "cpu" and not s.open:
            cpu_by_rank.setdefault(s.rank, []).append(s)
    wire_by_rank: Dict[int, List[Interval]] = {}
    for ev in transfers:
        wire_by_rank.setdefault(ev.src, []).append((ev.t_start, ev.t_end))
        if ev.dst != ev.src:
            wire_by_rank.setdefault(ev.dst, []).append((ev.t_start, ev.t_end))

    rows: List[Dict[str, Any]] = []
    for span in targets:
        rank = span.rank
        lo, hi = span.t_start, span.t_end
        elapsed = hi - lo
        cpu_spans = cpu_by_rank.get(rank, [])
        pack_iv = _union(_clip(((s.t_start, s.t_end) for s in cpu_spans
                                if s.name in PACK_NAMES), lo, hi))
        comp_iv = _union(_clip(((s.t_start, s.t_end) for s in cpu_spans
                                if s.name not in PACK_NAMES), lo, hi))
        wire_iv = _union(_clip(wire_by_rank.get(rank, ()), lo, hi))
        pack = _length(pack_iv)
        compute = _length(_subtract(comp_iv, pack_iv))
        cpu_iv = _union(pack_iv + comp_iv)
        wire = _length(_subtract(wire_iv, cpu_iv))
        busy = _length(_union(cpu_iv + wire_iv))
        wait = max(0.0, elapsed - busy)
        rows.append({
            "op": span.name,
            "rank": rank,
            "t_start": lo,
            "elapsed": elapsed,
            "pack": pack,
            "compute": compute,
            "wire": wire,
            "wait": wait,
            "attrs": dict(span.attrs),
        })
    return rows


def aggregate_breakdown(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Sum attribution rows per op: totals plus percentage shares."""
    agg: Dict[str, Dict[str, float]] = {}
    for row in rows:
        a = agg.setdefault(row["op"], {
            "calls": 0, "elapsed": 0.0, "pack": 0.0, "compute": 0.0,
            "wire": 0.0, "wait": 0.0,
        })
        a["calls"] += 1
        for k in ("elapsed", "pack", "compute", "wire", "wait"):
            a[k] += row[k]
    out = []
    for op in sorted(agg):
        a = agg[op]
        total = a["elapsed"] or 1.0
        out.append({
            "op": op, "calls": a["calls"], "elapsed": a["elapsed"],
            "pack": a["pack"], "compute": a["compute"],
            "wire": a["wire"], "wait": a["wait"],
            "pack_pct": 100.0 * a["pack"] / total,
            "compute_pct": 100.0 * a["compute"] / total,
            "wire_pct": 100.0 * a["wire"] / total,
            "wait_pct": 100.0 * a["wait"] / total,
        })
    return out


def render_breakdown(rows: Iterable[Dict[str, Any]]) -> str:
    """A Fig. 13-style text table from :func:`aggregate_breakdown` rows."""
    agg = aggregate_breakdown(rows)
    header = f"{'op':<22} {'calls':>6} {'elapsed(s)':>12} " \
             f"{'pack%':>7} {'comp%':>7} {'wire%':>7} {'wait%':>7}"
    lines = [header, "-" * len(header)]
    for a in agg:
        lines.append(
            f"{a['op']:<22} {a['calls']:>6} {a['elapsed']:>12.3e} "
            f"{a['pack_pct']:>7.1f} {a['compute_pct']:>7.1f} "
            f"{a['wire_pct']:>7.1f} {a['wait_pct']:>7.1f}"
        )
    return "\n".join(lines)


def validate_breakdown(rows: Iterable[Dict[str, Any]], rel_tol: float = 0.01) -> bool:
    """True iff every row's components sum to its elapsed time within
    ``rel_tol`` (the acceptance bound is 1%)."""
    for row in rows:
        total = row["pack"] + row["compute"] + row["wire"] + row["wait"]
        if abs(total - row["elapsed"]) > rel_tol * max(row["elapsed"], 1e-30):
            return False
    return True


# -- Chrome trace-event JSON -------------------------------------------------

def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace(profilers, time_scale: float = 1e6) -> Dict[str, Any]:
    """The Chrome trace-event JSON object for one or more profilers.

    Timestamps are simulated seconds scaled by ``time_scale`` (default:
    microseconds, the format's native unit).  Each profiler becomes a
    process; each span track becomes a named thread.
    """
    if not isinstance(profilers, (list, tuple)):
        profilers = [profilers]
    events: List[Dict[str, Any]] = []
    for pid, prof in enumerate(profilers):
        tracer = prof.tracer
        tracks = tracer.tracks()
        wire_tracks = sorted({("wire", ev.src) for ev in getattr(prof, "transfers", [])})
        tids: Dict[Any, int] = {}
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": getattr(prof, "label", None) or f"cluster {pid}"},
        })
        for track in tracks:
            tids[track] = len(tids)
            rank, lane = track
            label = f"rank {rank}" if lane == "main" else f"rank {rank} [{lane}]"
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[track], "args": {"name": label},
            })
        for wt in wire_tracks:
            tids[wt] = len(tids)
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[wt], "args": {"name": f"wire from rank {wt[1]}"},
            })
        for span in tracer.spans:
            if span.open:
                continue
            events.append({
                "ph": "X", "name": span.name, "cat": span.category,
                "pid": pid, "tid": tids[span.track],
                "ts": span.t_start * time_scale,
                "dur": span.duration * time_scale,
                "args": _json_safe(span.attrs),
            })
        for span in tracer.instants:
            events.append({
                "ph": "i", "s": "t", "name": span.name, "cat": span.category,
                "pid": pid, "tid": tids.get(span.track, 0),
                "ts": span.t_start * time_scale,
                "args": _json_safe(span.attrs),
            })
        for ev in getattr(prof, "transfers", []):
            args = {"nbytes": ev.nbytes, "tag": ev.tag}
            if getattr(ev, "msg_id", None) is not None:
                args["msg_id"] = ev.msg_id
            events.append({
                "ph": "X", "name": f"xfer {ev.src}->{ev.dst}", "cat": "wire",
                "pid": pid, "tid": tids[("wire", ev.src)],
                "ts": ev.t_start * time_scale,
                "dur": (ev.t_end - ev.t_start) * time_scale,
                "args": args,
            })
        events.extend(_flow_events(prof, pid, tids, time_scale))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _flow_events(prof, pid: int, tids: Dict[Any, int],
                 time_scale: float) -> List[Dict[str, Any]]:
    """Flow events (``ph: "s"``/``"t"``/``"f"``) tying each message's send
    span to its wire transfers and receive-side landing.

    Every p2p message carries a causal ``msg_id`` (threaded through
    ``mpi/comm.py`` / ``simtime/network.py``), so Perfetto can draw the
    arrow from the ``isend`` span through the wire chunk(s) to the
    receiver's unpack (or, for contiguous payloads, the arrival point on
    the receiver's main track).
    """
    tracer = prof.tracer
    send_spans: Dict[int, Span] = {}
    unpack_spans: Dict[int, Span] = {}
    for span in tracer.spans:
        if span.open:
            continue
        mid = span.attrs.get("msg_id")
        if mid is None:
            continue
        if span.category == "p2p":
            send_spans.setdefault(mid, span)
        elif span.category == "cpu" and span.name == "unpack":
            unpack_spans.setdefault(mid, span)
    chunks: Dict[int, List[Any]] = {}
    for ev in getattr(prof, "transfers", []):
        mid = getattr(ev, "msg_id", None)
        if mid is not None and ev.src != ev.dst:
            chunks.setdefault(mid, []).append(ev)

    events: List[Dict[str, Any]] = []
    for mid in sorted(chunks):
        evs = sorted(chunks[mid], key=lambda e: e.t_start)
        # under the reliable transport the zero-byte ack rides the same
        # msg_id in the reverse direction; the payload direction is the
        # first chunk's
        src, dst = evs[0].src, evs[0].dst
        evs = [e for e in evs if e.src == src and e.dst == dst]
        fid = f"msg{mid}"
        send = send_spans.get(mid)
        if send is not None:
            start_tid, start_ts = tids.get(send.track, 0), send.t_start
        else:
            start_tid = tids.get(("wire", src), 0)
            start_ts = evs[0].t_start
        events.append({
            "ph": "s", "id": fid, "name": "msg", "cat": "flow",
            "pid": pid, "tid": start_tid, "ts": start_ts * time_scale,
        })
        events.append({
            "ph": "t", "id": fid, "name": "msg", "cat": "flow",
            "pid": pid, "tid": tids.get(("wire", src), 0),
            "ts": evs[0].t_start * time_scale,
        })
        unpack = unpack_spans.get(mid)
        if unpack is not None:
            end_tid, end_ts = tids.get(unpack.track, 0), unpack.t_start
        else:
            end_tid = tids.get((dst, "main"), 0)
            end_ts = evs[-1].t_end
        events.append({
            "ph": "f", "bp": "e", "id": fid, "name": "msg", "cat": "flow",
            "pid": pid, "tid": end_tid, "ts": end_ts * time_scale,
        })
    return events


def write_chrome_trace(path: str, profilers) -> Dict[str, Any]:
    """Serialise :func:`chrome_trace` to ``path``; returns the object."""
    obj = chrome_trace(profilers)
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj


def wait_for_peers_report(rows: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Skew summary across ranks per op: who idles behind whom.

    For each op, reports min/max/mean wait share across ranks -- the
    quantity the paper's Fig. 15 skew discussion attributes to zero-byte
    synchronisation and serialized large blocks.
    """
    per_op: Dict[str, List[float]] = {}
    for row in rows:
        share = row["wait"] / row["elapsed"] if row["elapsed"] > 0 else 0.0
        per_op.setdefault(row["op"], []).append(share)
    out = {}
    for op, shares in sorted(per_op.items()):
        out[op] = {
            "rows": len(shares),
            "min_wait_share": min(shares),
            "max_wait_share": max(shares),
            "mean_wait_share": sum(shares) / len(shares),
        }
    return out


__all__ = [
    "PACK_NAMES",
    "aggregate_breakdown",
    "breakdown",
    "chrome_trace",
    "render_breakdown",
    "validate_breakdown",
    "wait_for_peers_report",
    "write_chrome_trace",
]
