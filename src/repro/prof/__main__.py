"""CLI: verify the metric-name catalogue never drifts.

Usage::

    python -m repro.prof check-catalogue [--docs docs/OBSERVABILITY.md]
                                         [--json BENCH.json ...]

Checks, failing with exit code 1 on any drift:

1. every metric name in :data:`repro.prof.metrics.CATALOGUE` appears
   (backtick-quoted) in the documentation, and the documentation mentions
   no ``repro_*`` metric that is not catalogued;
2. for each ``--json`` bench artifact, every metric name it recorded is in
   the catalogue.

CI runs this against the profiled bench-smoke artifact so an
instrumentation rename cannot land without its documentation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro.prof.metrics import CATALOGUE

_METRIC_RE = re.compile(r"`(repro_[a-z0-9_]+)`")
#: suffix forms Prometheus renders for histograms; not independent names
_DERIVED_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_name(name: str) -> str:
    for suffix in _DERIVED_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in CATALOGUE:
            return name[: -len(suffix)]
    return name


def check_docs(path: str) -> list[str]:
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        return [f"cannot read docs file {path}: {exc}"]
    documented = {_base_name(m) for m in _METRIC_RE.findall(text)}
    problems = []
    for name in sorted(set(CATALOGUE) - documented):
        problems.append(f"{path}: catalogued metric `{name}` is not documented")
    for name in sorted(documented - set(CATALOGUE)):
        problems.append(f"{path}: documented metric `{name}` is not in the catalogue")
    return problems


def check_bench_json(path: str) -> list[str]:
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read bench artifact {path}: {exc}"]
    profile = report.get("profile") or {}
    emitted = set(profile.get("metrics") or {})
    for deltas in (profile.get("row_metrics") or {}).values():
        for delta in deltas:
            emitted.update(delta)
    problems = []
    for name in sorted(emitted):
        if _base_name(name) not in CATALOGUE:
            problems.append(
                f"{path}: emitted metric `{name}` is not in the catalogue"
            )
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro.prof")
    sub = parser.add_subparsers(dest="command", required=True)
    chk = sub.add_parser("check-catalogue",
                         help="verify metric names match the documentation")
    chk.add_argument("--docs", default="docs/OBSERVABILITY.md",
                     help="documentation file to check against")
    chk.add_argument("--json", nargs="*", default=[],
                     help="bench JSON artifact(s) whose metrics must be catalogued")
    args = parser.parse_args(argv)

    problems = check_docs(args.docs)
    for path in args.json:
        problems.extend(check_bench_json(path))
    for p in problems:
        print(f"DRIFT: {p}")
    if problems:
        print(f"{len(problems)} catalogue drift problem(s)")
        return 1
    print(f"catalogue ok: {len(CATALOGUE)} metric(s) consistent with {args.docs}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
