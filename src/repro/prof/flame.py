"""Collapsed-stack flamegraph export (``prof.flame``).

Folds the tracer's span trees into the collapsed-stack text format that
``flamegraph.pl`` / speedscope / Perfetto's "import folded" all consume:
one line per unique stack, ``frame;frame;frame weight``, weights in
integer microseconds of *self* simulated time (a span's duration minus the
time covered by its children on the same track).

Two flavours:

- :func:`collapsed_stacks` -- the whole run: every track's span tree,
  rooted at ``rank N`` (or ``rank N [lane]``) frames, so the flamegraph
  shows where each rank's simulated time went (``allgatherv → phase →
  pack``, ...),
- :func:`critical_stacks` -- only the critical path
  (:mod:`repro.prof.critical`): frames are ``rank → op → category``,
  weighted by time on the path, so the widest frame is literally the
  answer to "what should I optimise first?".
"""

from __future__ import annotations

from typing import Dict, List

#: weights are integer microseconds (the collapsed format wants integers)
TIME_SCALE = 1e6


def _track_label(track) -> str:
    rank, lane = track
    return f"rank {rank}" if lane == "main" else f"rank {rank} [{lane}]"


def collapsed_stacks(profilers, time_scale: float = TIME_SCALE) -> Dict[str, int]:
    """``{collapsed stack: weight}`` over every closed span of every profiler.

    Each span contributes its *self* time (duration minus the union of its
    children's durations; children never overlap each other because spans
    on one track nest).  Zero-weight stacks are dropped.  Deterministic:
    insertion follows recording order, weights are exact integer rounding.
    """
    if not isinstance(profilers, (list, tuple)):
        profilers = [profilers]
    stacks: Dict[str, int] = {}
    for prof in profilers:
        tracer = prof.tracer
        spans = [s for s in tracer.spans if not s.open]
        by_id = {s.id: s for s in spans}
        child_time: Dict[int, float] = {}
        for s in spans:
            if s.parent is not None and s.parent in by_id:
                child_time[s.parent] = child_time.get(s.parent, 0.0) + s.duration

        def stack_of(span) -> str:
            frames: List[str] = []
            node = span
            while node is not None:
                frames.append(node.name)
                node = by_id.get(node.parent) if node.parent is not None else None
            frames.append(_track_label(span.track))
            return ";".join(reversed(frames))

        for s in spans:
            self_us = round((s.duration - child_time.get(s.id, 0.0)) * time_scale)
            if self_us <= 0:
                continue
            key = stack_of(s)
            stacks[key] = stacks.get(key, 0) + self_us
    return stacks


def critical_stacks(crit, time_scale: float = TIME_SCALE) -> Dict[str, int]:
    """Collapsed stacks of a :class:`repro.prof.critical.CriticalPath`:
    ``rank N;op;category`` weighted by time on the path."""
    stacks: Dict[str, int] = {}
    for seg in crit.segments:
        us = round(seg.duration * time_scale)
        if us <= 0:
            continue
        key = f"rank {seg.rank};{seg.op};{seg.category}"
        stacks[key] = stacks.get(key, 0) + us
    return stacks


def render_collapsed(stacks: Dict[str, int]) -> str:
    """The collapsed-stack text: one ``stack weight`` line, sorted."""
    return "\n".join(f"{stack} {weight}"
                     for stack, weight in sorted(stacks.items()))


def write_flamegraph(path: str, profilers,
                     time_scale: float = TIME_SCALE) -> Dict[str, int]:
    """Write :func:`collapsed_stacks` of ``profilers`` to ``path``.

    Feed the output to ``flamegraph.pl`` or paste into speedscope;
    returns the stack dict.
    """
    stacks = collapsed_stacks(profilers, time_scale=time_scale)
    text = render_collapsed(stacks)
    with open(path, "w") as fh:
        fh.write(text + ("\n" if text else ""))
    return stacks


__all__ = [
    "TIME_SCALE",
    "collapsed_stacks",
    "critical_stacks",
    "render_collapsed",
    "write_flamegraph",
]
