"""Causal critical-path analysis (``prof.critical``).

The paper's argument is an *attribution* exercise: it explains end-to-end
slowdowns by naming the rank and the operation responsible (the serialised
outlier block of section 3.2, the ring hop stuck behind one large peer, the
zero-byte synchronisation skew).  :func:`critical_path` answers the same
question for any profiled run: *which rank's which work made the run as
long as it was?*

The analysis walks a causal event graph built from data the
:class:`repro.prof.Profiler` already records:

- **program-order edges** within each rank: the CPU spans (pack / search /
  look-ahead / unpack / compute) stamped by the instrumented stack,
- **cross-rank message edges**: every wire transfer carries the causal
  ``msg_id`` assigned by the p2p layer, so an arrival that ended a rank's
  wait hands the walk over to the *sender* at the moment the payload
  entered the wire,
- **collective entry/exit edges** arise for free: collectives are built
  from the same p2p transfers (including zero-byte synchronisations, which
  still pay ``alpha`` and therefore appear as wire intervals).

Starting from the event that ends the run, the walk moves backwards in
time, at every step asking "what was the last thing that had to finish for
this rank to be here?": a local busy interval (attributed to ``pack`` or
``compute``), an incoming transfer (attributed to ``wire``, then *jump* to
the sender), or nothing (attributed to ``wait`` -- genuine idling that no
local or remote event explains, e.g. blocked behind a port held by third
parties).  The resulting segments tile ``[0, makespan]`` exactly, so

    sum(seg.duration) == makespan

holds by construction -- the identity the acceptance tests pin.  Straggler
ranks are flagged by pointing the paper's section 4.2.1 outlier detector
(Floyd-Rivest ``k_select`` over a value set, Eq. 1) at per-rank
*time-on-critical-path* instead of communication volume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.prof.export import PACK_NAMES

#: segment categories, same vocabulary as :func:`repro.prof.export.breakdown`
SEGMENT_CATEGORIES = ("pack", "compute", "wire", "wait")

#: span categories eligible as "source call sites" for attribution
_OP_CATEGORIES = ("collective", "petsc", "solver", "p2p")

#: default outlier parameters (mirrors CostModel.outlier_* for volumes)
DEFAULT_OUTLIER_FRACTION = 0.25
DEFAULT_OUTLIER_THRESHOLD = 4.0


@dataclass(frozen=True)
class Segment:
    """One stretch of the critical path: ``[t_start, t_end]`` on ``rank``.

    ``category`` is one of :data:`SEGMENT_CATEGORIES`; ``name`` names the
    concrete activity (the CPU span name, ``xfer src->dst``, or ``wait``);
    ``op`` is the innermost enclosing operation span on the rank's main
    track (``allgatherv``, ``vecscatter``, ...), or ``"(program)"`` when
    the segment lies outside any instrumented operation.
    """

    rank: int
    t_start: float
    t_end: float
    category: str
    name: str
    op: str
    msg_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class _Busy:
    """One busy interval on a rank (CPU span or wire transfer)."""

    __slots__ = ("t_start", "t_end", "category", "name", "src", "msg_id")

    def __init__(self, t_start: float, t_end: float, category: str,
                 name: str, src: Optional[int] = None,
                 msg_id: Optional[int] = None):
        self.t_start = t_start
        self.t_end = t_end
        self.category = category
        self.name = name
        #: sender rank for arrival intervals (wire, dst side); None otherwise
        self.src = src
        self.msg_id = msg_id


@dataclass
class CriticalPath:
    """The critical path of one profiled run (see module docstring)."""

    makespan: float
    nranks: int
    segments: List[Segment]
    label: Optional[str] = None

    # -- aggregation ---------------------------------------------------------

    def total(self) -> float:
        return sum(s.duration for s in self.segments)

    def by_category(self) -> Dict[str, float]:
        out = {c: 0.0 for c in SEGMENT_CATEGORIES}
        for s in self.segments:
            out[s.category] += s.duration
        return out

    def by_rank(self) -> Dict[int, Dict[str, float]]:
        """Per-rank time on the critical path, split by category."""
        out: Dict[int, Dict[str, float]] = {}
        for s in self.segments:
            row = out.setdefault(
                s.rank, {"total": 0.0, **{c: 0.0 for c in SEGMENT_CATEGORIES}})
            row["total"] += s.duration
            row[s.category] += s.duration
        return out

    def by_op(self) -> Dict[str, Dict[str, float]]:
        """Per-call-site time on the critical path, split by category."""
        out: Dict[str, Dict[str, float]] = {}
        for s in self.segments:
            row = out.setdefault(
                s.op, {"total": 0.0, **{c: 0.0 for c in SEGMENT_CATEGORIES}})
            row["total"] += s.duration
            row[s.category] += s.duration
        return out

    def stragglers(self, outlier_fraction: float = DEFAULT_OUTLIER_FRACTION,
                   threshold: float = DEFAULT_OUTLIER_THRESHOLD) -> Dict[str, Any]:
        """Straggler flagging via the paper's Eq. 1 outlier detector.

        The value set is each rank's time on the critical path (ranks never
        on the path contribute 0).  A ratio above ``threshold`` means a
        small subset of ranks carries a disproportionate share of the
        path -- those ranks (everything strictly above the bulk edge) are
        the stragglers the paper's section 4.2 detector would name.

        Caveat: in a perfectly symmetric run every chain through the run
        ties, the walk picks one arbitrarily, and its ranks soak up the
        whole path -- concentration alone is then meaningless, which is
        why the report keeps the raw ``times`` alongside the verdict.
        """
        from repro.mpi.outlier import outlier_ratio

        times = [0.0] * self.nranks
        for s in self.segments:
            if 0 <= s.rank < self.nranks:
                times[s.rank] += s.duration
        result: Dict[str, Any] = {
            "times": times,
            "outlier_fraction": outlier_fraction,
            "threshold": threshold,
            "ratio": 1.0,
            "detected": False,
            "ranks": [],
        }
        if self.nranks < 2 or not any(times):
            return result
        ratio = outlier_ratio(times, outlier_fraction)
        result["ratio"] = ratio
        if ratio > threshold:
            vmax = max(times)
            # everything strictly above the bulk edge is an outlier; the
            # bulk edge is vmax / ratio by Eq. 1
            edge = vmax / ratio if ratio not in (0.0, float("inf")) else 0.0
            result["detected"] = True
            result["ranks"] = [r for r, t in enumerate(times) if t > edge]
        return result

    def render(self, top: int = 10) -> str:
        """A human-readable digest: totals, top call sites, stragglers."""
        cats = self.by_category()
        total = self.total() or 1.0
        lines = [
            f"critical path: makespan {self.makespan:.4g} s over "
            f"{len(self.segments)} segment(s), {self.nranks} rank(s)",
            "  " + "  ".join(f"{c} {cats[c]:.3g}s ({100 * cats[c] / total:.0f}%)"
                             for c in SEGMENT_CATEGORIES),
        ]
        ops = sorted(self.by_op().items(), key=lambda kv: -kv[1]["total"])
        for op, row in ops[:top]:
            lines.append(f"  {op:<24} {row['total']:.3g}s "
                         f"({100 * row['total'] / total:.0f}% of path)")
        strag = self.stragglers()
        if strag["detected"]:
            lines.append(f"  stragglers: rank(s) {strag['ranks']} "
                         f"(ratio {strag['ratio']:.2f} > "
                         f"{strag['threshold']:g})")
        else:
            lines.append(f"  stragglers: none (ratio {strag['ratio']:.2f})")
        return "\n".join(lines)


# -- graph construction ------------------------------------------------------

def _busy_intervals(profiler) -> Dict[int, List[_Busy]]:
    """Per-rank busy intervals: CPU spans plus wire transfers.

    A transfer contributes an interval to *both* endpoints: on the
    destination it is an arrival (jumping the walk to the sender), on the
    source it is send-port occupancy (no jump).  Self-transfers (local
    copies) stay local.
    """
    by_rank: Dict[int, List[_Busy]] = {}
    for s in profiler.tracer.spans:
        if s.category != "cpu" or s.open or s.t_end <= s.t_start:
            continue
        cat = "pack" if s.name in PACK_NAMES else "compute"
        by_rank.setdefault(s.rank, []).append(
            _Busy(s.t_start, s.t_end, cat, s.name,
                  msg_id=s.attrs.get("msg_id")))
    for ev in getattr(profiler, "transfers", ()):
        if ev.t_end <= ev.t_start:
            continue
        name = f"xfer {ev.src}->{ev.dst}"
        by_rank.setdefault(ev.dst, []).append(
            _Busy(ev.t_start, ev.t_end, "wire", name,
                  src=ev.src if ev.src != ev.dst else None,
                  msg_id=ev.msg_id))
        if ev.src != ev.dst:
            by_rank.setdefault(ev.src, []).append(
                _Busy(ev.t_start, ev.t_end, "wire", name, msg_id=ev.msg_id))
    for intervals in by_rank.values():
        intervals.sort(key=lambda b: (b.t_end, b.t_start))
    return by_rank


def _op_windows(profiler) -> Dict[int, List[Tuple[float, float, int, str]]]:
    """Per-rank operation spans (collective/petsc/solver/p2p), innermost
    resolvable: ``(t_start, t_end, depth, name)`` sorted by start."""
    by_rank: Dict[int, List[Tuple[float, float, int, str]]] = {}
    for s in profiler.tracer.spans:
        if s.category not in _OP_CATEGORIES or s.open:
            continue
        by_rank.setdefault(s.rank, []).append(
            (s.t_start, s.t_end, s.depth, s.name))
    for windows in by_rank.values():
        windows.sort()
    return by_rank


def _op_at(windows: Dict[int, List[Tuple[float, float, int, str]]],
           rank: int, t: float) -> str:
    """The innermost (deepest) operation span on ``rank`` covering ``t``."""
    best = None
    for t0, t1, depth, name in windows.get(rank, ()):
        if t0 > t:
            break
        if t1 >= t and (best is None or depth >= best[0]):
            best = (depth, name)
    return best[1] if best is not None else "(program)"


# -- the backward walk -------------------------------------------------------

def critical_path(profiler, max_segments: int = 1_000_000) -> CriticalPath:
    """Compute the critical path of a profiled run (see module docstring).

    ``profiler`` is a :class:`repro.prof.Profiler` whose cluster has run.
    The walk is deterministic: ties prefer local CPU work over wire
    occupancy (the engine's whole point is overlapping the two -- local
    work explains the rank's progress), then the latest-starting interval.
    """
    busy = _busy_intervals(profiler)
    windows = _op_windows(profiler)
    nranks = getattr(getattr(profiler, "cluster", None), "nranks", None)
    if nranks is None:
        nranks = (max(busy) + 1) if busy else 0

    # the run's makespan: the latest event end anywhere
    makespan = 0.0
    end_rank = 0
    for rank, intervals in sorted(busy.items()):
        for b in intervals:
            if b.t_end > makespan:
                makespan = b.t_end
                end_rank = rank
    label = getattr(profiler, "label", None)
    if makespan <= 0.0:
        return CriticalPath(0.0, nranks, [], label=label)
    eps = makespan * 1e-12

    segments: List[Segment] = []
    rank, t = end_rank, makespan
    while t > eps and len(segments) < max_segments:
        intervals = busy.get(rank, ())
        # 1. a busy interval still running at t explains the progress;
        #    prefer CPU over wire, then the latest start (innermost)
        cover = None
        for b in intervals:
            if b.t_end >= t - eps and b.t_start < t - eps:
                kind = 0 if b.category != "wire" else 1
                key = (kind, -b.t_start)
                if cover is None or key < cover[0]:
                    cover = (key, b)
        if cover is not None:
            b = cover[1]
            lo = max(b.t_start, 0.0)
            # a wire segment is *attributed to the sender*: the link gating
            # the path is the sender's NIC, so per-rank path time names the
            # rank whose (slow or oversized) sends made the run long
            owner = b.src if (b.category == "wire" and b.src is not None) else rank
            segments.append(Segment(owner, lo, t, b.category, b.name,
                                    _op_at(windows, rank, t), b.msg_id))
            t = lo
            if b.category == "wire" and b.src is not None:
                rank = b.src  # message edge: hand over to the sender
            continue
        # 2. idle: wait back to the previous event end on this rank
        prev = 0.0
        for b in intervals:
            if b.t_end < t - eps and b.t_end > prev:
                prev = b.t_end
        segments.append(Segment(rank, prev, t, "wait", "wait",
                                _op_at(windows, rank, t)))
        t = prev
    if t > eps:
        # segment cap hit: attribute the unexplored prefix as wait so the
        # sum-of-segments == makespan identity survives truncation
        segments.append(Segment(rank, 0.0, t, "wait", "wait",
                                _op_at(windows, rank, t)))
    segments.reverse()
    return CriticalPath(makespan, nranks, segments, label=label)


# -- reporting ---------------------------------------------------------------

def path_report(profiler, outlier_fraction: float = DEFAULT_OUTLIER_FRACTION,
                threshold: float = DEFAULT_OUTLIER_THRESHOLD) -> Dict[str, Any]:
    """One run's entry for the ``repro-critpath/1`` document."""
    crit = critical_path(profiler)
    strag = crit.stragglers(outlier_fraction, threshold)
    return {
        "label": crit.label,
        "makespan": crit.makespan,
        "nranks": crit.nranks,
        "path_total": crit.total(),
        "by_category": crit.by_category(),
        "by_rank": {str(r): row for r, row in sorted(crit.by_rank().items())},
        "by_op": crit.by_op(),
        "stragglers": strag,
        "segments": [
            {
                "rank": s.rank, "t_start": s.t_start, "t_end": s.t_end,
                "duration": s.duration, "category": s.category,
                "name": s.name, "op": s.op,
                **({"msg_id": s.msg_id} if s.msg_id is not None else {}),
            }
            for s in crit.segments
        ],
    }


def report(profilers, outlier_fraction: float = DEFAULT_OUTLIER_FRACTION,
           threshold: float = DEFAULT_OUTLIER_THRESHOLD) -> Dict[str, Any]:
    """The ``repro-critpath/1`` JSON document for one or more profilers.

    Schema (documented in docs/OBSERVABILITY.md)::

        {"schema": "repro-critpath/1",
         "runs": [{"label", "makespan", "nranks", "path_total",
                   "by_category", "by_rank", "by_op",
                   "stragglers", "segments"}, ...]}
    """
    if not isinstance(profilers, (list, tuple)):
        profilers = [profilers]
    return {
        "schema": "repro-critpath/1",
        "runs": [path_report(p, outlier_fraction, threshold)
                 for p in profilers],
    }


def write_report(path: str, profilers, **kwargs) -> Dict[str, Any]:
    """Serialise :func:`report` to ``path``; returns the document."""
    doc = report(profilers, **kwargs)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


__all__ = [
    "CriticalPath",
    "DEFAULT_OUTLIER_FRACTION",
    "DEFAULT_OUTLIER_THRESHOLD",
    "SEGMENT_CATEGORIES",
    "Segment",
    "critical_path",
    "path_report",
    "report",
    "write_report",
]
