"""``repro.prof`` -- the instrumentation currency of the whole stack.

One :class:`Profiler` per simulated cluster bundles:

- a :class:`repro.prof.spans.Tracer` (nestable spans stamped from
  ``engine.now``: pack/unpack, look-ahead, datatype re-search, collective
  rounds, VecScatter, KSP/SNES iterations, request waits),
- a :class:`repro.prof.metrics.MetricsRegistry` (counters / gauges /
  histograms under the documented name catalogue),
- the wire-transfer event stream (via the cluster observer API).

Attach it *before* running the cluster::

    cluster = Cluster(8, config=MPIConfig.optimized())
    prof = Profiler.attach(cluster)
    cluster.run(main)
    print(prof.metrics.render_prometheus())
    rows = prof.breakdown()                       # Fig. 13-style attribution
    write_chrome_trace("trace.json", prof)        # chrome://tracing

Instrumented code never checks whether profiling is on: every cluster
carries a profiler attribute that defaults to :data:`NULL_PROFILER`, whose
operations are no-ops, so the disabled-by-default overhead is a handful of
attribute lookups per instrumented call (<< the 5% budget on the fig12
transpose bench).

Profiling for a whole process (every cluster constructed anywhere, e.g.
inside ``repro.bench`` figure sweeps) is switched on through
:mod:`repro.prof.session`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.prof import export as _export
from repro.prof.metrics import (  # noqa: F401  (re-exported API)
    CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    snapshot_delta,
)
from repro.prof.spans import SPAN_CATEGORIES, Span, Tracer  # noqa: F401
from repro.prof.export import (  # noqa: F401
    aggregate_breakdown,
    breakdown,
    chrome_trace,
    render_breakdown,
    validate_breakdown,
    write_chrome_trace,
)
from repro.prof.critical import (  # noqa: F401
    CriticalPath,
    critical_path,
)
from repro.prof.critical import write_report as write_critpath_report  # noqa: F401
from repro.prof.flame import (  # noqa: F401
    collapsed_stacks,
    critical_stacks,
    write_flamegraph,
)


class _NullSpan:
    """Shared inert span handed out by the null profiler."""

    __slots__ = ()
    attrs: Dict[str, Any] = {}
    category = name = ""
    rank = -1
    t_start = 0.0
    t_end = 0.0
    duration = 0.0


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullProfiler:
    """No-op stand-in carried by unprofiled clusters.

    Every recording method does nothing; ``enabled`` is False so rare
    heavyweight call sites can skip argument preparation entirely.
    """

    enabled = False
    tracer = None
    metrics = None
    transfers: List[Any] = []

    def span(self, category: str, name: str, rank: int,
             lane: str = "main", **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def instant(self, category: str, name: str, rank: int, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1,
              labels: Optional[Dict[str, Any]] = None) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Dict[str, Any]] = None) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: the singleton every cluster starts with
NULL_PROFILER = NullProfiler()


class Profiler:
    """Tracer + metrics + transfer stream for one cluster run."""

    enabled = True

    def __init__(self, cluster, registry: Optional[MetricsRegistry] = None,
                 label: Optional[str] = None):
        self.cluster = cluster
        self.tracer = Tracer(cluster.engine)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.transfers: List[Any] = []
        self.label = label

    @classmethod
    def attach(cls, cluster, registry: Optional[MetricsRegistry] = None,
               label: Optional[str] = None) -> "Profiler":
        """Instrument ``cluster`` (call before ``cluster.run``).

        Registers as an ordinary observer (wire transfers, collective
        entries) and installs itself as ``cluster.profiler`` so the
        instrumented layers emit spans/metrics into it.
        """
        prof = cls(cluster, registry=registry, label=label)
        cluster.profiler = prof
        cluster.add_observer(prof)
        return prof

    # -- observer callbacks (cluster events) ---------------------------------

    def on_transfer(self, ev) -> None:
        self.transfers.append(ev)
        m = self.metrics
        m.counter("repro_transfer_messages_total").inc()
        m.counter("repro_transfer_bytes_total").inc(ev.nbytes)
        m.counter("repro_wire_seconds_total").inc(ev.t_end - ev.t_start)

    def on_collective(self, grank, ctx, seq, op, detail) -> None:
        self.metrics.counter("repro_collectives_total").inc(labels={"op": op})
        self.tracer.instant("marker", f"enter:{op}", grank, seq=seq)

    # -- recording facade ----------------------------------------------------

    def span(self, category: str, name: str, rank: int,
             lane: str = "main", **attrs: Any):
        return self.tracer.span(category, name, rank, lane=lane, **attrs)

    def instant(self, category: str, name: str, rank: int, **attrs: Any):
        return self.tracer.instant(category, name, rank, **attrs)

    def count(self, name: str, value: float = 1,
              labels: Optional[Dict[str, Any]] = None) -> None:
        self.metrics.counter(name).inc(value, labels=labels)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Dict[str, Any]] = None) -> None:
        self.metrics.gauge(name).set(value, labels=labels)

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot, refreshed with the engine gauges."""
        engine = self.cluster.engine
        self.set_gauge("repro_engine_events", getattr(engine, "events_fired", 0))
        self.set_gauge("repro_engine_processes",
                       getattr(engine, "processes_spawned", 0))
        return self.metrics.snapshot()

    def breakdown(self, category: str = "collective") -> List[Dict[str, Any]]:
        """Per-(collective, rank) pack/compute/wire/wait attribution rows."""
        return _export.breakdown(self, category=category)

    def render_breakdown(self, category: str = "collective") -> str:
        return _export.render_breakdown(self.breakdown(category))


__all__ = [
    "CATALOGUE",
    "Counter",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "SPAN_CATEGORIES",
    "Span",
    "Tracer",
    "aggregate_breakdown",
    "breakdown",
    "chrome_trace",
    "collapsed_stacks",
    "critical_path",
    "critical_stacks",
    "render_breakdown",
    "snapshot_delta",
    "validate_breakdown",
    "write_chrome_trace",
    "write_critpath_report",
    "write_flamegraph",
]
