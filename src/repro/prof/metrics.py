"""Metrics registry (``prof.metrics``): counters, gauges, histograms.

A :class:`MetricsRegistry` is a process-wide, name-keyed store of metric
instruments in the style of a Prometheus client:

- :class:`Counter` -- monotone accumulators (``.inc(v)``), optionally
  sliced by a small label set (e.g. ``{"op": "allgatherv"}``),
- :class:`Gauge` -- last-write-wins values (``.set(v)``),
- :class:`Histogram` -- bucketed distributions (``.observe(v)``) with
  ``count``/``sum`` like Prometheus histograms.

``registry.snapshot()`` returns a plain-dict view (JSON-safe) and
``registry.render_prometheus()`` emits the Prometheus text exposition
format, so a simulated run can be scraped/diffed exactly like a real
mpiP/Score-P deployment.

Every metric name the instrumented stack emits is declared in
:data:`CATALOGUE`; the registry refuses unknown names unless created with
``strict=False``.  ``python -m repro.prof check-catalogue`` verifies that
the catalogue and ``docs/OBSERVABILITY.md`` never drift apart (run by CI).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: name -> (kind, help text).  The single source of truth for metric names.
CATALOGUE: Dict[str, Tuple[str, str]] = {
    # point-to-point / datatype processing
    "repro_send_messages_total": ("counter", "Typed point-to-point sends posted"),
    "repro_send_bytes_total": ("counter", "Payload bytes of typed sends"),
    "repro_pack_bytes_total": ("counter", "Bytes packed from noncontiguous send buffers"),
    "repro_unpack_bytes_total": ("counter", "Bytes unpacked into noncontiguous receive buffers"),
    "repro_pack_stages_total": ("counter", "Pipeline stages planned by the pack engine"),
    "repro_lookahead_dense_total": ("counter", "Look-ahead classifications that chose the dense (writev) path"),
    "repro_lookahead_sparse_total": ("counter", "Look-ahead classifications that chose the sparse (pack) path"),
    "repro_research_total": ("counter", "Datatype context re-searches (single-context engine only)"),
    "repro_research_depth_blocks": ("histogram", "Blocks walked per context re-search"),
    # datatype compiler (repro.datatypes.ir)
    "repro_datatype_ir_compile_total": ("counter", "Datatype IR compilations (cache misses that built a plan)"),
    "repro_datatype_ir_cache_hits_total": ("counter", "Datatype IR plan-cache hits"),
    "repro_datatype_ir_cache_misses_total": ("counter", "Datatype IR plan-cache misses"),
    "repro_datatype_ir_compile_seconds": ("histogram", "Wall-clock seconds per datatype IR compilation"),
    "repro_datatype_ir_coalesced_ratio": ("histogram", "Merged blocks per raw run after IR coalescing (1.0 = nothing merged)"),
    "repro_datatype_pack_exec_seconds": ("histogram", "Wall-clock seconds executing one lowered pack/unpack copy program"),
    "repro_datatype_pack_ops_total": ("counter", "Copy-program ops executed by pack/unpack"),
    "repro_rendezvous_stall_seconds": ("histogram", "Sender stall waiting for the matching receive (rendezvous)"),
    "repro_request_wait_seconds": ("histogram", "Blocking time per Request.wait call"),
    # collectives
    "repro_collectives_total": ("counter", "Collective operations entered (label: op)"),
    "repro_zero_byte_sends_total": ("counter", "Zero-byte synchronisation messages actually sent"),
    "repro_zero_byte_elided_total": ("counter", "Zero-byte messages elided by the binned Alltoallw zero bin"),
    "repro_alltoallw_zero_bin_size": ("histogram", "Peers per rank landing in the Alltoallw zero bin"),
    "repro_alltoallw_small_bin_size": ("histogram", "Peers per rank landing in the Alltoallw small bin"),
    "repro_alltoallw_large_bin_size": ("histogram", "Peers per rank landing in the Alltoallw large bin"),
    "repro_outlier_checks_total": ("counter", "Adaptive-Allgatherv outlier-detection passes"),
    "repro_outlier_detected_total": ("counter", "Outlier-detection passes that abandoned the ring"),
    "repro_kselect_calls_total": ("counter", "Floyd-Rivest k_select invocations"),
    "repro_kselect_pivot_passes_total": ("counter", "Floyd-Rivest partition passes across all k_select calls"),
    # algorithm selection
    "repro_algorithm_selections_total": ("counter", "Selection-policy decisions (labels: collective, algorithm, policy)"),
    "repro_tuning_cache_hits_total": ("counter", "Autotuned-policy LRU decision-cache hits"),
    "repro_tuning_cache_misses_total": ("counter", "Autotuned-policy decision-cache misses (table or fallback consulted)"),
    # wire
    "repro_transfer_messages_total": ("counter", "Messages (wire chunks) moved by the network model"),
    "repro_transfer_bytes_total": ("counter", "Bytes moved by the network model"),
    "repro_wire_seconds_total": ("counter", "Accumulated wire occupancy seconds"),
    # sparse dynamic data exchange (NBX)
    "repro_nbx_consensus_rounds": ("histogram", "Event-loop wakeups per rank per NBX sparse exchange"),
    # PETSc / solvers
    "repro_vecscatter_ops_total": ("counter", "VecScatter applications (label: backend)"),
    "repro_vecscatter_bytes_total": ("counter", "Off-rank bytes moved per VecScatter application"),
    "repro_plan_cache_hits_total": ("counter", "Assembly communication-plan reuses (subset_off_proc_entries)"),
    "repro_plan_cache_misses_total": ("counter", "Assemblies that discovered a pattern with plan caching enabled"),
    "repro_plan_cache_invalidations_total": ("counter", "Cached assembly plans dropped (label: reason)"),
    "repro_ksp_iterations_total": ("counter", "KSP solver iterations (label: method)"),
    "repro_snes_iterations_total": ("counter", "SNES Newton iterations"),
    # engine
    "repro_engine_events": ("gauge", "Discrete events fired by the simulation engine"),
    "repro_engine_processes": ("gauge", "Processes spawned on the simulation engine"),
    # fault injection / reliable transport (repro.faults, mpi.comm)
    "repro_faults_injected_total": ("counter", "Faults fired by the injector (label: kind)"),
    "repro_retransmits_total": ("counter", "Reliable-transport retransmission attempts"),
    "repro_checksum_failures_total": ("counter", "Payloads rejected by the receiver-side CRC check"),
    "repro_rank_failures_total": ("counter", "Ranks declared failed (crashes and detected hangs)"),
}

#: default histogram buckets: log-spaced, covers ns stalls to whole seconds
#: as well as small integer set sizes
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-9, 3)) + (math.inf,)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, Any]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote and newline must be ``\\\\``, ``\\"``, ``\\n``."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(key: _LabelKey, extra: Optional[List[Tuple[str, str]]] = None) -> str:
    pairs = list(key) + list(extra or [])
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class Metric:
    """Base class: a named instrument with per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def snapshot(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def render(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _header(self) -> List[str]:
        out = []
        if self.help:
            out.append(f"# HELP {self.name} {self.help}")
        out.append(f"# TYPE {self.name} {self.kind}")
        return out


class Counter(Metric):
    """Monotone accumulator, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[_LabelKey, float] = {}

    def inc(self, value: float = 1, labels: Optional[Mapping[str, Any]] = None) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {value})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + value

    def value(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        return self._series.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        return sum(self._series.values())

    def snapshot(self) -> Any:
        if set(self._series) == {()}:
            return self._series[()]
        return {_render_labels(k) or "total": v for k, v in sorted(self._series.items())}

    def render(self) -> List[str]:
        out = self._header()
        for key, v in sorted(self._series.items()):
            out.append(f"{self.name}{_render_labels(key)} {_num(v)}")
        if not self._series:
            out.append(f"{self.name} 0")
        return out


class Gauge(Metric):
    """Last-write-wins value."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[_LabelKey, float] = {}

    def set(self, value: float, labels: Optional[Mapping[str, Any]] = None) -> None:
        self._series[_label_key(labels)] = value

    def value(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        return self._series.get(_label_key(labels), 0)

    def snapshot(self) -> Any:
        if set(self._series) == {()}:
            return self._series[()]
        return {_render_labels(k) or "total": v for k, v in sorted(self._series.items())}

    def render(self) -> List[str]:
        out = self._header()
        for key, v in sorted(self._series.items()):
            out.append(f"{self.name}{_render_labels(key)} {_num(v)}")
        if not self._series:
            out.append(f"{self.name} 0")
        return out


class Histogram(Metric):
    """Prometheus-style cumulative-bucket histogram."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds or bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.bounds = bounds
        self._counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self._counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Any:
        return {"count": self.count, "sum": self.sum, "mean": self.mean}

    def render(self) -> List[str]:
        out = self._header()
        cumulative = 0
        for bound, c in zip(self.bounds, self._counts):
            cumulative += c
            le = "+Inf" if bound == math.inf else _num(bound)
            out.append(f'{self.name}_bucket{{le="{le}"}} {cumulative}')
        out.append(f"{self.name}_sum {_num(self.sum)}")
        out.append(f"{self.name}_count {self.count}")
        return out


def _num(v: float) -> str:
    if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


class MetricsRegistry:
    """Get-or-create store of named metrics.

    ``strict=True`` (the default) restricts names to :data:`CATALOGUE`, so
    an instrumentation typo fails fast instead of silently forking a new
    time series -- the same guarantee the CI drift check enforces for the
    documentation.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, help: Optional[str], **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        if self.strict:
            entry = CATALOGUE.get(name)
            if entry is None:
                raise KeyError(
                    f"metric {name!r} is not in the documented catalogue "
                    "(repro.prof.metrics.CATALOGUE)"
                )
            kind, default_help = entry
            if kind != cls.kind:
                raise TypeError(
                    f"metric {name!r} is catalogued as a {kind}, "
                    f"not a {cls.kind}"
                )
            help = help or default_help
        metric = cls(name, help or "", **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: Optional[str] = None) -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: Optional[str] = None) -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: Optional[str] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help, buckets=buckets)

    # -- views ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe ``{name: value}`` view of every registered metric."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for _name, metric in sorted(self._metrics.items()):
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")


def snapshot_delta(now: Mapping[str, Any], before: Mapping[str, Any]) -> Dict[str, Any]:
    """Difference of two :meth:`MetricsRegistry.snapshot` dicts.

    Numeric entries are subtracted; histogram dicts are diffed field-wise;
    labelled-counter dicts are diffed key-wise.  Entries absent from
    ``before`` count from zero.
    """
    out: Dict[str, Any] = {}
    for name, cur in now.items():
        prev = before.get(name)
        if isinstance(cur, dict):
            prev = prev if isinstance(prev, dict) else {}
            d = {k: v - prev.get(k, 0) for k, v in cur.items()
                 if isinstance(v, (int, float))}
            if "count" in d and "count" in cur and cur["count"]:
                d["mean"] = (d["sum"] / d["count"]) if d.get("count") else 0.0
            if any(v for v in d.values()):
                out[name] = d
        else:
            prev = prev if isinstance(prev, (int, float)) else 0
            if cur - prev:
                out[name] = cur - prev
    return out
