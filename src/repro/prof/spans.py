"""Span-based tracing of simulated time (``prof.spans``).

A :class:`Tracer` records *spans*: named intervals of simulated time,
stamped from the discrete-event engine's clock, organised per rank and
nestable.  Instrumented code opens spans with an ordinary ``with`` block::

    with tracer.span("collective", "allgatherv", rank, algorithm="ring"):
        yield from ...        # simulated time passes inside the block

Because user code is generator-based, the block may suspend and resume many
times; the span's duration is simply ``engine.now`` at exit minus
``engine.now`` at entry -- i.e. elapsed *simulated* seconds, including any
time the rank spent blocked.

Spans live on *tracks*.  The default track of a span is its rank (one
timeline per rank, like one row per rank in a Vampir/Chrome view);
background activity that overlaps the rank's main flow -- receiver-side
unpack performed by the delivery process, wire transfers -- goes on
auxiliary lanes (``lane="io"``, ``lane="wire"``) so that spans on any one
track never overlap and nesting stays well defined.

Span categories used by the instrumented stack (see docs/OBSERVABILITY.md):

==============  ==========================================================
``p2p``         one ``isend`` call (datatype processing + posting)
``cpu``         one CPU charge (``pack``/``search``/``lookahead``/
                ``unpack``/``compute``, the ledger categories)
``collective``  one collective invocation (``allgatherv``, ``alltoallw``,
                ``barrier``, ``bcast``, ``reduce``, ...)
``phase``       one internal round of a collective (ring hop,
                recursive-doubling step, dissemination phase, alltoallw
                bin)
``petsc``       one PETSc-level operation (``vecscatter``)
``solver``      one KSP/SNES iteration
``wait``        one blocking ``Request.wait``
==============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: ordered catalogue of span categories (documented + checked by tests)
SPAN_CATEGORIES = (
    "p2p",
    "cpu",
    "collective",
    "phase",
    "petsc",
    "solver",
    "wait",
    "marker",
)


@dataclass
class Span:
    """One interval of simulated time on one track."""

    id: int
    parent: Optional[int]
    category: str
    name: str
    rank: int
    track: Tuple[int, str]
    t_start: float
    t_end: Optional[float] = None
    depth: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.t_end is None

    @property
    def duration(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def encloses(self, other: "Span") -> bool:
        """True if ``other`` lies within this span's time window."""
        if self.t_end is None or other.t_end is None:
            return False
        return self.t_start <= other.t_start and other.t_end <= self.t_end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "open" if self.t_end is None else f"{self.t_end:.3g}"
        return (f"Span({self.category}:{self.name} rank={self.rank} "
                f"[{self.t_start:.3g}, {end}])")


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records spans and instant events against a simulation engine clock.

    The tracer never advances or perturbs simulated time; it only reads
    ``engine.now``.  Attach it to a cluster through
    :class:`repro.prof.Profiler` rather than using it directly.
    """

    def __init__(self, engine):
        self.engine = engine
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        self._next_id = 0
        #: per-track stacks of currently open spans
        self._stacks: Dict[Tuple[int, str], List[Span]] = {}

    # -- recording -----------------------------------------------------------

    def span(self, category: str, name: str, rank: int,
             lane: str = "main", **attrs: Any) -> _SpanContext:
        """A context manager opening a span at entry, closing it at exit.

        The ``with`` target is the :class:`Span`, so late-bound attributes
        can be added inside the block (``sp.attrs["algorithm"] = ...``).
        """
        track = (rank, lane)
        span = Span(
            id=self._next_id, parent=None, category=category, name=name,
            rank=rank, track=track, t_start=0.0, attrs=dict(attrs),
        )
        self._next_id += 1
        return _SpanContext(self, span)

    def instant(self, category: str, name: str, rank: int, **attrs: Any) -> Span:
        """Record a zero-duration marker event at the current time."""
        now = self.engine.now
        span = Span(
            id=self._next_id, parent=self._top_id((rank, "main")),
            category=category, name=name, rank=rank, track=(rank, "main"),
            t_start=now, t_end=now, attrs=dict(attrs),
        )
        self._next_id += 1
        self.instants.append(span)
        return span

    def _top_id(self, track: Tuple[int, str]) -> Optional[int]:
        stack = self._stacks.get(track)
        return stack[-1].id if stack else None

    def _open(self, span: Span) -> None:
        stack = self._stacks.setdefault(span.track, [])
        span.t_start = self.engine.now
        span.parent = stack[-1].id if stack else None
        span.depth = len(stack)
        stack.append(span)
        self.spans.append(span)

    def _close(self, span: Span) -> None:
        span.t_end = self.engine.now
        stack = self._stacks.get(span.track)
        if stack is not None:
            # removal by identity, not positional pop: background processes
            # on the same track may interleave open/close
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i]
                    break

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.id]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.open]

    def tracks(self) -> List[Tuple[int, str]]:
        """All tracks that carry at least one span, deterministic order."""
        seen = dict.fromkeys(s.track for s in self.spans)
        for s in self.instants:
            seen.setdefault(s.track)
        return sorted(seen)

    def walk(self) -> Iterator[Span]:
        """Spans in recording order (stable, deterministic)."""
        return iter(self.spans)
