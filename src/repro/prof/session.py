"""Process-wide profiling session (``prof.session``).

``repro.bench`` constructs clusters many layers below its figure loops, so
per-cluster ``Profiler.attach`` calls cannot reach them.  A *session* flips
one process-global switch: while enabled, every :class:`repro.mpi.Cluster`
constructed anywhere auto-attaches a :class:`repro.prof.Profiler` that
shares one session-wide :class:`MetricsRegistry`, and
:meth:`repro.bench.harness.FigureData.add_row` snapshots the metric delta
attributable to each figure row.

Typical use (what ``python -m repro.bench --profile`` does)::

    from repro.prof import session
    session.enable()
    try:
        ...build figures...
        report = session.report()          # metrics + breakdown + rows
        session.write_chrome_trace(path)
    finally:
        session.disable()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.prof import Profiler, export
from repro.prof.metrics import MetricsRegistry, snapshot_delta


class _Session:
    def __init__(self) -> None:
        self.enabled = False
        self.registry: Optional[MetricsRegistry] = None
        self.profilers: List[Profiler] = []
        #: figure name -> list of per-row metric snapshot deltas
        self.rows: Dict[str, List[Dict[str, Any]]] = {}
        self._last_snapshot: Dict[str, Any] = {}


_SESSION = _Session()


def enable() -> MetricsRegistry:
    """Start (or restart) a profiling session; returns its registry."""
    _SESSION.enabled = True
    _SESSION.registry = MetricsRegistry()
    _SESSION.profilers = []
    _SESSION.rows = {}
    _SESSION._last_snapshot = {}
    return _SESSION.registry


def disable() -> None:
    """Stop the session (already-attached profilers keep their data)."""
    _SESSION.enabled = False


def is_enabled() -> bool:
    return _SESSION.enabled


def registry() -> Optional[MetricsRegistry]:
    return _SESSION.registry


def profilers() -> List[Profiler]:
    return list(_SESSION.profilers)


def attach_if_enabled(cluster) -> Optional[Profiler]:
    """Called by ``Cluster.__init__``; no-op unless a session is active."""
    if not _SESSION.enabled:
        return None
    prof = Profiler.attach(
        cluster, registry=_SESSION.registry,
        label=f"cluster {len(_SESSION.profilers)} ({cluster.nranks} ranks)",
    )
    _SESSION.profilers.append(prof)
    return prof


def notify_row(figure: str, values: List[Any]) -> None:
    """Row hook from :meth:`FigureData.add_row`: snapshot the metric delta
    since the previous row so the JSON artifact can embed per-row costs."""
    if not _SESSION.enabled or _SESSION.registry is None:
        return
    snap = _SESSION.registry.snapshot()
    delta = snapshot_delta(snap, _SESSION._last_snapshot)
    _SESSION._last_snapshot = snap
    _SESSION.rows.setdefault(figure, []).append(delta)


#: span categories attributed in the session breakdown; p2p covers
#: benchmarks (fig12/fig13 transposes) that never enter a collective
BREAKDOWN_CATEGORIES = ("collective", "p2p", "petsc")


def breakdown_rows(categories=BREAKDOWN_CATEGORIES) -> List[Dict[str, Any]]:
    if isinstance(categories, str):
        categories = (categories,)
    rows: List[Dict[str, Any]] = []
    for prof in _SESSION.profilers:
        for cat in categories:
            rows.extend(prof.breakdown(cat))
    return rows


def report() -> Dict[str, Any]:
    """The session-level profile report embedded in bench JSON artifacts."""
    for prof in _SESSION.profilers:
        prof.snapshot()  # refresh engine gauges into the shared registry
    metrics = _SESSION.registry.snapshot() if _SESSION.registry else {}
    rows = breakdown_rows()
    return {
        "clusters": len(_SESSION.profilers),
        "metrics": metrics,
        "prometheus": (_SESSION.registry.render_prometheus()
                       if _SESSION.registry else ""),
        "row_metrics": _SESSION.rows,
        "breakdown": export.aggregate_breakdown(rows),
        "breakdown_rows": len(rows),
        "breakdown_valid": export.validate_breakdown(rows),
        "wait_report": export.wait_for_peers_report(rows),
    }


def write_chrome_trace(path: str) -> Dict[str, Any]:
    """One Chrome trace for every cluster profiled in the session."""
    return export.write_chrome_trace(path, _SESSION.profilers)


def write_critpath(path: str, **kwargs) -> Dict[str, Any]:
    """The ``repro-critpath/1`` document over every profiled cluster
    (one critical-path run entry per cluster; see prof.critical)."""
    from repro.prof import critical

    return critical.write_report(path, _SESSION.profilers, **kwargs)


def write_flamegraph(path: str) -> Dict[str, int]:
    """Collapsed-stack flamegraph over every profiled cluster."""
    from repro.prof import flame

    return flame.write_flamegraph(path, _SESSION.profilers)
