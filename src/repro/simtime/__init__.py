"""Deterministic discrete-event simulation substrate.

This package provides the "cluster" on which the reproduced MPI library and
PETSc-like toolkit run.  It replaces the paper's physical InfiniBand testbed
(see DESIGN.md, substitution table):

- :mod:`repro.simtime.engine` -- the event loop and generator-based processes,
- :mod:`repro.simtime.resources` -- FIFO resources used to model NIC ports,
- :mod:`repro.simtime.network` -- the alpha-beta transfer-time model with
  per-rank CPU speed factors and seeded skew.

Simulated time is a float in seconds.  All scheduling is deterministic: ties
are broken by an insertion sequence number, and any randomness (skew/noise)
comes from seeded generators owned by the network model.
"""

from repro.simtime.engine import (
    Delay,
    Engine,
    SimFuture,
    SimProcess,
    SimulationDeadlock,
    SimulationError,
)
from repro.simtime.network import NetworkModel
from repro.simtime.resources import Port, Resource

__all__ = [
    "Delay",
    "Engine",
    "NetworkModel",
    "Port",
    "Resource",
    "SimFuture",
    "SimProcess",
    "SimulationDeadlock",
    "SimulationError",
]
