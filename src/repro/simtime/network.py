"""Cluster network and CPU model.

Models the paper's testbed (section 5.1): two 32-node clusters -- Intel
EM64T 3.6 GHz and AMD Opteron 2.8 GHz -- joined by one InfiniBand DDR
switch.  The relevant properties for the reproduced experiments are:

- every node has one NIC: concurrent sends (or receives) at a node
  serialise (:class:`repro.simtime.resources.Port`),
- message time follows the alpha-beta model,
- the two halves of the machine run CPU-bound work at different speeds,
  which creates the natural skew the paper observes in Fig. 15
  ("we did not add any artificial skew ... some skew is bound to be
  present"), plus small seeded per-call jitter.

Rank-to-cluster mapping mirrors the paper: runs of <= 32 processes fit on
one (Opteron) cluster and are nearly homogeneous; larger runs straddle both
clusters and are heterogeneous.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.simtime.engine import Delay, Engine
from repro.simtime.resources import Port
from repro.util.costmodel import CostModel

#: number of nodes per physical cluster in the paper's testbed
CLUSTER_NODES = 32


@dataclass(frozen=True)
class WireFault:
    """Verdict of a fault injector for ONE wire transfer attempt.

    Produced by :meth:`repro.faults.injector.FaultInjector.on_wire`;
    consumed by :meth:`NetworkModel.transfer` (timing effects: ``delay``
    spike, ``scale`` NIC degradation) and by the reliable transport in
    :mod:`repro.mpi.comm` (payload effects: ``drop``, ``corrupt``,
    ``duplicate``).
    """

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay: float = 0.0
    scale: float = 1.0


#: shared "nothing happened" verdict (avoids per-transfer allocation)
NO_FAULT = WireFault()


@dataclass
class WireOutcome:
    """What happened to one logical transfer (possibly several chunks).

    Returned by :meth:`NetworkModel.transfer`.  Callers that ignore the
    return value (every pre-fault call site) are unaffected; the reliable
    transport inspects it to decide whether the payload actually arrived
    intact.
    """

    dropped: bool = False
    corrupted: bool = False
    duplicate: bool = False

    def merge(self, fault: "WireFault") -> None:
        self.dropped = self.dropped or fault.drop
        self.corrupted = self.corrupted or fault.corrupt
        self.duplicate = self.duplicate or fault.duplicate

    def absorb(self, other: "WireOutcome") -> None:
        """Fold another chunk's outcome into this whole-message outcome."""
        self.dropped = self.dropped or other.dropped
        self.corrupted = self.corrupted or other.corrupted
        self.duplicate = self.duplicate or other.duplicate


@dataclass(frozen=True)
class TransferEvent:
    """One completed wire transfer, reported to transfer listeners.

    ``t_start``/``t_end`` bracket the whole operation including port
    acquisition; ``sig`` is the flattened-datatype signature hash riding
    along as metadata (None for control-plane/raw transfers).
    """

    src: int
    dst: int
    nbytes: int
    tag: int
    sig: Optional[int]
    t_start: float
    t_end: float
    #: cluster-unique causal message id (:attr:`_SendRecord.msg_id`); every
    #: wire chunk of one logical message carries the same id, tying the
    #: send call, its transfers and the receive together (None for raw
    #: transfers issued outside the p2p layer, e.g. RMA)
    msg_id: Optional[int] = None


class NetworkModel:
    """Per-rank ports, transfer times and CPU-time scaling for one cluster."""

    def __init__(
        self,
        engine: Engine,
        nranks: int,
        cost: CostModel | None = None,
        seed: int = 0,
        heterogeneous: bool | None = None,
    ):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.engine = engine
        self.nranks = nranks
        self.cost = cost or CostModel()
        self._rng = random.Random(seed)
        # Heterogeneous iff the job does not fit on one 32-node cluster,
        # unless explicitly overridden.
        if heterogeneous is None:
            heterogeneous = nranks > CLUSTER_NODES
        self.heterogeneous = heterogeneous
        self.send_ports: List[Port] = [
            Port(engine, f"send[{r}]") for r in range(nranks)
        ]
        self.recv_ports: List[Port] = [
            Port(engine, f"recv[{r}]") for r in range(nranks)
        ]
        self._speed = [self._speed_factor(r) for r in range(nranks)]
        self.bytes_on_wire = 0
        self.messages_on_wire = 0
        #: called with a :class:`TransferEvent` after each completed transfer
        self._transfer_listeners: List[Callable[[TransferEvent], None]] = []
        #: optional fault injector (:class:`repro.faults.injector.FaultInjector`);
        #: consulted once per wire transfer when set.  None (the default)
        #: keeps the fault-free path byte- and schedule-identical.
        self.fault_injector: Optional[Any] = None

    def add_transfer_listener(self, fn: Callable[[TransferEvent], None]) -> None:
        """Register ``fn(event)`` to run after every completed transfer.

        This is the supported instrumentation point (used by the cluster to
        fan events out to its observers); wrapping/monkey-patching
        :meth:`transfer` is not, since multiple wrappers double-wrap the
        generator.
        """
        self._transfer_listeners.append(fn)

    def _speed_factor(self, rank: int) -> float:
        """CPU-time multiplier for ``rank`` (1.0 = fast Intel node)."""
        if not self.heterogeneous:
            return 1.0
        # First half on the Intel cluster, second half on the Opteron one.
        return 1.0 if rank < self.nranks // 2 else self.cost.hetero_factor

    def speed_factor(self, rank: int) -> float:
        return self._speed[rank]

    # -- CPU -------------------------------------------------------------

    def cpu_seconds(self, rank: int, seconds: float) -> float:
        """Scale nominal CPU ``seconds`` by rank speed and seeded jitter."""
        if seconds < 0:
            raise ValueError(f"negative cpu time: {seconds!r}")
        if seconds == 0:
            return 0.0
        jitter = 1.0 + self._rng.random() * self.cost.cpu_noise
        return seconds * self._speed[rank] * jitter

    def compute(self, rank: int, seconds: float) -> Generator:
        """Yieldable: occupy ``rank``'s CPU for scaled ``seconds``."""
        yield Delay(self.cpu_seconds(rank, seconds))

    # -- wire ------------------------------------------------------------

    def transfer_time(self, nbytes: int) -> float:
        return self.cost.transfer_time(nbytes)

    def transfer(self, src: int, dst: int, nbytes: int,
                 latency: Optional[float] = None,
                 tag: int = -1, sig: Optional[int] = None,
                 msg_id: Optional[int] = None) -> Generator:
        """Yieldable: move ``nbytes`` from ``src`` to ``dst``.

        Holds the sender's send port and the receiver's receive port for the
        whole wire time, which serialises concurrent messages through a node
        -- the mechanism behind the ring algorithm's sequentialisation.
        Zero-byte messages still pay ``alpha`` (a pure synchronisation, the
        cost the optimised Alltoallw avoids by exempting the zero bin).
        ``latency`` overrides the per-message alpha (e.g. the cheaper
        initiation cost of a raw RDMA operation).

        ``tag``, ``sig`` and ``msg_id`` (the message tag, the flattened
        datatype signature hash and the causal message id assigned by the
        p2p layer) are pure metadata: the wire ignores them, but transfer
        listeners such as :class:`repro.mpi.trace.MessageTrace`
        (subscribed through the cluster observer API) record them.

        Returns a :class:`WireOutcome`.  When a fault injector is attached
        (:mod:`repro.faults`) the outcome may be marked dropped / corrupted
        / duplicated and the transfer may suffer a delay spike or NIC
        degradation; with no injector the outcome is always clean and the
        code path is identical to the fault-free build.
        """
        t_start = self.engine.now
        outcome = WireOutcome()
        fault = NO_FAULT
        if self.fault_injector is not None:
            fault = self.fault_injector.on_wire(src, dst, nbytes, tag,
                                                self.engine.now)
            outcome.merge(fault)
            if fault.delay > 0.0:
                # delay spike: the packet sits in the NIC before the wire
                yield Delay(fault.delay)
        yield from self._transfer(src, dst, nbytes, latency,
                                  scale=fault.scale)
        if self._transfer_listeners:
            event = TransferEvent(src, dst, nbytes, tag, sig,
                                  t_start, self.engine.now, msg_id)
            for fn in self._transfer_listeners:
                fn(event)
        return outcome

    def _transfer(self, src: int, dst: int, nbytes: int,
                  latency: Optional[float] = None,
                  scale: float = 1.0) -> Generator:
        if not (0 <= src < self.nranks and 0 <= dst < self.nranks):
            raise ValueError(f"rank out of range: {src}->{dst}")
        if latency is None:
            duration = self.transfer_time(nbytes)
        else:
            duration = latency + self.cost.beta * max(0, nbytes)
        if scale != 1.0:
            duration *= scale
        self.bytes_on_wire += nbytes
        self.messages_on_wire += 1
        if src == dst:
            # local copy through memory, no NIC involved
            yield Delay(self.cost.copy_byte * nbytes)
            return
        yield from self.send_ports[src].acquire()
        try:
            yield from self.recv_ports[dst].acquire()
            try:
                yield Delay(duration)
                self.send_ports[src].busy_time += duration
                self.recv_ports[dst].busy_time += duration
            finally:
                self.recv_ports[dst].release()
        finally:
            self.send_ports[src].release()
