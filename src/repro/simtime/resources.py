"""FIFO resources for the simulator.

The network model uses one send :class:`Port` and one receive :class:`Port`
per node to represent the single NIC each cluster node has.  Serialising
transfers through these ports is what makes the ring algorithm's large
message genuinely sequential (Fig. 8 of the paper): a node cannot forward the
big block to its successor before it has finished receiving it, and cannot
send two messages at once.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from repro.simtime.engine import Delay, Engine, SimFuture, SimulationError


class Resource:
    """A counted FIFO resource (like a semaphore with fair queueing).

    ``yield from res.acquire()`` blocks until a slot is free;
    ``res.release()`` frees it.  Prefer :meth:`use` which pairs the two
    around a timed hold.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[SimFuture] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator:
        if self._in_use < self.capacity:
            self._in_use += 1
            return
            yield  # pragma: no cover - makes this a generator
        fut = self.engine.future(f"acquire({self.name})")
        self._waiters.append(fut)
        yield fut
        # ownership transferred by release(); _in_use already counted

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # hand the slot straight to the next waiter (keeps _in_use).
            self._waiters.popleft().set_result(None)
        else:
            self._in_use -= 1

    def use(self, duration: float) -> Generator:
        """Acquire, hold for ``duration`` sim-seconds, release."""
        yield from self.acquire()
        try:
            yield Delay(duration)
        finally:
            self.release()


class Port(Resource):
    """A single-capacity resource representing one direction of a NIC.

    Tracks cumulative busy time so experiments can report link utilisation.
    """

    def __init__(self, engine: Engine, name: str = ""):
        super().__init__(engine, capacity=1, name=name)
        self.busy_time = 0.0
        self._acquired_at: Optional[float] = None

    def use(self, duration: float) -> Generator:
        yield from self.acquire()
        start = self.engine.now
        try:
            yield Delay(duration)
        finally:
            self.busy_time += self.engine.now - start
            self.release()
