"""Discrete-event engine with generator-based processes.

A *process* is a Python generator.  It advances by yielding one of:

- :class:`Delay` -- resume after a fixed amount of simulated time,
- :class:`SimFuture` -- resume when the future is resolved; the ``yield``
  expression evaluates to the future's value,
- another :class:`SimProcess` -- resume when that process terminates; the
  ``yield`` evaluates to its return value (exceptions propagate).

Subroutines compose with ``yield from`` and return values through
``return`` / ``StopIteration`` as usual, which lets the higher layers (MPI,
PETSc) be written in a direct blocking style::

    def worker(comm):
        data = yield from comm.recv(source=0, tag=7)
        yield Delay(1e-6)           # charge some CPU time
        yield from comm.send(data, dest=2, tag=7)

The engine is fully deterministic: events at equal timestamps fire in the
order they were scheduled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class SimulationDeadlock(SimulationError):
    """Raised by :meth:`Engine.run` when live processes remain but no event
    can ever fire again (e.g. a receive whose matching send never happens).

    The message names every still-alive process and what it is blocked on;
    :attr:`blocked` carries the same data as ``(process_name, waiting_on)``
    pairs so harnesses (e.g. ``repro.faults.chaos``) can assert on it.
    """

    def __init__(self, message: str, blocked: Optional[list] = None):
        super().__init__(message)
        #: ``[(process_name, description_of_wait_target), ...]``
        self.blocked: list = blocked or []


class Delay:
    """Yieldable command: resume the process after ``duration`` sim-seconds.

    A negative duration is an error; zero is allowed and schedules the
    resumption at the current time (after already-queued events at that time).
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative delay: {duration!r}")
        self.duration = float(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.duration!r})"


class SimFuture:
    """A one-shot container for a value produced at some simulated time.

    Processes wait on a future by yielding it.  Multiple processes may wait
    on the same future; all are resumed (in wait order) when it resolves.
    """

    __slots__ = ("engine", "_value", "_exception", "_done", "_callbacks",
                 "name", "_cancelled")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._done = False
        self._callbacks: list[Callable[["SimFuture"], None]] = []
        self.name = name
        self._cancelled = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` resolved this future before its event."""
        return self._cancelled

    def cancel(self) -> bool:
        """Resolve the future *now* with ``None`` and mark it cancelled.

        Used to abandon races (e.g. a retransmit timer whose ack arrived
        first).  Safe against the original event firing later: timers
        created by :meth:`Engine.timeout` guard their heap entry with a
        ``done`` check, so nothing resolves twice.  Returns False if the
        future had already resolved.
        """
        if self._done:
            return False
        self._cancelled = True
        self.set_result(None)
        return True

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"future {self.name!r} not resolved")
        if self._exception is not None:
            raise self._exception
        return self._value

    def set_result(self, value: Any = None) -> None:
        """Resolve the future immediately (at the current simulated time)."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exception = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)


class SimProcess:
    """A running generator, driven by the engine.

    Yielding a ``SimProcess`` from another process joins it.  The process'
    return value is available as :attr:`result` once :attr:`done`.
    """

    __slots__ = ("engine", "gen", "name", "done", "result", "_exception",
                 "_waiters", "_blocked_on")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: list[Callable[["SimProcess"], None]] = []
        #: what the process is currently suspended on (SimFuture, SimProcess
        #: or None for a Delay); read by the deadlock diagnostics
        self._blocked_on: Any = None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def add_done_callback(self, cb: Callable[["SimProcess"], None]) -> None:
        if self.done:
            cb(self)
        else:
            self._waiters.append(cb)

    def _finish(self, result: Any, exc: Optional[BaseException]) -> None:
        self.done = True
        self.result = result
        self._exception = exc
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(self)


class Engine:
    """The discrete-event scheduler.

    Typical use::

        eng = Engine()
        procs = [eng.spawn(worker(i)) for i in range(4)]
        eng.run()
        print(eng.now, [p.result for p in procs])
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._live: dict[SimProcess, None] = {}  # insertion-ordered set
        self._trace: Optional[Callable[[float, str], None]] = None
        #: instrumentation counters (read by repro.prof; cheap to maintain)
        self.events_fired = 0
        self.processes_spawned = 0

    @property
    def _live_processes(self) -> int:
        return len(self._live)

    def live_processes(self) -> list[SimProcess]:
        """Processes spawned but not yet finished (spawn order)."""
        return list(self._live)

    # -- scheduling primitives ------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def future(self, name: str = "") -> SimFuture:
        return SimFuture(self, name)

    def timeout(self, delay: float) -> SimFuture:
        """A future that resolves after ``delay`` sim-seconds.

        The future may be resolved earlier by the caller (``set_result`` /
        ``cancel``) without harm: the scheduled heap entry checks ``done``
        before firing, so a timer abandoned by a race (ack-before-timeout)
        never resolves twice.
        """
        fut = self.future(f"timeout({delay})")

        def fire() -> None:
            if not fut.done:
                fut.set_result(None)

        self.schedule(delay, fire)
        return fut

    # -- processes -------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> SimProcess:
        """Register a generator as a process; it starts at the current time."""
        if not hasattr(gen, "send"):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        proc = SimProcess(self, gen, name or getattr(gen, "__name__", "proc"))
        self._live[proc] = None
        self.processes_spawned += 1
        self.schedule(0.0, lambda: self._step(proc, _SEND, None))
        return proc

    def kill(self, proc: SimProcess, exc: Optional[BaseException] = None) -> bool:
        """Terminate ``proc`` immediately (simulated rank crash).

        Closes the underlying generator (``finally`` blocks run, releasing
        any held resources such as ports) and finishes the process with
        ``exc`` as its exception (or a plain ``None`` result when no
        exception is given).  Joiners are woken; a stale resume callback
        from whatever the process was blocked on becomes a no-op.  Returns
        False if the process had already finished.
        """
        if proc.done:
            return False
        try:
            proc.gen.close()
        except Exception:  # noqa: BLE001 - a dying rank must not kill the sim
            pass
        self._live.pop(proc, None)
        proc._blocked_on = None
        proc._finish(None, exc)
        return True

    def _step(self, proc: SimProcess, mode: int, payload: Any) -> None:
        if proc.done:
            return  # killed while a resume callback was in flight
        proc._blocked_on = None
        try:
            if mode == _SEND:
                cmd = proc.gen.send(payload)
            else:
                cmd = proc.gen.throw(payload)
        except StopIteration as stop:
            self._live.pop(proc, None)
            proc._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagated to joiners
            self._live.pop(proc, None)
            had_waiters = bool(proc._waiters)
            proc._finish(None, exc)
            if not had_waiters:
                # nobody joined this process: abort the simulation loudly
                # rather than swallowing the error
                raise
            return
        self._dispatch(proc, cmd)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        # Resumptions from futures/processes are trampolined through the
        # event heap (at the current time) rather than run synchronously:
        # long chains of already-resolved futures would otherwise recurse
        # arbitrarily deep through set_result -> callback -> step -> ...
        if isinstance(cmd, Delay):
            self.schedule(cmd.duration, lambda: self._step(proc, _SEND, None))
        elif isinstance(cmd, SimFuture):
            proc._blocked_on = cmd
            cmd.add_done_callback(
                lambda fut: self.schedule(
                    0.0, lambda: self._resume_from_future(proc, fut)
                )
            )
        elif isinstance(cmd, SimProcess):
            proc._blocked_on = cmd
            cmd.add_done_callback(
                lambda p: self.schedule(
                    0.0, lambda: self._resume_from_process(proc, p)
                )
            )
        else:
            err = SimulationError(
                f"process {proc.name!r} yielded {cmd!r}; expected Delay, "
                "SimFuture or SimProcess"
            )
            self.schedule(0.0, lambda: self._step(proc, _THROW, err))

    def _resume_from_future(self, proc: SimProcess, fut: SimFuture) -> None:
        if fut._exception is not None:
            self._step(proc, _THROW, fut._exception)
        else:
            self._step(proc, _SEND, fut._value)

    def _resume_from_process(self, proc: SimProcess, child: SimProcess) -> None:
        if child._exception is not None:
            self._step(proc, _THROW, child._exception)
        else:
            self._step(proc, _SEND, child.result)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; return the final simulated time.

        Raises :class:`SimulationDeadlock` if processes remain alive with an
        empty heap (they are waiting on futures nobody will resolve).
        """
        while self._heap:
            t, _seq, fn = heapq.heappop(self._heap)
            if until is not None and t > until:
                # put it back; stop the clock at `until`
                heapq.heappush(self._heap, (t, _seq, fn))
                self.now = until
                return self.now
            self.now = t
            self.events_fired += 1
            fn()
        if self._live:
            blocked = [(p.name, _describe_wait(p._blocked_on))
                       for p in self._live]
            shown = blocked[:_DEADLOCK_DETAIL_LIMIT]
            details = "; ".join(f"{name!r} waiting on {what}"
                                for name, what in shown)
            if len(blocked) > len(shown):
                details += f"; ... and {len(blocked) - len(shown)} more"
            raise SimulationDeadlock(
                f"{len(blocked)} process(es) blocked forever at "
                f"t={self.now}: {details}",
                blocked=blocked,
            )
        return self.now

    def run_all(self, gens: Iterable[Generator], names: Optional[list[str]] = None) -> list[Any]:
        """Spawn every generator, run to completion, return their results."""
        gens = list(gens)
        names = names or [f"p{i}" for i in range(len(gens))]
        procs = [self.spawn(g, n) for g, n in zip(gens, names)]
        self.run()
        out = []
        for p in procs:
            if p._exception is not None:
                raise p._exception
            out.append(p.result)
        return out


_SEND = 0
_THROW = 1

#: cap on per-process detail in a SimulationDeadlock message
_DEADLOCK_DETAIL_LIMIT = 16


def _describe_wait(target: Any) -> str:
    """Human-readable description of what a process is suspended on."""
    if isinstance(target, SimFuture):
        return f"future {target.name!r}" if target.name else "an unnamed future"
    if isinstance(target, SimProcess):
        return f"process {target.name!r}"
    return "a pending event"
