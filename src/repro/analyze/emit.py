"""Machine-readable emitters shared by lint and dataflow: JSON and SARIF.

``to_json`` is the analyzer's own stable schema (``repro-analyze/1``)
including the extracted communication plans; ``to_sarif`` targets SARIF
2.1.0 so CI systems can annotate pull requests with file/line-accurate
findings (severity mapping: error->``error``, warning->``warning``,
info->``note``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analyze.findings import RULES, SEVERITIES, Report

JSON_SCHEMA = "repro-analyze/1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def report_to_dicts(report: Report) -> List[Dict[str, Any]]:
    return [
        {
            "rule": f.rule,
            "severity": f.severity,
            "message": f.message,
            "path": f.location,
            "line": f.line,
        }
        for f in report
    ]


def to_json(report: Report, plans: Optional[Sequence[Any]] = None,
            indent: int = 2) -> str:
    """The analyzer's own JSON schema, findings + plans + summary."""
    doc = {
        "schema": JSON_SCHEMA,
        "findings": report_to_dicts(report),
        "plans": [p.to_dict() for p in plans or []],
        "summary": {
            **{s: report.count(s) for s in SEVERITIES},
            "total": len(report),
            "ok": report.ok,
        },
    }
    return json.dumps(doc, indent=indent)


def _sarif_rules(report: Report) -> List[Dict[str, Any]]:
    used = sorted({f.rule for f in report})
    out = []
    for rule in used:
        severity, summary = RULES[rule]
        out.append({
            "id": rule,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[severity],
            },
        })
    return out


def to_sarif(report: Report, tool_version: str = "1.0.0",
             indent: int = 2) -> str:
    """SARIF 2.1.0 for CI annotation upload."""
    results = []
    for f in report:
        result: Dict[str, Any] = {
            "ruleId": f.rule,
            "level": _SARIF_LEVELS[f.severity],
            "message": {"text": f.message},
        }
        if f.location:
            physical: Dict[str, Any] = {
                "artifactLocation": {
                    "uri": f.location.replace("\\", "/"),
                },
            }
            if f.line is not None:
                physical["region"] = {"startLine": int(f.line)}
            result["locations"] = [{"physicalLocation": physical}]
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analyze",
                        "informationUri":
                            "https://example.invalid/repro-analyze",
                        "version": tool_version,
                        "rules": _sarif_rules(report),
                    },
                },
                "results": results,
            },
        ],
    }
    return json.dumps(doc, indent=indent)


__all__ = ["JSON_SCHEMA", "SARIF_VERSION", "report_to_dicts", "to_json",
           "to_sarif"]
