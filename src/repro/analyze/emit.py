"""Machine-readable emitters shared by lint and dataflow: JSON and SARIF.

``to_json`` is the analyzer's own stable schema (``repro-analyze/1``)
including the extracted communication plans; ``to_sarif`` targets SARIF
2.1.0 so CI systems can annotate pull requests with file/line-accurate
findings (severity mapping: error->``error``, warning->``warning``,
info->``note``).  ``to_plans`` serialises the PLAN1xx communication
plans as a ``repro-plans/1`` document whose per-bucket algorithm
predictions :meth:`repro.mpi.algorithms.tuning.TuningTable.preseed`
ingests to skip autotuner warmup sweeps.

All emitters sort findings by (path, line, rule, message) so the
documents are byte-identical across runs regardless of which pass
(intra- or interprocedural) produced a finding first.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analyze.findings import RULES, SEVERITIES, Finding, Report

JSON_SCHEMA = "repro-analyze/1"
PLANS_SCHEMA = "repro-plans/1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _ordered(report: Report) -> List[Finding]:
    """Deterministic emission order, independent of discovery order."""
    return sorted(report, key=lambda f: (f.location, f.line or 0, f.rule,
                                         f.message))


def report_to_dicts(report: Report) -> List[Dict[str, Any]]:
    return [
        {
            "rule": f.rule,
            "severity": f.severity,
            "message": f.message,
            "path": f.location,
            "line": f.line,
        }
        for f in _ordered(report)
    ]


def to_json(report: Report, plans: Optional[Sequence[Any]] = None,
            indent: int = 2) -> str:
    """The analyzer's own JSON schema, findings + plans + summary."""
    doc = {
        "schema": JSON_SCHEMA,
        "findings": report_to_dicts(report),
        "plans": [p.to_dict() for p in plans or []],
        "summary": {
            **{s: report.count(s) for s in SEVERITIES},
            "total": len(report),
            "ok": report.ok,
        },
    }
    return json.dumps(doc, indent=indent)


def to_plans(plans: Sequence[Any], indent: int = 2) -> str:
    """The ``repro-plans/1`` artifact: every extracted plan plus the
    per-bucket pre-seed predictions for the autotuner.

    A tuning-table bucket is seeded only when every statically planned
    call site landing in it agrees on the ``adaptive`` policy's
    prediction (the prediction the ties-or-beats CI gate already
    validates); disagreeing or prediction-free buckets are emitted with
    ``"algorithm": null`` so :meth:`TuningTable.preseed` skips them.
    """
    dicts = sorted((p.to_dict() for p in plans),
                   key=lambda d: (d["path"], d["line"], d["collective"]))
    buckets: Dict[str, Dict[str, Any]] = {}
    for plan in dicts:
        key = plan["bucket_key"]
        if not key:
            continue
        predicted = plan["decisions"].get("adaptive")
        bucket = buckets.setdefault(key, {
            "algorithm": predicted,
            "profile": plan["profile"],
            "sites": 0,
        })
        bucket["sites"] += 1
        if bucket["algorithm"] != predicted:
            bucket["algorithm"] = None  # call sites disagree: do not seed
    doc = {
        "schema": PLANS_SCHEMA,
        "plans": dicts,
        "buckets": {k: buckets[k] for k in sorted(buckets)},
    }
    return json.dumps(doc, indent=indent, sort_keys=False)


def _sarif_rules(report: Report) -> List[Dict[str, Any]]:
    used = sorted({f.rule for f in report})
    out = []
    for rule in used:
        severity, summary = RULES[rule]
        out.append({
            "id": rule,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[severity],
            },
        })
    return out


def to_sarif(report: Report, tool_version: str = "1.0.0",
             indent: int = 2) -> str:
    """SARIF 2.1.0 for CI annotation upload."""
    results = []
    for f in _ordered(report):
        result: Dict[str, Any] = {
            "ruleId": f.rule,
            "level": _SARIF_LEVELS[f.severity],
            "message": {"text": f.message},
        }
        if f.location:
            physical: Dict[str, Any] = {
                "artifactLocation": {
                    "uri": f.location.replace("\\", "/"),
                },
            }
            if f.line is not None:
                physical["region"] = {"startLine": int(f.line)}
            result["locations"] = [{"physicalLocation": physical}]
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analyze",
                        "informationUri":
                            "https://example.invalid/repro-analyze",
                        "version": tool_version,
                        "rules": _sarif_rules(report),
                    },
                },
                "results": results,
            },
        ],
    }
    return json.dumps(doc, indent=indent)


__all__ = ["JSON_SCHEMA", "PLANS_SCHEMA", "SARIF_VERSION", "report_to_dicts",
           "to_json", "to_plans", "to_sarif"]
