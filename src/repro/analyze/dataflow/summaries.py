"""Transitive per-function summaries over the project call graph.

:func:`repro.analyze.dataflow.engine.summarize_function` sees one level:
it answers "does *this body* wait parameter 0?".  That misses every
helper-of-a-helper, any request a function *returns*, and rank taint
flowing out through return values.  This module recomputes the
:class:`~repro.analyze.dataflow.engine.CallSummary` fields
*transitively*:

- ``waits_params``: the function waits parameter *i* directly **or**
  passes it (positionally or by keyword) into a callee that waits the
  receiving parameter;
- ``calls_collective`` / ``calls_blocking``: directly or through any
  resolved callee;
- ``returns_request`` / ``request_kind``: some ``return`` hands back a
  pending request the function created (directly via
  ``isend``/``irecv``/``isend_obj``, or by forwarding a callee's
  returned request) -- the caller adopts the wait obligation;
- ``returns_tainted``: some ``return`` value is rank-derived, so
  ``if helper(comm):`` guards are rank-dependent branches in callers.

Callee resolution covers plain-``Name`` calls and the two qualified
shapes of :func:`~repro.analyze.dataflow.engine.resolve_call_summary`:
module-qualified ``m.helper(...)`` (via the ``"m.helper"`` environment
keys built for module aliases) and same-class ``self.helper(...)``
(via ``"self.helper"`` keys, published only when exactly one top-level
class of the module defines the method).

Order and termination
---------------------

Summaries are computed bottom-up over the Tarjan condensation from
:func:`repro.analyze.dataflow.callgraph.strongly_connected`: every
callee's final summary exists before its callers are summarized.
Recursive components are iterated to a *local fixpoint*: members start
from their direct (one-level) summaries and are re-summarized against
each other until nothing changes.  All summary fields live in finite
lattices (bit flags, subsets of a fixed parameter list) and the
transfer is monotone, so the fixpoint exists; the iteration is still
capped at :data:`MAX_SCC_ITERATIONS` as a widening backstop -- hitting
the cap keeps the (sound, possibly less precise) current summaries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.analyze.dataflow.callgraph import (
    FunctionRef,
    ModuleInfo,
    Project,
    strongly_connected,
)
from repro.analyze.dataflow.engine import (
    BLOCKING_METHODS,
    COLLECTIVE_METHODS,
    WAIT_METHODS,
    CallSummary,
    resolve_call_summary,
)
from repro.analyze.dataflow.spmd import tainted_names

__all__ = ["MAX_SCC_ITERATIONS", "compute_summaries", "module_envs"]

#: widening backstop for recursive components (the lattice is finite, so
#: genuine divergence is impossible; this guards against pathological
#: component sizes)
MAX_SCC_ITERATIONS = 32

#: request creators, by shape (kept in sync with requests.py)
_WRAPPED_REQUEST_METHODS = {"isend": "send"}
_DIRECT_REQUEST_METHODS = {"irecv": "recv", "isend_obj": "send"}


def _unwrap_call(value: ast.AST) -> Optional[ast.Call]:
    if isinstance(value, (ast.YieldFrom, ast.Await)):
        value = value.value
    return value if isinstance(value, ast.Call) else None


def _creates_request(value: ast.AST,
                     env: Dict[str, CallSummary]) -> Optional[str]:
    """``"send"``/``"recv"`` when ``value`` evaluates to a fresh pending
    request, else None."""
    call = _unwrap_call(value)
    if call is None:
        return None
    wrapped = isinstance(value, (ast.YieldFrom, ast.Await))
    fn = call.func
    if isinstance(fn, ast.Attribute):
        if wrapped and fn.attr in _WRAPPED_REQUEST_METHODS:
            return _WRAPPED_REQUEST_METHODS[fn.attr]
        if not wrapped and fn.attr in _DIRECT_REQUEST_METHODS:
            return _DIRECT_REQUEST_METHODS[fn.attr]
    summary, _offset = resolve_call_summary(fn, env)
    if summary is not None and summary.returns_request:
        return summary.request_kind
    return None


def _request_locals(func: ast.AST,
                    env: Dict[str, CallSummary]) -> Dict[str, str]:
    """local name -> kind, for names ever assigned a fresh request."""
    out: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets: Iterable[ast.AST] = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        kind = _creates_request(value, env)
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = kind
    return out


def _iter_calls(func: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            yield node


def _summarize(name: str, func: ast.AST,
               env: Dict[str, CallSummary]) -> CallSummary:
    """Summarize one function body against callee summaries in ``env``."""
    # keyword-only params ride at the end: positional call-site mapping
    # stays index-accurate, keyword mapping finds them by name
    params = [a.arg for a in (func.args.posonlyargs + func.args.args
                              + func.args.kwonlyargs)]
    param_index = {p: i for i, p in enumerate(params)}
    waits: Set[int] = set()
    calls_collective = False
    calls_blocking = False

    for call in _iter_calls(func):
        fn = call.func
        if isinstance(fn, ast.Attribute):
            if fn.attr in COLLECTIVE_METHODS:
                calls_collective = True
            if fn.attr in BLOCKING_METHODS:
                calls_blocking = True
            if fn.attr in WAIT_METHODS:
                if isinstance(fn.value, ast.Name) \
                        and fn.value.id in param_index:
                    waits.add(param_index[fn.value.id])
                for arg in call.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and isinstance(
                                sub.ctx, ast.Load) \
                                and sub.id in param_index:
                            waits.add(param_index[sub.id])
        callee, offset = resolve_call_summary(fn, env)
        if callee is None:
            continue
        calls_collective |= callee.calls_collective
        calls_blocking |= callee.calls_blocking
        # map waited callee parameters back onto our own parameters
        # (``offset`` shifts positions past an implicit ``self``)
        for pos, arg in enumerate(call.args):
            if pos + offset in callee.waits_params \
                    and isinstance(arg, ast.Name) \
                    and arg.id in param_index:
                waits.add(param_index[arg.id])
        for kw in call.keywords:
            if kw.arg in callee.params \
                    and callee.params.index(kw.arg) in callee.waits_params \
                    and isinstance(kw.value, ast.Name) \
                    and kw.value.id in param_index:
                waits.add(param_index[kw.value.id])

    request_locals = _request_locals(func, env)
    returns_request = False
    request_kind = "send"
    tainted = tainted_names(func, env)
    returns_tainted = False
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        kind = _creates_request(node.value, env)
        if kind is None and isinstance(node.value, ast.Name):
            kind = request_locals.get(node.value.id)
        if kind is not None and not returns_request:
            returns_request = True
            request_kind = kind
        if _returns_tainted_value(node.value, tainted, env):
            returns_tainted = True
    return CallSummary(name, params, waits, calls_collective, calls_blocking,
                       returns_request=returns_request,
                       request_kind=request_kind,
                       returns_tainted=returns_tainted)


def _returns_tainted_value(value: ast.AST, tainted: Set[str],
                           env: Dict[str, CallSummary]) -> bool:
    for sub in ast.walk(value):
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "grank"):
            return True
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                and sub.id in tainted:
            return True
        if isinstance(sub, ast.Call):
            callee, _offset = resolve_call_summary(sub.func, env)
            if callee is not None and callee.returns_tainted:
                return True
    return False


def _env_for(project: Project, module: ModuleInfo,
             summaries: Dict[FunctionRef, CallSummary],
             ) -> Dict[str, CallSummary]:
    """Callee summaries visible inside ``module``, restricted to what
    has been computed so far.  Keys:

    - plain names for local functions and resolved ``from ... import``
      bindings;
    - ``"alias.fn"`` for every function of a module bound by
      ``import pkg.mod as alias`` / ``from pkg import mod`` that
      resolves inside the analyzed set;
    - ``"self.m"`` for methods defined by exactly *one* top-level class
      of this module (more than one definer is ambiguous at a bare
      ``self.m(...)`` site, so no key is published).
    """
    env: Dict[str, CallSummary] = {}
    for local in module.functions:
        ref = (module.path, local)
        if ref in summaries:
            env[local] = summaries[ref]
    for local in module.imports:
        ref = project.resolve(module, local)
        if ref is not None and ref in summaries and local not in env:
            env[local] = summaries[ref]
    # module-qualified callees: both import styles that bind a module
    aliases = dict(module.module_aliases)
    for local, (target, remote) in module.imports.items():
        if local not in aliases:
            aliases[local] = target + (remote,)
    for local, target in aliases.items():
        target_mod = project._resolve_module(target)
        if target_mod is None:
            continue
        for fname in target_mod.functions:
            ref = (target_mod.path, fname)
            key = f"{local}.{fname}"
            if ref in summaries and key not in env:
                env[key] = summaries[ref]
    # same-class method callees, where unambiguous in this module
    for mname, owners in module.method_owners.items():
        if len(owners) != 1:
            continue
        ref = (module.path, f"{owners[0]}.{mname}")
        if ref in summaries:
            env[f"self.{mname}"] = summaries[ref]
    return env


def compute_summaries(project: Project) -> Dict[FunctionRef, CallSummary]:
    """Transitive summaries for every top-level function in ``project``,
    computed bottom-up over the call-graph condensation."""
    edges = project.call_edges()
    summaries: Dict[FunctionRef, CallSummary] = {}
    for scc in strongly_connected(project.function_refs(), edges):
        # seed every member so mutually recursive calls resolve during
        # the component's local fixpoint iteration
        for ref in scc:
            module = project.modules[ref[0]]
            env = _env_for(project, module, summaries)
            summaries[ref] = _summarize(ref[1], project.function(ref), env)
        if len(scc) == 1 and scc[0] not in edges.get(scc[0], []):
            continue  # non-recursive: one pass is exact
        for _ in range(MAX_SCC_ITERATIONS):
            changed = False
            for ref in scc:
                module = project.modules[ref[0]]
                env = _env_for(project, module, summaries)
                new = _summarize(ref[1], project.function(ref), env)
                if new != summaries[ref]:
                    summaries[ref] = new
                    changed = True
            if not changed:
                break
    return summaries


def module_envs(project: Project,
                summaries: Optional[Dict[FunctionRef, CallSummary]] = None,
                ) -> Dict[str, Dict[str, CallSummary]]:
    """Per-module ``local name -> CallSummary`` environments, ready to
    prefill the rule passes' ``summary_cache``."""
    if summaries is None:
        summaries = compute_summaries(project)
    return {
        path: _env_for(project, module, summaries)
        for path, module in project.modules.items()
    }
