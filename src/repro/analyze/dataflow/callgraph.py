"""Project-wide call graph over the analyzed modules.

The interprocedural layer of the dataflow analyzer needs to know, for
every module-level function, *which other analyzed functions it may
call* -- including across modules via ``from pkg.mod import helper``
imports.  This module builds that graph:

1. :class:`Project` parses every analyzed source file once and indexes
   its top-level functions, its top-level *class methods* (as
   ``"Class.method"`` refs), its ``from ... import name`` bindings and
   its module aliases (``import pkg.mod as m`` / ``from pkg import
   mod``); absolute imports resolve by dotted-suffix match against the
   analyzed file set, relative imports resolve against the importing
   module's package path;
2. :meth:`Project.call_edges` extracts the call graph: one edge per
   call that resolves to an analyzed function -- plain-``Name`` calls
   (``helper(...)`` / ``yield from helper(...)``), module-qualified
   calls (``m.helper(...)`` where ``m`` is an indexed module alias) and
   same-class method calls (``self.helper(...)`` inside a method body).
   Other attribute calls (``obj.method(...)`` on arbitrary receivers)
   are dynamic dispatch and stay out of the graph -- they are handled
   by the method-name heuristics of the rule passes;
3. :func:`strongly_connected` (Tarjan) condenses recursion cycles so
   :mod:`repro.analyze.dataflow.summaries` can compute per-function
   summaries bottom-up: callees first, each recursive component iterated
   to its own local fixpoint (with widening, see there).

The graph is deliberately name-based and best-effort: an unresolvable
call simply has no edge, which the summary layer treats conservatively
(the callee is unknown, arguments escape).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FunctionRef", "ModuleInfo", "Project", "strongly_connected"]

#: a function is identified by (module path, function name)
FunctionRef = Tuple[str, str]


class ModuleInfo:
    """One parsed module: its AST, top-level functions, class methods,
    imports and module aliases."""

    __slots__ = ("path", "tree", "dotted", "functions", "imports",
                 "module_aliases", "methods", "method_owners")

    def __init__(self, path: str, tree: ast.Module, dotted: Tuple[str, ...]):
        self.path = path
        self.tree = tree
        #: dotted-name components inferred from the file path
        self.dotted = dotted
        #: top-level function definitions by name
        self.functions: Dict[str, ast.AST] = {
            node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        #: local name -> (absolute dotted module components, remote name)
        self.imports: Dict[str, Tuple[Tuple[str, ...], str]] = {}
        #: local name -> absolute dotted module components, for
        #: ``import pkg`` / ``import pkg.mod as m`` bindings
        self.module_aliases: Dict[str, Tuple[str, ...]] = {}
        #: ``"Class.method"`` -> method definition, for top-level classes
        self.methods: Dict[str, ast.AST] = {}
        #: bare method name -> class names defining it (ambiguity check
        #: for the per-module ``self.method`` resolution)
        self.method_owners: Dict[str, List[str]] = {}
        self._collect_imports()
        self._collect_methods()

    def _collect_imports(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        # `import pkg.mod as m`: `m` names the module
                        self.module_aliases[alias.asname] = tuple(
                            alias.name.split("."))
                    elif "." not in alias.name:
                        # `import pkg`: binds `pkg`; dotted plain imports
                        # (`import pkg.mod`) need a two-attribute chain
                        # at the call site and stay unresolved
                        self.module_aliases[alias.name] = (alias.name,)
                continue
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.level:
                # relative import: resolve against this module's package
                base = self.dotted[:-1]
                if node.level > 1:
                    base = base[: len(base) - (node.level - 1)]
                target = base + tuple(
                    node.module.split(".") if node.module else ())
            elif node.module:
                target = tuple(node.module.split("."))
            else:  # pragma: no cover - `from import` without module
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.imports[alias.asname or alias.name] = (target, alias.name)

    def _collect_methods(self) -> None:
        for node in self.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.methods[f"{node.name}.{item.name}"] = item
                    self.method_owners.setdefault(
                        item.name, []).append(node.name)


def _module_dotted(path: str) -> Tuple[str, ...]:
    """Dotted components of a file path (``src/repro/x/y.py`` ->
    ``("src", "repro", "x", "y")``; ``__init__.py`` names its package)."""
    parts = path.replace("\\", "/").rstrip("/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return tuple(p for p in parts if p not in ("", "."))


class Project:
    """The full set of modules one analysis run looks at."""

    def __init__(self, sources: Iterable[Tuple[str, str]]):
        """``sources`` is an iterable of ``(path, source_text)`` pairs;
        unparseable files raise :class:`SyntaxError` to the caller (the
        driver surfaces them as analysis errors)."""
        self.modules: Dict[str, ModuleInfo] = {}
        for path, text in sources:
            tree = ast.parse(text, filename=path)
            self.modules[path] = ModuleInfo(path, tree, _module_dotted(path))
        #: dotted suffix -> candidate module paths (for absolute imports)
        self._by_suffix: Dict[Tuple[str, ...], List[str]] = {}
        for path, info in self.modules.items():
            dotted = info.dotted
            for k in range(1, len(dotted) + 1):
                self._by_suffix.setdefault(dotted[-k:], []).append(path)

    # -- resolution ----------------------------------------------------------

    def _resolve_module(self, target: Tuple[str, ...]) -> Optional[ModuleInfo]:
        """The analyzed module an absolute/relative import target names,
        or None when it is ambiguous or external."""
        if not target:
            return None
        candidates = self._by_suffix.get(target, [])
        if len(candidates) == 1:
            return self.modules[candidates[0]]
        return None

    def resolve(self, module: ModuleInfo, name: str) -> Optional[FunctionRef]:
        """What analyzed function does ``name`` denote inside ``module``?

        Local top-level definitions shadow imports (matching Python's
        runtime semantics for the usual def-after-import layout)."""
        if name in module.functions:
            return (module.path, name)
        imported = module.imports.get(name)
        if imported is not None:
            target_mod, remote = imported
            target = self._resolve_module(target_mod)
            if target is not None and remote in target.functions:
                return (target.path, remote)
        return None

    def resolve_qualified(self, module: ModuleInfo, value: str,
                          attr: str) -> Optional[FunctionRef]:
        """What analyzed function does ``value.attr(...)`` denote, when
        ``value`` names a module (``import pkg.mod as m`` or
        ``from pkg import mod``)?  None for ordinary object receivers."""
        target = module.module_aliases.get(value)
        if target is None:
            imported = module.imports.get(value)
            if imported is None:
                return None
            # `from pkg import mod`: the bound name may itself be a module
            target = imported[0] + (imported[1],)
        target_mod = self._resolve_module(target)
        if target_mod is not None and attr in target_mod.functions:
            return (target_mod.path, attr)
        return None

    # -- the graph -----------------------------------------------------------

    def function_refs(self) -> List[FunctionRef]:
        out: List[FunctionRef] = []
        for path in sorted(self.modules):
            info = self.modules[path]
            out.extend((path, name) for name in sorted(info.functions))
            out.extend((path, name) for name in sorted(info.methods))
        return out

    def function(self, ref: FunctionRef) -> ast.AST:
        info = self.modules[ref[0]]
        fn = info.functions.get(ref[1])
        return fn if fn is not None else info.methods[ref[1]]

    def call_edges(self) -> Dict[FunctionRef, List[FunctionRef]]:
        """caller -> resolved callees: plain-``Name`` calls, module-
        qualified ``m.fn(...)`` calls and same-class ``self.m(...)``
        calls (for callers that are methods)."""
        edges: Dict[FunctionRef, List[FunctionRef]] = {}
        for ref in self.function_refs():
            module = self.modules[ref[0]]
            own_class = ref[1].split(".", 1)[0] if "." in ref[1] else None
            seen: List[FunctionRef] = []
            for node in ast.walk(self.function(ref)):
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                callee: Optional[FunctionRef] = None
                if isinstance(fn, ast.Name):
                    callee = self.resolve(module, fn.id)
                elif isinstance(fn, ast.Attribute) and isinstance(
                        fn.value, ast.Name):
                    if fn.value.id == "self" and own_class is not None:
                        key = f"{own_class}.{fn.attr}"
                        if key in module.methods:
                            callee = (ref[0], key)
                    else:
                        callee = self.resolve_qualified(
                            module, fn.value.id, fn.attr)
                if callee is not None and callee not in seen:
                    seen.append(callee)
            edges[ref] = seen
        return edges


def strongly_connected(
    nodes: Sequence[FunctionRef],
    edges: Dict[FunctionRef, List[FunctionRef]],
) -> List[List[FunctionRef]]:
    """Tarjan's algorithm, iterative.  Returns the SCCs in *reverse
    topological order of the condensation* -- callees before callers --
    which is exactly the bottom-up order the summary computation wants.
    """
    index: Dict[FunctionRef, int] = {}
    low: Dict[FunctionRef, int] = {}
    on_stack: Dict[FunctionRef, bool] = {}
    stack: List[FunctionRef] = []
    sccs: List[List[FunctionRef]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[FunctionRef, int]] = [(root, 0)]
        while work:
            node, ei = work[-1]
            if ei == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            succ = edges.get(node, [])
            while ei < len(succ):
                nxt = succ[ei]
                ei += 1
                if nxt not in index:
                    work[-1] = (node, ei)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if on_stack.get(nxt):
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: List[FunctionRef] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
