"""Gen-kill fixpoint lattices over a :class:`~repro.analyze.dataflow.cfg.CFG`.

Two classic bit-vector problems, both solved with a worklist iteration to
a fixpoint over finite powerset lattices (termination: transfer functions
are monotone, the lattice has finite height):

:func:`reaching_definitions`
    Forward, may.  A *definition* is any fact the caller attaches to a
    node (we use ``(name, node_index)`` pairs for variable definitions and
    richer tuples for request/buffer facts).  ``in[n] = U out[p]``,
    ``out[n] = gen[n] | (in[n] - kill[n])``.

:func:`liveness`
    Backward, may.  ``out[n] = U in[s]``, ``in[n] = use[n] | (out[n] -
    def[n])``.

Plus the AST plumbing the rule passes share: per-statement use/def
extraction and the **one-level call summary** for ``yield from`` helper
functions (does the helper wait a request parameter? does it perform a
collective or blocking call?), which is what lets the request-lifetime
and SPMD passes see through the codebase's generator-helper idiom.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Set

from repro.analyze.dataflow.cfg import CFG

__all__ = [
    "DataflowSolution",
    "CallSummary",
    "liveness",
    "reaching_definitions",
    "resolve_call_summary",
    "stmt_uses",
    "stmt_defs",
    "summarize_function",
]

Fact = Hashable


class DataflowSolution:
    """Per-node ``in``/``out`` fact sets of one solved dataflow problem."""

    def __init__(self, cfg: CFG, in_sets: List[Set[Fact]],
                 out_sets: List[Set[Fact]]):
        self.cfg = cfg
        self.in_sets = in_sets
        self.out_sets = out_sets

    def at_entry(self, index: int) -> FrozenSet[Fact]:
        return frozenset(self.in_sets[index])

    def at_exit(self, index: int) -> FrozenSet[Fact]:
        return frozenset(self.out_sets[index])


def reaching_definitions(
    cfg: CFG,
    gen: Dict[int, Set[Fact]],
    kill: Callable[[int, Set[Fact]], Set[Fact]],
) -> DataflowSolution:
    """Forward may-analysis.  ``gen`` maps node index -> facts generated
    there; ``kill(index, facts)`` returns the subset of incoming ``facts``
    the node kills (a callable so kills can depend on the fact payload,
    e.g. "kill every pending request named r")."""
    n = len(cfg.nodes)
    in_sets: List[Set[Fact]] = [set() for _ in range(n)]
    out_sets: List[Set[Fact]] = [set() for _ in range(n)]
    order = cfg.rpo()
    work = list(order)
    in_work = set(work)
    while work:
        idx = work.pop(0)
        in_work.discard(idx)
        node = cfg.nodes[idx]
        new_in: Set[Fact] = set()
        for p in node.pred:
            new_in |= out_sets[p]
        in_sets[idx] = new_in
        new_out = set(gen.get(idx, ())) | (new_in - kill(idx, new_in))
        if new_out != out_sets[idx]:
            out_sets[idx] = new_out
            for s in node.succ:
                if s not in in_work:
                    in_work.add(s)
                    work.append(s)
    return DataflowSolution(cfg, in_sets, out_sets)


def liveness(cfg: CFG) -> DataflowSolution:
    """Backward may-analysis over plain variable names: ``in[n]`` is the
    set of names live on entry to node ``n``."""
    n = len(cfg.nodes)
    use: List[Set[str]] = [set() for _ in range(n)]
    defs: List[Set[str]] = [set() for _ in range(n)]
    for node in cfg.nodes:
        if node.stmt is not None:
            use[node.index] = stmt_uses(node.stmt)
            defs[node.index] = stmt_defs(node.stmt)
    in_sets: List[Set[Fact]] = [set() for _ in range(n)]
    out_sets: List[Set[Fact]] = [set() for _ in range(n)]
    work = list(reversed(cfg.rpo()))
    in_work = set(work)
    while work:
        idx = work.pop(0)
        in_work.discard(idx)
        node = cfg.nodes[idx]
        new_out: Set[Fact] = set()
        for s in node.succ:
            new_out |= in_sets[s]
        out_sets[idx] = new_out
        new_in = use[idx] | (new_out - defs[idx])
        if new_in != in_sets[idx]:
            in_sets[idx] = new_in
            for p in node.pred:
                if p not in in_work:
                    in_work.add(p)
                    work.append(p)
    return DataflowSolution(cfg, in_sets, out_sets)


# -- per-statement use/def extraction ----------------------------------------

#: compound statements whose *bodies* live in other CFG nodes; only the
#: header expression belongs to this node
_HEADER_ONLY = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With,
                ast.AsyncWith, ast.Try, ast.Match)


def header_expressions(stmt: ast.AST) -> List[ast.AST]:
    """The expressions evaluated *at* a compound statement's header node
    (condition / iterable / context managers / match subject)."""
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: List[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def stmt_uses(stmt: ast.AST) -> Set[str]:
    """Names read by this statement (header expressions only for compound
    statements)."""
    out: Set[str] = set()
    for expr in header_expressions(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                out.add(sub.id)
    return out


def stmt_defs(stmt: ast.AST) -> Set[str]:
    """Names (re)bound by this statement."""
    out: Set[str] = set()
    for expr in header_expressions(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)):
                out.add(sub.id)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.add(stmt.name)
    return out


# -- one-level call summaries -------------------------------------------------

#: attribute names treated as collective operations on a communicator
COLLECTIVE_METHODS = frozenset({
    # NOTE: `split` is deliberately absent -- calling it with
    # rank-dependent colors under rank-dependent control flow is the
    # *intended* use of communicator splitting
    "barrier", "bcast", "allreduce", "gather_obj", "reduce",
    "allreduce_array", "scan", "gatherv", "scatterv", "allgather",
    "alltoall", "allgatherv", "alltoallw", "sparse_alltoall",
})

#: attribute names of blocking point-to-point / completion operations
BLOCKING_METHODS = frozenset({
    "send", "recv", "sendrecv", "recv_obj", "probe",
    "wait", "waitall", "waitany",
})

#: attribute names that complete a request
WAIT_METHODS = frozenset({"wait", "test", "waitall", "waitany"})


class CallSummary:
    """What one helper function does to its parameters -- the
    interprocedural summary consulted at ``helper(...)`` call sites.

    :func:`summarize_function` fills the one-level (direct-effects-only)
    fields; :mod:`repro.analyze.dataflow.summaries` recomputes them
    *transitively* over the project call graph and additionally fills
    ``returns_request`` / ``returns_tainted``.
    """

    __slots__ = ("name", "params", "waits_params", "calls_collective",
                 "calls_blocking", "returns_request", "request_kind",
                 "returns_tainted")

    def __init__(self, name: str, params: List[str],
                 waits_params: Set[int], calls_collective: bool,
                 calls_blocking: bool, returns_request: bool = False,
                 request_kind: str = "send",
                 returns_tainted: bool = False):
        self.name = name
        self.params = params
        #: positional parameter indices on which .wait()/.test() is called
        #: (directly or through a callee that waits them)
        self.waits_params = waits_params
        self.calls_collective = calls_collective
        self.calls_blocking = calls_blocking
        #: the function may return a pending request it created -- the
        #: caller adopts the wait obligation
        self.returns_request = returns_request
        #: "send" / "recv" for a returned request
        self.request_kind = request_kind
        #: the return value is rank-derived (the helper reads comm.rank)
        self.returns_tainted = returns_tainted

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CallSummary):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f)
                   for f in CallSummary.__slots__)

    def __hash__(self) -> int:  # pragma: no cover - summaries live in dicts
        return hash((self.name, tuple(self.params)))


def summarize_function(func: ast.AST) -> CallSummary:
    """Build the flow-insensitive summary of one module-level function."""
    params = [a.arg for a in (func.args.posonlyargs + func.args.args
                              + func.args.kwonlyargs)]
    waits: Set[int] = set()
    calls_collective = False
    calls_blocking = False
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            continue
        if fn.attr in COLLECTIVE_METHODS:
            calls_collective = True
        if fn.attr in BLOCKING_METHODS:
            calls_blocking = True
        if fn.attr in WAIT_METHODS:
            # req.wait() on a parameter name, or Request.waitall(param)
            if isinstance(fn.value, ast.Name) and fn.value.id in params:
                waits.add(params.index(fn.value.id))
            for arg in node.args:
                roots = {s.id for s in ast.walk(arg)
                         if isinstance(s, ast.Name)
                         and isinstance(s.ctx, ast.Load)}
                for root in roots & set(params):
                    waits.add(params.index(root))
    return CallSummary(getattr(func, "name", "<lambda>"), params, waits,
                       calls_collective, calls_blocking)


def resolve_call_summary(fn: ast.AST,
                         summaries: Dict[str, CallSummary],
                         ) -> "tuple[Optional[CallSummary], int]":
    """The callee summary a call's ``func`` expression denotes, plus the
    *argument offset* mapping call-site positions to callee parameter
    indices.

    Three call shapes resolve (everything else is ``(None, 0)``):

    - ``helper(...)``: plain-name lookup, offset 0;
    - ``m.helper(...)``: qualified lookup under the ``"m.helper"`` key
      the summary environment carries for module aliases, offset 0;
    - ``self.helper(...)``: qualified lookup under ``"self.helper"``
      (present when exactly one top-level class of the module defines
      the method); offset 1 when the callee's first parameter is
      ``self``, since call-site argument 0 lands on parameter 1.
    """
    if isinstance(fn, ast.Name):
        return summaries.get(fn.id), 0
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        summary = summaries.get(f"{fn.value.id}.{fn.attr}")
        if summary is not None:
            offset = 1 if (fn.value.id == "self" and summary.params
                           and summary.params[0] == "self") else 0
            return summary, offset
    return None, 0


def summaries_for(module_funcs: Dict[str, ast.AST],
                  cache: Optional[Dict[str, CallSummary]] = None,
                  ) -> Dict[str, CallSummary]:
    """Summaries for every module-level function (memoised per module)."""
    if cache is not None and cache:
        return cache
    out = {name: summarize_function(fn) for name, fn in module_funcs.items()}
    if cache is not None:
        cache.update(out)
    return out
