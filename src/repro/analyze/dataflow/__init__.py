"""Whole-program dataflow analysis: CFG + fixpoint engine + rule passes.

This package is the *flow-sensitive* tier of the analyzer.  Where
:mod:`repro.analyze.lint` looks at one statement at a time, the passes
here build a control-flow graph per function (:mod:`.cfg`), run gen-kill
fixpoint lattices over it (:mod:`.engine` -- reaching definitions and
liveness), and ask path questions the lint tier cannot:

``repro.analyze.dataflow.requests``  (REQ1xx / BUF1xx)
    Request-lifetime analysis: a nonblocking request that can reach
    function exit, or be rebound, without ``wait()``/``test()`` executing
    on *every* path; generator objects assigned but never driven (the
    dataflow-complete LNT003); and writes to a send buffer between the
    ``isend`` and the wait that completes it.

``repro.analyze.dataflow.spmd``  (SPMD1xx)
    Rank-divergence analysis: a collective or blocking call dominated by
    a branch whose condition is tainted by ``comm.rank`` -- the static
    twin of the runtime COL001/COL002 checks -- and rank-dependent early
    exits ahead of a collective.

``repro.analyze.dataflow.plans``  (PLAN1xx)
    Static communication-plan extraction: per collective call site,
    symbolically evaluate counts/datatypes where constant, predict the
    volume profile, report which registry algorithm each selection
    policy would pick, and warn on sparse / heavy-outlier / low-density
    shapes per the paper's section 4.1/4.2 cost model.

Entry points: :func:`analyze_source` / :func:`analyze_file` /
:func:`analyze_paths` mirror the lint API and share its suppression
mechanism (``# analyze: ignore[CODE]``).
"""

from repro.analyze.dataflow.cfg import CFG, CFGNode, build_cfg, function_cfgs
from repro.analyze.dataflow.callgraph import Project, strongly_connected
from repro.analyze.dataflow.driver import (
    analyze_file,
    analyze_paths,
    analyze_source,
    analyze_tree,
)
from repro.analyze.dataflow.engine import (
    DataflowSolution,
    liveness,
    reaching_definitions,
)
from repro.analyze.dataflow.plans import CommunicationPlan, extract_plans
from repro.analyze.dataflow.summaries import compute_summaries, module_envs

__all__ = [
    "CFG",
    "CFGNode",
    "CommunicationPlan",
    "DataflowSolution",
    "Project",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "analyze_tree",
    "build_cfg",
    "compute_summaries",
    "extract_plans",
    "function_cfgs",
    "liveness",
    "module_envs",
    "reaching_definitions",
    "strongly_connected",
]
