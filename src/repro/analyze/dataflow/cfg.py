"""Control-flow graphs over Python function ASTs.

One :class:`CFG` per function body.  Nodes are single simple statements
(plus synthetic ``entry`` / ``exit`` nodes and header nodes for branch and
loop conditions); edges cover ``if``/``else``, ``while``/``for`` (with the
loop back-edge and the ``else`` clause), ``break``/``continue``,
``return``/``raise``, ``with``, ``match``, and ``try``/``except``/
``else``/``finally``.

``try`` modelling is deliberately conservative-but-simple:

- every statement of the ``try`` body gets an exceptional edge to each
  handler (an exception may fire anywhere inside the body),
- the ``finally`` suite post-dominates body, ``else`` and handlers: normal
  completion of any of them routes *through* the finally block before
  continuing, so a ``finally: yield from req.wait()`` kills a pending
  request on every path,
- ``return`` inside a ``try`` with a ``finally`` routes through the
  finally suite before reaching ``exit``.

The CFG is intraprocedural; :mod:`repro.analyze.dataflow.engine` adds a
one-level call summary for ``yield from`` helper functions on top.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "function_cfgs"]


class CFGNode:
    """One CFG node: a single statement (or a synthetic marker)."""

    __slots__ = ("index", "stmt", "kind", "succ", "pred")

    def __init__(self, index: int, stmt: Optional[ast.AST], kind: str):
        self.index = index
        #: the AST statement (None for entry/exit)
        self.stmt = stmt
        #: "entry" | "exit" | "stmt" | "branch" | "loop"
        self.kind = kind
        self.succ: List[int] = []
        self.pred: List[int] = []

    @property
    def line(self) -> Optional[int]:
        return getattr(self.stmt, "lineno", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.kind if self.stmt is None else ast.dump(self.stmt)[:40]
        return f"<CFGNode {self.index} {label}>"


class CFG:
    """A per-function control-flow graph."""

    def __init__(self, name: str, func: Optional[ast.AST] = None):
        self.name = name
        #: the FunctionDef/AsyncFunctionDef this graph was built from
        self.func = func
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")

    # -- construction --------------------------------------------------------

    def _new(self, stmt: Optional[ast.AST], kind: str) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)
            self.nodes[dst].pred.append(src)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes)

    def statements(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.stmt is not None]

    def rpo(self) -> List[int]:
        """Reverse postorder from entry (good iteration order for forward
        problems; unreachable nodes are appended at the end)."""
        seen = set()
        order: List[int] = []

        def dfs(i: int) -> None:
            stack = [(i, iter(self.nodes[i].succ))]
            seen.add(i)
            while stack:
                idx, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(self.nodes[nxt].succ)))
                        advanced = True
                        break
                if not advanced:
                    order.append(idx)
                    stack.pop()

        dfs(self.entry.index)
        order.reverse()
        for node in self.nodes:
            if node.index not in seen:
                order.append(node.index)
        return order


class _LoopFrame:
    __slots__ = ("head", "after")

    def __init__(self, head: int, after: int):
        self.head = head      # `continue` target
        self.after = after    # `break` target


class _Builder:
    """Recursive statement-list walker threading `frontier` sets of node
    indices whose normal successor is the next statement."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loops: List[_LoopFrame] = []
        #: innermost enclosing finally suites (outermost first); `return`
        #: routes through each before reaching exit
        self.finals: List[List[ast.stmt]] = []

    # each _emit_* returns the out-frontier: node indices that fall through

    def build(self, body: List[ast.stmt]) -> None:
        frontier = self._emit_block(body, [self.cfg.entry.index])
        for idx in frontier:
            self.cfg.add_edge(idx, self.cfg.exit.index)

    def _emit_block(self, body: List[ast.stmt],
                    frontier: List[int]) -> List[int]:
        for stmt in body:
            if not frontier:
                break  # dead code after return/raise/break/continue
            frontier = self._emit_stmt(stmt, frontier)
        return frontier

    def _link(self, frontier: List[int], node: CFGNode) -> None:
        for idx in frontier:
            self.cfg.add_edge(idx, node.index)

    def _emit_stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.cfg._new(stmt, "stmt")
            self._link(frontier, node)
            return self._emit_block(stmt.body, [node.index])
        if isinstance(stmt, ast.Match):
            return self._emit_match(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.cfg._new(stmt, "stmt")
            self._link(frontier, node)
            out = [node.index]
            # the exit path routes through every enclosing finally suite;
            # each suite is emitted with only the *outer* finals in scope
            # so a return inside a finally cannot recurse into itself
            saved = self.finals
            for k in range(len(saved) - 1, -1, -1):
                self.finals = saved[:k]
                out = self._emit_block(saved[k], out)
            self.finals = saved
            for idx in out:
                self.cfg.add_edge(idx, self.cfg.exit.index)
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg._new(stmt, "stmt")
            self._link(frontier, node)
            if self.loops:
                self.cfg.add_edge(node.index, self.loops[-1].after)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new(stmt, "stmt")
            self._link(frontier, node)
            if self.loops:
                self.cfg.add_edge(node.index, self.loops[-1].head)
            return []
        # nested function/class definitions are opaque single statements
        # (their bodies get their own CFGs via function_cfgs)
        node = self.cfg._new(stmt, "stmt")
        self._link(frontier, node)
        return [node.index]

    def _emit_if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        head = self.cfg._new(stmt, "branch")
        self._link(frontier, head)
        out = self._emit_block(stmt.body, [head.index])
        if stmt.orelse:
            out += self._emit_block(stmt.orelse, [head.index])
        else:
            out = out + [head.index]
        return out

    def _emit_match(self, stmt: ast.Match, frontier: List[int]) -> List[int]:
        head = self.cfg._new(stmt, "branch")
        self._link(frontier, head)
        out: List[int] = []
        exhaustive = False
        for case in stmt.cases:
            out += self._emit_block(case.body, [head.index])
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                exhaustive = True
        if not exhaustive:
            out.append(head.index)
        return out

    def _emit_loop(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        head = self.cfg._new(stmt, "loop")
        self._link(frontier, head)
        # `after` anchor collects break targets; it is a synthetic no-op
        after = self.cfg._new(None, "stmt")
        after.kind = "join"
        self.loops.append(_LoopFrame(head.index, after.index))
        body_out = self._emit_block(stmt.body, [head.index])
        self.loops.pop()
        for idx in body_out:  # back edge
            self.cfg.add_edge(idx, head.index)
        # loop condition false / iterator exhausted -> else suite -> after
        orelse = getattr(stmt, "orelse", None) or []
        else_out = self._emit_block(orelse, [head.index])
        for idx in else_out:
            self.cfg.add_edge(idx, after.index)
        return [after.index]

    def _emit_try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        body_out = self._pushed_finally(stmt, lambda: self._emit_try_core(
            stmt, frontier))
        if stmt.finalbody:
            return self._emit_block(stmt.finalbody, body_out)
        return body_out

    def _pushed_finally(self, stmt: ast.Try, emit) -> List[int]:
        if stmt.finalbody:
            self.finals.append(stmt.finalbody)
            try:
                return emit()
            finally:
                self.finals.pop()
        return emit()

    def _emit_try_core(self, stmt: ast.Try,
                       frontier: List[int]) -> List[int]:
        # body statements, collecting every node for exceptional edges
        start = len(self.cfg.nodes)
        body_out = self._emit_block(stmt.body, frontier)
        body_nodes = [n.index for n in self.cfg.nodes[start:]
                      if n.stmt is not None]
        out: List[int] = []
        # handlers: an exception may fire *during* any body statement, in
        # which case that statement's effects (its assignments) have not
        # happened -- so the exceptional edge originates from each body
        # statement's predecessors (its in-state), not the statement
        # itself.  The pre-try frontier covers "before the first one".
        exc_sources: set = set(frontier)
        for idx in body_nodes:
            exc_sources.update(self.cfg.nodes[idx].pred)
        for handler in stmt.handlers:
            h = self.cfg._new(handler, "stmt")
            for idx in sorted(exc_sources):
                self.cfg.add_edge(idx, h.index)
            out += self._emit_block(handler.body, [h.index])
        # normal completion -> else suite
        out += self._emit_block(stmt.orelse, body_out)
        return out


def build_cfg(func: ast.AST, name: Optional[str] = None) -> CFG:
    """Build the CFG of one function (or an ``ast.Module`` top level)."""
    label = name or getattr(func, "name", "<module>")
    cfg = CFG(label, func=func)
    _Builder(cfg).build(func.body)
    return cfg


def function_cfgs(tree: ast.Module) -> List[Tuple[CFG, Dict[str, ast.AST]]]:
    """CFGs for every function in a module, each paired with the map of
    sibling module-level functions (for one-level call summaries)."""
    module_funcs: Dict[str, ast.AST] = {
        node.name: node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    out: List[Tuple[CFG, Dict[str, ast.AST]]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((build_cfg(node), module_funcs))
    return out
