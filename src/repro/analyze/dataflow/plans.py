"""Static communication-plan extraction (PLAN1xx).

The paper's section 4.1/4.2 lesson is that the library already *knows*
the layout and volume set before communicating; this pass exploits the
same knowledge at analysis time.  For every collective / typed-send call
site whose counts and datatypes are statically constant, it:

1. symbolically evaluates the count list / datatype constructor chain
   (a small constant-propagation interpreter over module- and
   function-level assignments of literals, arithmetic and
   ``repro.datatypes`` constructors),
2. materialises the predicted per-peer **volume profile** in bytes and
   classifies it with the autotuner's bucket heuristic
   (:func:`repro.mpi.algorithms.tuning.volume_profile`),
3. builds a real :class:`SelectionContext` and reports which registry
   algorithm each selection policy (``mpich`` on the baseline config,
   ``adaptive`` on the optimized config) would pick, and
4. warns on pathological shapes:

   - **PLAN101** (warning): a sparse volume set (mostly-zero counts)
     feeding an Alltoallw-style exchange -- the zero-byte
     synchronisation traffic the binned algorithm of section 4.2.2
     removes,
   - **PLAN102** (warning): a heavy-outlier volume set feeding an
     Allgatherv-style collective -- the ring algorithm serialises on the
     largest contribution (Eq. 1 territory),
   - **PLAN103** (warning): a constant low-density datatype at a
     communication call site (SIG004's cost model applied where the data
     actually moves).

The extracted :class:`CommunicationPlan` records are cross-checkable
against a live :class:`repro.mpi.trace.MessageTrace`: the plan's
``volumes`` are exactly the per-peer byte counts the trace observes when
the call executes with the same arguments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analyze.findings import Report
from repro.analyze.signatures import DENSITY_MIN_BLOCKS, DENSITY_MIN_MEAN

#: call-site method names analysed, mapped to their plan "shape"
PLANNED_METHODS = {
    "allgatherv": "pervolume",   # counts = per-rank contribution
    "gatherv": "pervolume",
    "scatterv": "pervolume",
    "alltoallw": "perpeer",      # specs = per-peer messages
    "isend": "p2p",
    "send": "p2p",
    "irecv": "p2p",
    "recv": "p2p",
}

#: guard against materialising absurd constant datatypes
MAX_STATIC_BLOCKS = 100_000


@dataclass
class CommunicationPlan:
    """One statically predicted communication at a call site."""

    path: str
    line: int
    function: str
    collective: str
    #: element counts when the call carries a count vector (else None)
    counts: Optional[List[int]] = None
    #: predicted per-peer/per-rank volumes in bytes
    volumes: Optional[List[int]] = None
    total_bytes: int = 0
    #: autotuner bucket class: zero / sparse / outlier / uniform
    profile: str = ""
    #: repr of the statically evaluated datatype (if any)
    datatype: Optional[str] = None
    dtype_size: int = 8
    contiguous: bool = True
    #: policy name -> algorithm the registry would select
    decisions: Dict[str, str] = field(default_factory=dict)
    #: number of peers/ranks the volume set covers (0 when unknown)
    size: int = 0
    #: registry collective the call site dispatches through ("" for p2p)
    registry_collective: str = ""
    #: autotuner tuning-table bucket this call site lands in ("" when the
    #: volume set is not statically known)
    bucket_key: str = ""
    #: the materialised Datatype object (not serialised)
    datatype_obj: Any = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "collective": self.collective,
            "counts": self.counts,
            "volumes": self.volumes,
            "total_bytes": self.total_bytes,
            "profile": self.profile,
            "datatype": self.datatype,
            "dtype_size": self.dtype_size,
            "contiguous": self.contiguous,
            "decisions": self.decisions,
            "size": self.size,
            "registry_collective": self.registry_collective,
            "bucket_key": self.bucket_key,
        }


# -- constant evaluation ------------------------------------------------------

class _NotConstant(Exception):
    pass


class _ConstEval:
    """Tiny abstract interpreter: literals, list arithmetic, and the
    ``repro.datatypes`` constructors."""

    def __init__(self, env: Dict[str, Any]):
        self.env = env
        self._datatypes = _datatype_namespace()

    def eval(self, node: ast.AST) -> Any:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                    node.value, bool):
                return node.value
            raise _NotConstant
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self._datatypes and not callable(
                    self._datatypes[node.id]):
                return self._datatypes[node.id]  # DOUBLE, INT, ...
            raise _NotConstant
        if isinstance(node, (ast.List, ast.Tuple)):
            return [self.eval(e) for e in node.elts]
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            v = self.eval(node.operand)
            if isinstance(v, (int, float)):
                return -v
            raise _NotConstant
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.ListComp):
            raise _NotConstant  # could be supported; keep v1 simple
        raise _NotConstant

    def _binop(self, node: ast.BinOp) -> Any:
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = node.op
        if isinstance(op, ast.Mult) and (
                isinstance(left, list) or isinstance(right, list)):
            seq, n = (left, right) if isinstance(left, list) else (right, left)
            if isinstance(n, int) and 0 <= n * len(seq) <= MAX_STATIC_BLOCKS:
                return seq * n  # [0] * nprocs
            raise _NotConstant
        if isinstance(left, list) and isinstance(right, list) \
                and isinstance(op, ast.Add):
            return left + right
        if not isinstance(left, (int, float)) or not isinstance(
                right, (int, float)):
            raise _NotConstant
        try:
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.FloorDiv):
                return left // right
            if isinstance(op, ast.Mod):
                return left % right
            if isinstance(op, ast.Pow) and abs(right) <= 64:
                return left ** right
        except (ZeroDivisionError, OverflowError) as exc:
            raise _NotConstant from exc
        raise _NotConstant

    def _call(self, node: ast.Call) -> Any:
        fn = node.func
        name = None
        if isinstance(fn, ast.Name):
            name = fn.id
        elif isinstance(fn, ast.Attribute):
            name = fn.attr
        ctor = self._datatypes.get(name) if name else None
        if ctor is None or not callable(ctor):
            raise _NotConstant
        args = [self.eval(a) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value) for kw in node.keywords
                  if kw.arg is not None}
        if _estimated_blocks(name, args) > MAX_STATIC_BLOCKS:
            raise _NotConstant
        try:
            return ctor(*args, **kwargs)
        except Exception as exc:  # bad constant args: not our finding
            raise _NotConstant from exc


def _estimated_blocks(name: str, args: List[Any]) -> int:
    if name in ("Vector", "HVector", "Contiguous") and args \
            and isinstance(args[0], (int, float)):
        return int(args[0])
    if name in ("Indexed", "HIndexed") and args and isinstance(args[0], list):
        return len(args[0])
    return 1


def _datatype_namespace() -> Dict[str, Any]:
    try:
        import repro.datatypes as dt
    except Exception:  # pragma: no cover - datatypes always importable here
        return {}
    names = ("Vector", "HVector", "Contiguous", "Indexed", "HIndexed",
             "Struct", "DOUBLE", "FLOAT", "INT", "CHAR", "BYTE", "LONG")
    return {n: getattr(dt, n) for n in names if hasattr(dt, n)}


def _constant_env(func: ast.AST, module: ast.Module) -> Dict[str, Any]:
    """Constants visible inside ``func``: module-level then local simple
    assignments, each evaluated against what is known so far.  A name
    assigned twice to different constants is dropped (flow-insensitive
    safety)."""
    env: Dict[str, Any] = {}
    poisoned: set = set()

    def feed(body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets
                           if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                    and isinstance(stmt.target, ast.Name):
                targets, value = [stmt.target.id], stmt.value
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.target, ast.Name):
                poisoned.add(stmt.target.id)
                continue
            else:
                continue
            for name in targets:
                if name in poisoned:
                    continue
                try:
                    val = _ConstEval(env).eval(value)
                except _NotConstant:
                    env.pop(name, None)
                    poisoned.add(name)
                    continue
                if name in env and env[name] != val:
                    env.pop(name)
                    poisoned.add(name)
                else:
                    env[name] = val

    feed(module.body)
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While, ast.comprehension)):
            # loop targets change per iteration
            tgt = getattr(node, "target", None)
            if isinstance(tgt, ast.Name):
                poisoned.add(tgt.id)
                env.pop(tgt.id, None)
    feed([s for s in ast.walk(func) if isinstance(
        s, (ast.Assign, ast.AnnAssign, ast.AugAssign))])
    return env


# -- plan extraction ----------------------------------------------------------

def _predict_decisions(collective: str, volumes: List[int],
                       dtype_size: int, contiguous: bool) -> Dict[str, str]:
    """Which algorithm would each selection policy pick for this call?"""
    from repro.mpi.algorithms.policies import AdaptivePolicy, MpichPolicy
    from repro.mpi.algorithms.registry import REGISTRY, SelectionContext
    from repro.mpi.config import MPIConfig
    from repro.util.costmodel import CostModel

    if collective not in REGISTRY.collectives():
        return {}
    ctx = SelectionContext(
        collective=collective, size=len(volumes),
        volumes=tuple(int(v) for v in volumes), dtype_size=dtype_size,
        contiguous=contiguous, config=MPIConfig.baseline(),
        cost=CostModel(),
    )
    out: Dict[str, str] = {}
    try:
        out["mpich"] = MpichPolicy(MPIConfig.baseline()).decide(ctx).algorithm
        out["adaptive"] = AdaptivePolicy(
            MPIConfig.optimized()).decide(ctx).algorithm
    except Exception:  # no applicable algorithm for this N: no prediction
        return out
    return out


def _datatype_of_call(call: ast.Call, ev: _ConstEval) -> Optional[Any]:
    from repro.datatypes.typemap import Datatype

    for kw in call.keywords:
        if kw.arg == "datatype":
            try:
                value = ev.eval(kw.value)
            except _NotConstant:
                return None
            return value if isinstance(value, Datatype) else None
    return None


def extract_plans(tree: ast.Module, path: str,
                  report: Optional[Report] = None,
                  ) -> Tuple[List[CommunicationPlan], Report]:
    """Extract static communication plans (and PLAN1xx findings) from one
    module AST."""
    report = report if report is not None else Report()
    plans: List[CommunicationPlan] = []
    functions = [n for n in ast.walk(tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    for func in functions:
        env = _constant_env(func, tree)
        ev = _ConstEval(env)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            shape = PLANNED_METHODS.get(method)
            if shape is None:
                continue
            plan = _plan_call(node, method, shape, func.name, path, ev)
            if plan is None:
                continue
            plans.append(plan)
            _plan_findings(plan, report)
    return plans, report


def _plan_call(node: ast.Call, method: str, shape: str, fname: str,
               path: str, ev: _ConstEval) -> Optional[CommunicationPlan]:
    datatype = _datatype_of_call(node, ev)
    dtype_size = datatype.size if datatype is not None else 8
    contiguous = datatype.is_contiguous() if datatype is not None else True
    counts: Optional[List[int]] = None
    if shape == "pervolume":
        counts_node = _argument(node, method)
        if counts_node is None:
            return None
        try:
            counts = ev.eval(counts_node)
        except _NotConstant:
            counts = None
        if not isinstance(counts, list) or not all(
                isinstance(c, int) and c >= 0 for c in counts) or not counts:
            counts = None
    if counts is None and datatype is None:
        return None  # nothing statically known: no plan
    volumes = [c * dtype_size for c in counts] if counts is not None else None
    plan = CommunicationPlan(
        path=path, line=node.lineno, function=fname, collective=method,
        counts=counts, volumes=volumes,
        total_bytes=sum(volumes) if volumes else 0,
        datatype=repr(datatype) if datatype is not None else None,
        dtype_size=dtype_size, contiguous=contiguous,
        datatype_obj=datatype,
    )
    if volumes is not None:
        from repro.mpi.algorithms.tuning import (
            size_bucket,
            total_bucket,
            volume_profile,
        )

        plan.profile = volume_profile(volumes)
        registry_name = "allgatherv" if method in (
            "allgatherv", "gatherv", "scatterv") else method
        plan.decisions = _predict_decisions(
            registry_name, volumes, dtype_size, contiguous)
        plan.size = len(volumes)
        plan.registry_collective = registry_name
        plan.bucket_key = (
            f"{registry_name}|p{size_bucket(plan.size)}"
            f"|b{total_bucket(plan.total_bytes)}|{plan.profile}"
        )
    return plan


#: positional index / keyword of the count vector per method
_COUNT_ARGS = {"allgatherv": (2, "counts"), "gatherv": (2, "counts"),
               "scatterv": (1, "counts")}


def _argument(node: ast.Call, method: str) -> Optional[ast.AST]:
    pos, kw_name = _COUNT_ARGS[method]
    for kw in node.keywords:
        if kw.arg == kw_name:
            return kw.value
    if len(node.args) > pos:
        return node.args[pos]
    return None


def _plan_findings(plan: CommunicationPlan, report: Report) -> None:
    decisions = ", ".join(
        f"{p}->{a}" for p, a in sorted(plan.decisions.items())) or "n/a"
    if plan.profile == "sparse":
        nz = sum(1 for v in plan.volumes if v > 0)
        report.add(
            "PLAN101",
            f"{plan.collective}() at this site has a statically sparse "
            f"volume set ({nz}/{len(plan.volumes)} peers nonzero): most "
            "messages are zero-byte synchronisation traffic; the binned "
            "algorithm (section 4.2.2) skips the zero bin entirely "
            f"[policies: {decisions}]",
            location=plan.path, line=plan.line,
            key=("PLAN101", plan.path, plan.line),
        )
    elif plan.profile == "outlier":
        vmax = max(plan.volumes)
        mean = plan.total_bytes / max(1, len(plan.volumes))
        report.add(
            "PLAN102",
            f"{plan.collective}() at this site has a heavy-outlier volume "
            f"set (max {vmax} B vs mean {mean:.0f} B): ring-style "
            "algorithms serialise on the largest contribution (Eq. 1); "
            f"prefer an adaptive/autotuned policy [policies: {decisions}]",
            location=plan.path, line=plan.line,
            key=("PLAN102", plan.path, plan.line),
        )
    if plan.datatype_obj is not None:
        blocks = plan.datatype_obj.flatten()
        mean_len = blocks.size / max(1, blocks.num_blocks)
        if blocks.num_blocks >= DENSITY_MIN_BLOCKS \
                and mean_len < DENSITY_MIN_MEAN:
            report.add(
                "PLAN103",
                f"{plan.collective}() at this site moves a statically "
                f"low-density datatype ({plan.datatype}: "
                f"{blocks.num_blocks} blocks of mean length "
                f"{mean_len:.1f} B); the section-4.1 cost model predicts "
                "pack slower than copy here -- restructure toward longer "
                "runs or enable the dual-context engine",
                location=plan.path, line=plan.line,
                key=("PLAN103", plan.path, plan.line),
            )


__all__ = ["CommunicationPlan", "extract_plans"]
