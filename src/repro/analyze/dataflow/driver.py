"""File-level driver for the dataflow passes.

Two-phase project analysis:

1. **Summary phase**: every analyzed file is parsed into one
   :class:`~repro.analyze.dataflow.callgraph.Project`; transitive
   per-function summaries are computed bottom-up over the call-graph
   condensation (:mod:`repro.analyze.dataflow.summaries`).
2. **Rule phase**: REQ/BUF, SPMD and PLAN run per function with the
   module's summary environment prefilled, so cross-function request
   hand-off and rank taint resolve -- including across files, for
   imports that resolve inside the analyzed set.

:func:`analyze_source` / :func:`analyze_file` analyze one module (the
project is just that module -- interprocedural within the file);
:func:`analyze_paths` analyzes a file set as one project.
:func:`analyze_tree` additionally runs the lint pass sharing one
suppression index per file, which is what makes the LNT007
unused-suppression lint sound: a comment is "unused" only when *no*
pass that ran could have matched it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analyze.dataflow import plans as _plans
from repro.analyze.dataflow import requests as _requests
from repro.analyze.dataflow import spmd as _spmd
from repro.analyze.dataflow.callgraph import Project
from repro.analyze.dataflow.cfg import build_cfg
from repro.analyze.dataflow.engine import CallSummary
from repro.analyze.dataflow.summaries import compute_summaries, module_envs
from repro.analyze.findings import RULES, Report
from repro.analyze.lint import iter_python_files
from repro.analyze.suppress import (
    ALL,
    Suppressions,
    apply_suppressions,
    collect_suppressions,
)

__all__ = ["analyze_source", "analyze_file", "analyze_paths",
           "analyze_source_set", "analyze_tree"]

#: rule-code prefixes of the runtime/signature passes -- suppressions for
#: these are never reported unused by the static drivers (the matching
#: pass did not run here)
_NON_STATIC_PREFIXES = ("SIG", "DLK", "REQ0", "P2P", "COL", "ZBS")


def _run_dataflow(tree: ast.Module, path: str, report: Report,
                  plans: Optional[List[_plans.CommunicationPlan]],
                  env: Dict[str, CallSummary]) -> None:
    """Run every dataflow rule pass over one parsed module."""
    module_funcs = {
        node.name: node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    summary_cache = dict(env)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cfg = build_cfg(node)
        _requests.check_function(cfg, module_funcs, path, report,
                                 summary_cache)
        _spmd.check_function(node, module_funcs, path, report, summary_cache)

    file_plans, _ = _plans.extract_plans(tree, path, report)
    if plans is not None:
        plans.extend(file_plans)


def _single_module_env(path: str, source: str,
                       tree: ast.Module) -> Dict[str, CallSummary]:
    project = Project([(path, source)])
    # Project re-parses; reuse is not worth plumbing -- but keep the
    # caller's tree authoritative for the rule phase
    del tree
    return module_envs(project, compute_summaries(project)).get(path, {})


def analyze_source(
    source: str,
    path: str = "<string>",
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
    protocol: bool = False,
) -> Report:
    """Run every dataflow pass over one module's source text.

    Appends to ``report``/``plans`` when given (mirroring
    :func:`repro.analyze.lint.lint_source`); suppression comments are
    applied before findings reach the caller's report.  ``protocol``
    additionally runs the cross-rank protocol verifier (MTC10x).
    """
    report = report if report is not None else Report()
    tree = ast.parse(source, filename=path)
    suppressions = collect_suppressions(source, tree)
    local = Report()
    env = _single_module_env(path, source, tree)
    _run_dataflow(tree, path, local, plans, env)
    if protocol:
        from repro.analyze import protocol as _protocol

        _protocol.check_module(tree, path, local, env)
    report.extend(apply_suppressions(local, suppressions))
    return report


def analyze_file(
    path: Union[str, Path],
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
    protocol: bool = False,
) -> Report:
    path = Path(path)
    return analyze_source(path.read_text(encoding="utf-8"), str(path),
                          report, plans, protocol)


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
    protocol: bool = False,
) -> Tuple[Report, List[_plans.CommunicationPlan]]:
    """Dataflow-analyze every ``.py`` file under ``paths`` as one
    project (cross-file summaries resolve through imports)."""
    report = report if report is not None else Report()
    plans = plans if plans is not None else []
    sources = [(str(p), Path(p).read_text(encoding="utf-8"))
               for p in iter_python_files(paths)]
    project = Project(sources)
    envs = module_envs(project, compute_summaries(project))
    for path, source in sources:
        suppressions = collect_suppressions(
            source, project.modules[path].tree)
        local = Report()
        _run_dataflow(project.modules[path].tree, path, local, plans,
                      envs.get(path, {}))
        if protocol:
            from repro.analyze import protocol as _protocol

            _protocol.check_module(project.modules[path].tree, path, local,
                                   envs.get(path, {}))
        report.extend(apply_suppressions(local, suppressions))
    return report, plans


# -- combined lint + dataflow entry ------------------------------------------


def _unused_suppression_eligible(code: str, dataflow: bool,
                                 protocol: bool = False) -> bool:
    """Whether an unmatched suppression for ``code`` is worth flagging:
    only when the pass family that could have matched it actually ran
    (unknown codes are always flagged -- they match nothing, ever)."""
    if code == ALL:
        return False
    if code not in RULES:
        return True  # typo'd rule code: can never match anything
    if code.startswith(_NON_STATIC_PREFIXES):
        return False
    if code.startswith("LNT"):
        return True  # the lint pass always runs in analyze_tree
    if code.startswith("MTC"):
        return protocol  # the cross-rank verifier is opt-in
    return dataflow  # REQ1xx / BUF1xx / SPMD1xx / PLAN1xx


def _report_unused_suppressions(suppressions: Suppressions, path: str,
                                report: Report, dataflow: bool,
                                protocol: bool = False) -> None:
    for line, code in suppressions.unused_sites():
        if not _unused_suppression_eligible(code, dataflow, protocol):
            continue
        report.add(
            "LNT007",
            f"suppression '# analyze: ignore[{code}]' matches no finding"
            + ("" if code in RULES else f" (unknown rule code {code!r})"),
            location=path, line=line,
            key=("LNT007", path, line, code),
        )


def analyze_tree(
    paths: Iterable[Union[str, Path]],
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
    dataflow: bool = True,
    protocol: bool = False,
    protocol_stats: Optional[list] = None,
) -> Tuple[Report, List[_plans.CommunicationPlan]]:
    """Lint + (optionally) dataflow-analyze a file set as one project,
    with a single suppression index per file shared by both passes, and
    LNT007 findings for suppressions that matched nothing."""
    sources = [(str(p), Path(p).read_text(encoding="utf-8"))
               for p in iter_python_files(paths)]
    return analyze_source_set(sources, report, plans, dataflow, protocol,
                              protocol_stats)


def analyze_source_set(
    sources: List[Tuple[str, str]],
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
    dataflow: bool = True,
    protocol: bool = False,
    protocol_stats: Optional[list] = None,
) -> Tuple[Report, List[_plans.CommunicationPlan]]:
    """:func:`analyze_tree` over in-memory ``(path, text)`` pairs -- the
    entry the ``--fix`` rewriter iterates without touching disk."""
    from repro.analyze.lint import _Linter

    report = report if report is not None else Report()
    plans = plans if plans is not None else []
    envs: Dict[str, Dict[str, CallSummary]] = {}
    if dataflow or protocol:
        project = Project(sources)
        envs = module_envs(project, compute_summaries(project))
        trees = {path: project.modules[path].tree for path, _ in sources}
    else:
        trees = {path: ast.parse(text, filename=path)
                 for path, text in sources}
    for path, source in sources:
        tree = trees[path]
        suppressions = collect_suppressions(source, tree)
        local = Report()
        _Linter(path, local).visit(tree)
        if dataflow:
            _run_dataflow(tree, path, local, plans, envs.get(path, {}))
        if protocol:
            from repro.analyze import protocol as _protocol

            _protocol.check_module(tree, path, local, envs.get(path, {}),
                                   stats=protocol_stats)
        filtered = apply_suppressions(local, suppressions)
        _report_unused_suppressions(suppressions, path, filtered, dataflow,
                                    protocol)
        report.extend(filtered)
    return report, plans
