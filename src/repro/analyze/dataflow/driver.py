"""File-level driver for the dataflow passes: parse once, run REQ/BUF,
SPMD and PLAN over every function, honour suppressions."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.analyze.dataflow import plans as _plans
from repro.analyze.dataflow import requests as _requests
from repro.analyze.dataflow import spmd as _spmd
from repro.analyze.dataflow.cfg import build_cfg
from repro.analyze.findings import Report
from repro.analyze.lint import iter_python_files
from repro.analyze.suppress import apply_suppressions, collect_suppressions

__all__ = ["analyze_source", "analyze_file", "analyze_paths"]


def analyze_source(
    source: str,
    path: str = "<string>",
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
) -> Report:
    """Run every dataflow pass over one module's source text.

    Appends to ``report``/``plans`` when given (mirroring
    :func:`repro.analyze.lint.lint_source`); suppression comments are
    applied before findings reach the caller's report.
    """
    report = report if report is not None else Report()
    tree = ast.parse(source, filename=path)
    suppressions = collect_suppressions(source)
    local = Report()

    module_funcs = {
        node.name: node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    summary_cache: dict = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cfg = build_cfg(node)
        _requests.check_function(cfg, module_funcs, path, local,
                                 summary_cache)
        _spmd.check_function(node, module_funcs, path, local, summary_cache)

    file_plans, _ = _plans.extract_plans(tree, path, local)
    if plans is not None:
        plans.extend(file_plans)

    report.extend(apply_suppressions(local, suppressions))
    return report


def analyze_file(
    path: Union[str, Path],
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
) -> Report:
    path = Path(path)
    return analyze_source(path.read_text(encoding="utf-8"), str(path),
                          report, plans)


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    report: Optional[Report] = None,
    plans: Optional[List[_plans.CommunicationPlan]] = None,
) -> Tuple[Report, List[_plans.CommunicationPlan]]:
    """Dataflow-analyze every ``.py`` file under ``paths``."""
    report = report if report is not None else Report()
    plans = plans if plans is not None else []
    for path in iter_python_files(paths):
        analyze_file(path, report, plans)
    return report, plans
