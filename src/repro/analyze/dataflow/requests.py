"""Request-lifetime and buffer-aliasing analysis (REQ1xx / BUF1xx).

Reaching-definitions facts over one function's CFG:

``("req", name, def_node, kind, buffer)``
    A pending :class:`~repro.mpi.request.Request` bound to ``name`` at CFG
    node ``def_node``; ``kind`` is ``"send"``/``"recv"``; ``buffer`` is
    the buffer variable the operation reads/writes (or None).

``("gen", name, def_node, method)``
    A blocking-communication *generator object* (``g = comm.send(..)``)
    that has not been driven with ``yield from`` yet.

Kills:

- ``name.wait()`` / ``name.test()`` / ``Request.waitall([.., name, ..])``
  complete a request,
- ``yield from helper(name, ..)`` -- also ``self.helper(..)`` and
  ``mod.helper(..)`` -- where the call summary says the helper waits
  that parameter,
- any other *escape* of the name (argument to an unknown callee, return
  value, container element, attribute store) conservatively completes it
  (someone else may wait it),
- rebinding ``name`` kills the old fact -- after REQ102 has inspected it.

Findings:

- **REQ101** (error): a pending request reaches function exit -- some
  path skips the ``wait()``.  The message distinguishes "no wait anywhere"
  (liveness: the name is dead right after the definition) from "a wait
  exists but not on every path".
- **REQ102** (error): a name holding a pending request is rebound
  (classically: the loop-carried ``req = comm.isend(..)`` whose wait sits
  after the loop, completing only the last iteration).
- **REQ103** (error): a blocking-communication generator object is
  assigned but never driven on some path -- the dataflow-complete LNT003.
- **BUF101** (error): a buffer is written between ``isend`` and the wait
  that completes it (the send may pack/transmit the clobbered bytes).
- **BUF102** (warning): a receive buffer is read between ``irecv`` and
  the completing wait (the bytes are not there yet).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze.dataflow.cfg import CFG
from repro.analyze.dataflow.engine import (
    CallSummary,
    header_expressions,
    liveness,
    reaching_definitions,
    resolve_call_summary,
    stmt_defs,
    summaries_for,
)
from repro.analyze.findings import Report

#: generator-returning request creators: ``req = yield from comm.isend(..)``
ISEND_METHODS = frozenset({"isend"})
#: plain-call request creators: ``req = comm.irecv(..)``
DIRECT_REQUEST_METHODS = frozenset({"irecv", "isend_obj"})
#: request-completing attribute calls
WAIT_ATTRS = frozenset({"wait", "test"})
WAITALL_ATTRS = frozenset({"waitall", "waitany"})
#: blocking generator methods (kept in sync with repro.analyze.lint)
from repro.analyze.lint import BLOCKING_GENERATOR_METHODS  # noqa: E402

#: ndarray / list methods that mutate the receiver in place
MUTATING_METHODS = frozenset({
    "fill", "sort", "resize", "put", "partition", "setfield", "itemset",
    "append", "extend", "insert", "clear", "pop", "remove",
})


def _call_of(value: ast.AST) -> Optional[ast.Call]:
    """Unwrap ``yield from call`` / ``await call`` down to the call."""
    if isinstance(value, (ast.YieldFrom, ast.Await)):
        value = value.value
    return value if isinstance(value, ast.Call) else None


def _buffer_name(call: ast.Call) -> Optional[str]:
    """The buffer argument of an isend/irecv-style call, when it is a
    plain name (first positional, or ``buffer=``)."""
    cand: Optional[ast.AST] = None
    if call.args:
        cand = call.args[0]
    for kw in call.keywords:
        if kw.arg == "buffer":
            cand = kw.value
    if isinstance(cand, ast.Name):
        return cand.id
    return None


class _FunctionFacts:
    """Per-node gen/kill metadata extracted from the statements once."""

    def __init__(self, cfg: CFG, summaries: Dict[str, CallSummary]):
        self.cfg = cfg
        self.summaries = summaries
        self.gen: Dict[int, Set[Tuple]] = {}
        #: node -> request/generator names completed there
        self.completes: Dict[int, Set[str]] = {}
        #: node -> names that escape there (conservative completion)
        self.escapes: Dict[int, Set[str]] = {}
        #: node -> names rebound there
        self.rebinds: Dict[int, Set[str]] = {}
        #: node -> names written there (buffer mutation candidates)
        self.writes: Dict[int, Set[str]] = {}
        #: node -> names read there (Load context)
        self.reads: Dict[int, Set[str]] = {}
        for node in cfg.nodes:
            if node.stmt is not None:
                self._scan(node.index, node.stmt)

    # -- statement scanning --------------------------------------------------

    def _scan(self, idx: int, stmt: ast.AST) -> None:
        exprs = header_expressions(stmt)
        self.rebinds[idx] = stmt_defs(stmt)
        completes: Set[str] = set()
        escapes: Set[str] = set()
        writes: Set[str] = set(self.rebinds[idx])
        reads: Set[str] = set()
        driven: Set[str] = set()

        for expr in exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    self._scan_call(sub, completes, escapes)
                elif isinstance(sub, ast.YieldFrom) and isinstance(
                        sub.value, ast.Name):
                    driven.add(sub.value.id)  # `yield from g`
                elif isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load):
                    reads.add(sub.id)
                elif isinstance(sub, ast.Subscript):
                    root = sub.value
                    if isinstance(root, ast.Name) and isinstance(
                            sub.ctx, (ast.Store, ast.Del)):
                        writes.add(root.id)
        if isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name):
            writes.add(stmt.target.id)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            # a returned request escapes: the caller adopts the wait
            # obligation (the transitive summary marks returns_request,
            # so the call site regenerates the fact over there)
            for sub in ast.walk(stmt.value):
                if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load):
                    escapes.add(sub.id)
        completes |= driven

        self.completes[idx] = completes
        self.escapes[idx] = escapes
        self.writes[idx] = writes
        self.reads[idx] = reads
        self._scan_defs(idx, stmt)

    def _scan_call(self, call: ast.Call, completes: Set[str],
                   escapes: Set[str]) -> None:
        fn = call.func
        arg_names = [a.id for a in call.args if isinstance(a, ast.Name)]
        kw_names = [kw.value.id for kw in call.keywords
                    if isinstance(kw.value, ast.Name)]
        if isinstance(fn, ast.Attribute):
            if fn.attr in WAIT_ATTRS and isinstance(fn.value, ast.Name):
                completes.add(fn.value.id)      # req.wait() / req.test()
                return
            if fn.attr in WAITALL_ATTRS:
                # Request.waitall(reqs) / waitany([a, b]): every name
                # reachable in the arguments is completed
                for arg in call.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and isinstance(
                                sub.ctx, ast.Load):
                            completes.add(sub.id)
                return
        summary, offset = resolve_call_summary(fn, self.summaries)
        if summary is not None:
            # call summary (plain, module-qualified or self-method):
            # only the waited params complete; other known-helper params
            # stay pending (precise).  ``offset`` shifts positional
            # argument indices past an implicit ``self`` parameter.
            for pos, arg in enumerate(call.args):
                if not isinstance(arg, ast.Name):
                    continue
                if pos + offset in summary.waits_params:
                    completes.add(arg.id)
            for kw in call.keywords:
                if not isinstance(kw.value, ast.Name):
                    continue
                if kw.arg in summary.params and summary.params.index(
                        kw.arg) in summary.waits_params:
                    completes.add(kw.value.id)
            return
        # unknown callee: arguments escape; a mutating method on the
        # receiver is recorded by the caller via MUTATING_METHODS
        escapes.update(arg_names + kw_names)

    def _scan_defs(self, idx: int, stmt: ast.AST) -> None:
        """Request / generator definitions generated at this node."""
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        call = _call_of(value)
        if call is None:
            return
        facts: Set[Tuple] = set()
        wrapped = isinstance(value, (ast.YieldFrom, ast.Await))
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in ISEND_METHODS and wrapped:
                for name in names:
                    facts.add(("req", name, idx, "send", _buffer_name(call)))
            elif attr in DIRECT_REQUEST_METHODS and not wrapped:
                kind = "recv" if attr == "irecv" else "send"
                for name in names:
                    facts.add(("req", name, idx, kind, _buffer_name(call)))
            elif attr in BLOCKING_GENERATOR_METHODS and not wrapped:
                # `g = comm.send(..)`: a generator object, not yet driven
                for name in names:
                    facts.add(("gen", name, idx, attr))
        if not facts:
            # `req = make_request(..)` / `req = yield from self.make(..)`
            # / `req = yield from helpers.make(..)` where the transitive
            # summary says the helper hands back a pending request: the
            # wait obligation lands here
            summary, _offset = resolve_call_summary(call.func,
                                                    self.summaries)
            if summary is not None and summary.returns_request:
                for name in names:
                    facts.add(("req", name, idx, summary.request_kind, None))
        if facts:
            self.gen[idx] = facts
            # the definition node must not kill its own fresh facts
            self.completes[idx] = self.completes[idx] - set(names)
            self.escapes[idx] = self.escapes[idx] - set(names)

    # -- kill function for the reaching-defs solve ---------------------------

    def kill(self, idx: int, facts: Set[Tuple]) -> Set[Tuple]:
        done = self.completes.get(idx, set()) | self.escapes.get(idx, set())
        rebound = self.rebinds.get(idx, set())
        reads = self.reads.get(idx, set())
        out = set()
        for fact in facts:
            name = fact[1]
            killed = name in done or name in rebound
            if fact[0] == "gen" and name in reads:
                # any use of a generator object may drive it indirectly
                # (dispatch loops, isinstance switches); only the
                # assigned-and-never-referenced case stays a finding
                killed = True
            if killed and fact[2] != idx:
                # never kill the node's own fresh gen facts
                out.add(fact)
        return out


def check_function(cfg: CFG, module_funcs: Dict[str, ast.AST],
                   path: str, report: Report,
                   _summary_cache: Optional[Dict[str, CallSummary]] = None,
                   ) -> None:
    """Run REQ1xx/BUF1xx over one function CFG."""
    summaries = summaries_for(module_funcs, _summary_cache)
    facts = _FunctionFacts(cfg, summaries)
    if not facts.gen:
        return  # no requests or generators created here
    solution = reaching_definitions(cfg, facts.gen, facts.kill)
    live = liveness(cfg)
    fname = cfg.name

    def line_of(def_node: int) -> Optional[int]:
        return cfg.nodes[def_node].line

    # REQ101 / REQ103: pending facts reaching the exit node ------------------
    for fact in sorted(solution.at_entry(cfg.exit.index),
                       key=lambda f: (line_of(f[2]) or 0, f[1])):
        if fact[0] == "req":
            _tag, name, def_node, kind, _buf = fact
            never_used = name not in live.at_exit(def_node)
            detail = ("it is never waited anywhere" if never_used else
                      "a path to function exit skips the wait()")
            report.add(
                "REQ101",
                f"nonblocking {kind} request '{name}' in {fname}() may "
                f"reach function exit without wait()/test(): {detail}",
                location=path, line=line_of(def_node),
                key=("REQ101", fname, name, def_node),
            )
        else:
            _tag, name, def_node, method = fact
            report.add(
                "REQ103",
                f"generator '{name} = ...{method}(...)' in {fname}() is "
                "never driven with 'yield from' on some path; the "
                "communication silently does not happen",
                location=path, line=line_of(def_node),
                key=("REQ103", fname, name, def_node),
            )

    # node-local checks against the reaching facts ---------------------------
    for node in cfg.nodes:
        if node.stmt is None:
            continue
        idx = node.index
        incoming = solution.at_entry(idx)
        if not incoming:
            continue
        rebound = facts.rebinds.get(idx, set())
        writes = facts.writes.get(idx, set()) - rebound
        reads = facts.reads.get(idx, set())
        mutated = _mutated_receivers(node.stmt)
        for fact in sorted(incoming, key=lambda f: (f[1], f[2])):
            name = fact[1]
            if name in rebound:
                # fact[2] == idx is the loop-carried case: the definition's
                # own fact flows around the back edge into a fresh rebind
                rule = "REQ102" if fact[0] == "req" else "REQ103"
                what = ("a pending request" if fact[0] == "req"
                        else "an undriven communication generator")
                where = ("the previous loop iteration"
                         if fact[2] == idx else f"line {line_of(fact[2])}")
                report.add(
                    rule,
                    f"'{name}' is rebound in {fname}() while still holding "
                    f"{what} (from {where}); "
                    "the previous operation is never completed",
                    location=path, line=node.line,
                    key=(rule, fname, name, fact[2], idx),
                )
            if fact[0] != "req" or fact[4] is None or fact[2] == idx:
                continue
            buf = fact[4]
            if fact[3] == "send" and (buf in writes or buf in mutated):
                report.add(
                    "BUF101",
                    f"buffer '{buf}' is written while the nonblocking send "
                    f"'{name}' (line {line_of(fact[2])}) is still pending; "
                    "the transmitted bytes are undefined",
                    location=path, line=node.line,
                    key=("BUF101", fname, name, fact[2], idx),
                )
            elif fact[3] == "recv" and buf in (reads | mutated) \
                    and name not in facts.completes.get(idx, set()):
                report.add(
                    "BUF102",
                    f"buffer '{buf}' is read before the nonblocking receive "
                    f"'{name}' (line {line_of(fact[2])}) completes; the "
                    "data has not arrived yet",
                    location=path, line=node.line,
                    key=("BUF102", fname, name, fact[2], idx),
                )


def _mutated_receivers(stmt: ast.AST) -> Set[str]:
    """Receiver names of in-place mutating method calls in ``stmt``."""
    out: Set[str] = set()
    for expr in header_expressions(stmt):
        for sub in ast.walk(expr):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in MUTATING_METHODS
                    and isinstance(sub.func.value, ast.Name)):
                out.add(sub.func.value.id)
    return out


__all__ = ["check_function"]
