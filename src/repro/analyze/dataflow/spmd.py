"""SPMD rank-divergence analysis (SPMD1xx) -- the static twin of the
runtime COL001/COL002 checks.

Every rank executes the same program text; a collective only completes if
*all* ranks of the communicator reach it.  A collective call dominated by
a branch whose condition depends on ``comm.rank`` therefore hangs the
ranks that take the other side.

Taint seeding and propagation are flow-insensitive within one function:
``comm.rank`` / ``comm.grank`` loads are tainted, and any name assigned
from an expression using a tainted value becomes tainted (iterated to a
fixpoint so ``r = comm.rank; is_root = r == 0; if is_root:`` is caught).

Three idioms are recognised and exempted rather than flagged:

- **matched collectives**: when the *other* execution path of a
  rank-tainted branch performs the same collective method, every rank
  does enter it -- this is the canonical root-vs-nonroot shape of
  ``gatherv``/``scatterv``/``reduce`` (root passes the recv/send buffer,
  the rest don't).  "Other path" means the ``else`` suite, plus the
  fall-through statements after the ``if`` when the branch body exits
  the function.
- **sub-communicator collectives**: a collective invoked on a receiver
  that is itself rank-tainted (``sub = yield from comm.split(...)``)
  is scoped to the ranks that hold it; membership divergence there is
  the *point* of ``split`` and is checked at runtime (COL001), not here.
- **agreement results**: a name assigned only from an agreement
  collective (``flagged = yield from comm.allreduce(local_problem, ...)``)
  holds the same value on every rank even when the argument is
  rank-derived -- branching on it is lockstep by construction.  This is
  the validation idiom of :meth:`VecScatter.from_needed_indices` and the
  plan-reuse guard in :meth:`Vec.assemble`.

Rules:

- **SPMD101** (error): a collective operation (or a ``yield from`` of a
  helper -- plain, ``self.``- or module-qualified -- whose call summary
  performs one) appears under a rank-tainted branch with no matching
  call on the other path.
- **SPMD102** (warning): a rank-tainted branch returns/raises out of the
  function while an unmatched collective appears later on the
  fall-through path -- the ranks that exit early never reach it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.dataflow.engine import (
    COLLECTIVE_METHODS,
    CallSummary,
    resolve_call_summary,
    summaries_for,
)
from repro.analyze.findings import Report

#: attribute names whose load seeds rank taint
RANK_ATTRS = frozenset({"rank", "grank"})

#: collectives whose return value is identical on every participating
#: rank by construction -- agreement steps.  A name assigned *only* from
#: such calls is rank-uniform even when the call's argument is
#: rank-derived: ``flagged = yield from comm.allreduce(problem is not
#: None, op=or_)`` reduces per-rank state into one common decision, which
#: is precisely the lockstep-validation / plan-reuse-guard idiom --
#: branching on it exits every rank together, so it must not carry taint.
UNIFORM_RESULT_COLLECTIVES = frozenset({"allreduce", "bcast", "allgather"})


def _expr_tainted(expr: ast.AST, tainted: Set[str],
                  summaries: Optional[Dict[str, CallSummary]] = None) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr in RANK_ATTRS:
            return True
        if (isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
                and sub.id in tainted):
            return True
        if summaries and isinstance(sub, ast.Call):
            # interprocedural seed: a helper whose summary says its
            # return value is rank-derived (`if _am_i_root(comm): ...`,
            # `if self._am_root(): ...`, `if util.is_root(comm): ...`)
            summary, _offset = resolve_call_summary(sub.func, summaries)
            if summary is not None and summary.returns_tainted:
                return True
    return False


def _agreement_result(expr: ast.AST) -> bool:
    """Is ``expr`` (an assignment's value) a direct call of an
    agreement collective -- ``comm.allreduce(...)``, possibly behind
    ``yield from`` / ``await``?"""
    node = expr
    while isinstance(node, (ast.Await, ast.YieldFrom)):
        node = node.value
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in UNIFORM_RESULT_COLLECTIVES)


def tainted_names(func: ast.AST,
                  summaries: Optional[Dict[str, CallSummary]] = None,
                  ) -> Set[str]:
    """Names carrying rank-derived values anywhere in ``func`` (fixpoint
    over simple assignments; augmented assignments taint their target).
    With ``summaries``, calls to helpers whose return value is
    rank-derived also seed taint.  Names whose *every* assignment is an
    agreement-collective result (:data:`UNIFORM_RESULT_COLLECTIVES`) are
    laundered: the value is rank-uniform regardless of the argument."""
    tainted: Set[str] = set()
    assigns: List[Tuple[Set[str], ast.AST]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue  # nested defs get their own analysis
        if isinstance(node, ast.Assign):
            names = {t.id for t in node.targets if isinstance(t, ast.Name)}
            assigns.append((names, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            assigns.append(({node.target.id}, node.value))
        elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name):
            assigns.append(({node.target.id}, node.value))
            assigns.append(({node.target.id}, node.target))
        elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name):
            assigns.append(({node.target.id}, node.value))
    uniform: Set[str] = set()
    rebound: Set[str] = set()
    for names, value in assigns:
        if _agreement_result(value):
            uniform |= names
        else:
            rebound |= names
    laundered = uniform - rebound
    changed = True
    while changed:
        changed = False
        for names, value in assigns:
            names = names - laundered
            if names - tainted and _expr_tainted(value, tainted, summaries):
                tainted |= names
                changed = True
    return tainted


def _collective_calls(node: ast.AST,
                      summaries: Dict[str, CallSummary],
                      ) -> List[Tuple[int, str, str, Optional[str]]]:
    """(line, description, method, receiver-name) of every collective
    operation inside ``node``, including one-level helper calls whose
    summary performs one.  ``receiver-name`` is the root ``Name`` the
    method is invoked on (``comm`` in ``comm.bcast``), or ``None`` for
    helper calls and computed receivers."""
    out: List[Tuple[int, str, str, Optional[str]]] = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        fn = sub.func
        if isinstance(fn, ast.Attribute) and fn.attr in COLLECTIVE_METHODS:
            recv = fn.value.id if isinstance(fn.value, ast.Name) else None
            out.append((sub.lineno, f".{fn.attr}(...)", fn.attr, recv))
            continue
        summary, _offset = resolve_call_summary(fn, summaries)
        if summary is not None and summary.calls_collective:
            name = fn.id if isinstance(fn, ast.Name) \
                else f"{fn.value.id}.{fn.attr}"
            out.append((sub.lineno,
                        f"{name}(...) [helper performs a collective]",
                        name, None))
    return out


def _methods_in(stmts: Sequence[ast.stmt],
                summaries: Dict[str, CallSummary]) -> Set[str]:
    out: Set[str] = set()
    for stmt in stmts:
        for _line, _desc, method, _recv in _collective_calls(stmt, summaries):
            out.add(method)
    return out


def _block_exits(stmts: Sequence[ast.stmt]) -> bool:
    """Whether the block leaves the function (a top-level return/raise)."""
    return any(isinstance(s, (ast.Return, ast.Raise)) for s in stmts)


class _Guard:
    __slots__ = ("line", "src", "exempt", "branch_methods")

    def __init__(self, line: int, src: str, exempt: Set[str],
                 branch_methods: Set[str]):
        self.line = line
        self.src = src
        #: collective methods matched on the other execution path
        self.exempt = exempt
        #: collective methods the guarded branch itself performs (used to
        #: match collectives below a rank-dependent early exit)
        self.branch_methods = branch_methods


class _SpmdVisitor:
    """Block walker threading the fall-through ``tail`` of each statement
    so a rank-tainted ``if`` can see what the other side executes."""

    def __init__(self, func: ast.AST, path: str, report: Report,
                 summaries: Dict[str, CallSummary]):
        self.func = func
        self.fname = getattr(func, "name", "<lambda>")
        self.path = path
        self.report = report
        self.summaries = summaries
        self.tainted = tainted_names(func, summaries)
        self.guards: List[_Guard] = []
        #: (exit_line, guard_line, methods executed by the exiting branch)
        self.exits: List[Tuple[int, int, Set[str]]] = []
        #: every collective site in the function, for SPMD102
        self.collectives = sorted(
            _collective_calls(func, self.summaries), key=lambda c: c[0])

    # -- walking -------------------------------------------------------------

    def run(self) -> None:
        self._walk(self.func.body, [])

    def _walk(self, stmts: Sequence[ast.stmt],
              tail: Sequence[ast.stmt]) -> None:
        for i, stmt in enumerate(stmts):
            self._stmt(stmt, list(stmts[i + 1:]) + list(tail))

    def _stmt(self, stmt: ast.stmt, rest: Sequence[ast.stmt]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested definitions get their own analysis
        if isinstance(stmt, ast.If):
            self._if(stmt, rest)
        elif isinstance(stmt, ast.While):
            self._loop(stmt, stmt.test, rest)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # a rank-dependent *iteration count* diverges too
            self._loop(stmt, stmt.iter, rest)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check(item.context_expr)
            self._walk(stmt.body, rest)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, rest)
            for handler in stmt.handlers:
                self._walk(handler.body, rest)
            self._walk(stmt.orelse, rest)
            self._walk(stmt.finalbody, rest)
        elif isinstance(stmt, ast.Match):
            for case in stmt.cases:
                self._walk(case.body, rest)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self._check(stmt)
            if self.guards:
                guard = self.guards[-1]
                self.exits.append(
                    (stmt.lineno, guard.line, set(guard.branch_methods)))
        else:
            self._check(stmt)

    def _if(self, node: ast.If, rest: Sequence[ast.stmt]) -> None:
        if not _expr_tainted(node.test, self.tainted, self.summaries):
            self._walk(node.body, rest)
            self._walk(node.orelse, rest)
            return
        body_m = _methods_in(node.body, self.summaries)
        orelse_m = _methods_in(node.orelse, self.summaries)
        rest_m = _methods_in(rest, self.summaries)
        # the other side of the body is the else suite; when the body
        # exits the function, the non-taking ranks additionally run the
        # fall-through statements -- and vice versa for the else suite
        exempt_body = orelse_m | (rest_m if _block_exits(node.body) else set())
        exempt_orelse = body_m | (
            rest_m if _block_exits(node.orelse) else set())
        src = ast.unparse(node.test)
        self.guards.append(_Guard(node.lineno, src, exempt_body, body_m))
        self._walk(node.body, rest)
        self.guards.pop()
        self.guards.append(_Guard(node.lineno, src, exempt_orelse, orelse_m))
        self._walk(node.orelse, rest)
        self.guards.pop()

    def _loop(self, stmt: ast.stmt, cond: ast.AST,
              rest: Sequence[ast.stmt]) -> None:
        tainted = _expr_tainted(cond, self.tainted, self.summaries)
        if tainted:
            # no "other side" to match: a rank-dependent trip count means
            # unequal numbers of collective calls across ranks
            body_m = _methods_in(stmt.body, self.summaries)
            self.guards.append(
                _Guard(stmt.lineno, ast.unparse(cond), set(), body_m))
        self._walk(stmt.body, rest)
        self._walk(getattr(stmt, "orelse", []) or [], rest)
        if tainted:
            self.guards.pop()

    # -- reporting -----------------------------------------------------------

    def _check(self, node: ast.AST) -> None:
        if not self.guards:
            return
        guard = self.guards[-1]
        for line, desc, method, recv in _collective_calls(
                node, self.summaries):
            if method in guard.exempt:
                continue  # matched on the other execution path
            if recv is not None and recv in self.tainted:
                continue  # sub-communicator from a rank-dependent split
            self.report.add(
                "SPMD101",
                f"collective {desc} in {self.fname}() executes under "
                f"the rank-dependent branch at line {guard.line} "
                f"(condition: {guard.src!r}) with no matching call on "
                "the other side; ranks taking the other side never "
                "enter it and the job hangs",
                location=self.path, line=line,
                key=("SPMD101", self.fname, line),
            )

    def finish(self) -> None:
        for exit_line, guard_line, executed in self.exits:
            later = [
                (line, method) for line, _desc, method, recv
                in self.collectives
                if line > exit_line
                and method not in executed
                and (recv is None or recv not in self.tainted)
            ]
            if later:
                self.report.add(
                    "SPMD102",
                    f"rank-dependent early exit at line {exit_line} in "
                    f"{self.fname}() (branch at line {guard_line}); the "
                    f"collective at line {later[0][0]} below is then "
                    "entered by only a subset of ranks",
                    location=self.path, line=exit_line,
                    key=("SPMD102", self.fname, exit_line),
                )


def check_function(func: ast.AST, module_funcs: Dict[str, ast.AST],
                   path: str, report: Report,
                   _summary_cache: Optional[Dict[str, CallSummary]] = None,
                   ) -> None:
    """Run SPMD1xx over one function's AST."""
    summaries = summaries_for(module_funcs, _summary_cache)
    visitor = _SpmdVisitor(func, path, report, summaries)
    visitor.run()
    visitor.finish()


__all__ = ["check_function", "tainted_names"]
