"""Inline suppression comments, honoured by every analyzer pass.

Syntax (anywhere on the offending line, or on the line a finding is
reported at)::

    req = comm.irecv(buf)        # analyze: ignore[REQ101]
    blocks = dt.flatten()        # analyze: ignore[LNT002,SIG004]
    something_hairy()            # analyze: ignore

A bare ``ignore`` (no bracket list) suppresses every rule on that line;
the bracketed form suppresses only the named codes.  A suppression on a
*comment-only* line also covers the next line, so long statements can
carry their marker above::

    # justified because ...  # analyze: ignore[BUF101]
    req = yield from comm.isend(really_long_expression, partner, tag)

Decorated functions report findings at the ``def`` line, which sits
below the decorator list; :func:`collect_suppressions` therefore also
propagates a suppression found on a decorator line (or on the comment
line above it) down to the ``def`` line when given the module AST.

Suppressions are collected with :mod:`tokenize` so strings containing
the marker text do not count, and applied uniformly by lint
(:func:`repro.analyze.lint.lint_source`) and the dataflow passes.
Every comment site tracks whether it actually matched a finding;
:meth:`Suppressions.unused_sites` feeds the LNT007 unused-suppression
lint.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze.findings import Report

__all__ = ["Suppressions", "collect_suppressions", "apply_suppressions"]

#: matches "# analyze: ignore" with an optional [CODE,CODE] list
_PATTERN = re.compile(
    r"#\s*analyze:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")

#: sentinel meaning "every rule"
ALL = "*"


class Suppressions:
    """Line -> suppressed-rule index for one source file.

    ``by_line[line][code]`` holds the set of *comment lines* that put
    ``code`` in effect at ``line`` (a comment covers its own line, may
    cover the line below, and may be propagated to a ``def`` line) --
    so a match can be attributed back to the comment that earned it.
    """

    def __init__(self,
                 by_line: Optional[Dict[int, Dict[str, Set[int]]]] = None):
        self.by_line: Dict[int, Dict[str, Set[int]]] = by_line or {}
        #: findings dropped by :func:`apply_suppressions`
        self.suppressed_count = 0
        #: every (comment line, code) written in the file
        self.sites: Set[Tuple[int, str]] = set()
        #: sites that matched at least one finding
        self.used: Set[Tuple[int, str]] = set()

    def is_suppressed(self, rule: str, line: Optional[int]) -> bool:
        """Whether ``rule`` at ``line`` is suppressed; marks the
        responsible comment site(s) used."""
        if line is None:
            return False
        codes = self.by_line.get(line)
        if not codes:
            return False
        hit = False
        for code in (ALL, rule):
            for origin in codes.get(code, ()):
                self.used.add((origin, code))
                hit = True
        return hit

    def unused_sites(self) -> List[Tuple[int, str]]:
        """(comment line, code) pairs that matched nothing, sorted."""
        return sorted(self.sites - self.used)

    def __bool__(self) -> bool:
        return bool(self.by_line)


def collect_suppressions(source: str,
                         tree: Optional[ast.Module] = None) -> Suppressions:
    """Scan ``source`` for ``# analyze: ignore[...]`` comments.

    With ``tree`` (the parsed module), suppressions sitting on decorator
    lines are additionally registered at the decorated ``def`` line.
    """
    supp = Suppressions()

    def register(line: int, code: str, origin: int) -> None:
        supp.by_line.setdefault(line, {}).setdefault(code, set()).add(origin)

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(tok.string)
            if match is None:
                continue
            raw = match.group("codes")
            if raw is None:
                codes = {ALL}
            else:
                codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
                if not codes:
                    codes = {ALL}
            origin = tok.start[0]
            for code in codes:
                supp.sites.add((origin, code))
                register(origin, code, origin)
                if tok.line.strip().startswith("#"):
                    # a comment-only line also covers the statement below
                    register(origin + 1, code, origin)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparseable comment stream: no suppressions, analysis proceeds
        pass

    if tree is not None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if not node.decorator_list:
                continue
            for dec in node.decorator_list:
                for code, origins in supp.by_line.get(dec.lineno, {}).items():
                    for origin in origins:
                        register(node.lineno, code, origin)
    return supp


def apply_suppressions(report: Report, suppressions: Suppressions) -> Report:
    """A new :class:`Report` without the suppressed findings."""
    if not suppressions:
        return report
    filtered = Report()
    for f in report:
        if suppressions.is_suppressed(f.rule, f.line):
            suppressions.suppressed_count += 1
            continue
        filtered.add(f.rule, f.message, f.location, f.line, f.key)
    return filtered
