"""Inline suppression comments, honoured by every analyzer pass.

Syntax (anywhere on the offending line, or on the line a finding is
reported at)::

    req = comm.irecv(buf)        # analyze: ignore[REQ101]
    blocks = dt.flatten()        # analyze: ignore[LNT002,SIG004]
    something_hairy()            # analyze: ignore

A bare ``ignore`` (no bracket list) suppresses every rule on that line;
the bracketed form suppresses only the named codes.  A suppression on a
*comment-only* line also covers the next line, so long statements can
carry their marker above::

    # justified because ...  # analyze: ignore[BUF101]
    req = yield from comm.isend(really_long_expression, partner, tag)

Suppressions are collected with :mod:`tokenize` so strings containing
the marker text do not count, and applied uniformly by lint
(:func:`repro.analyze.lint.lint_source`) and the dataflow passes.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Optional, Set

from repro.analyze.findings import Report

__all__ = ["Suppressions", "collect_suppressions", "apply_suppressions"]

#: matches "# analyze: ignore" with an optional [CODE,CODE] list
_PATTERN = re.compile(
    r"#\s*analyze:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")

#: sentinel meaning "every rule"
ALL = "*"


class Suppressions:
    """Line -> suppressed-rule index for one source file."""

    def __init__(self, by_line: Optional[Dict[int, Set[str]]] = None):
        self.by_line: Dict[int, Set[str]] = by_line or {}
        #: findings dropped by :func:`apply_suppressions`
        self.suppressed_count = 0

    def is_suppressed(self, rule: str, line: Optional[int]) -> bool:
        if line is None:
            return False
        codes = self.by_line.get(line)
        if not codes:
            return False
        return ALL in codes or rule in codes

    def __bool__(self) -> bool:
        return bool(self.by_line)


def collect_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for ``# analyze: ignore[...]`` comments."""
    by_line: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(tok.string)
            if match is None:
                continue
            raw = match.group("codes")
            if raw is None:
                codes = {ALL}
            else:
                codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
                if not codes:
                    codes = {ALL}
            by_line.setdefault(tok.start[0], set()).update(codes)
            if tok.line.strip().startswith("#"):
                # a comment-only line also covers the statement below it
                by_line.setdefault(tok.start[0] + 1, set()).update(codes)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparseable comment stream: no suppressions, analysis proceeds
        pass
    return Suppressions(by_line)


def apply_suppressions(report: Report, suppressions: Suppressions) -> Report:
    """A new :class:`Report` without the suppressed findings."""
    if not suppressions:
        return report
    filtered = Report()
    for f in report:
        if suppressions.is_suppressed(f.rule, f.line):
            suppressions.suppressed_count += 1
            continue
        filtered.add(f.rule, f.message, f.location, f.line, f.key)
    return filtered
