"""Static datatype-signature analysis (rules SIG001-SIG005).

MPI's correctness contract for typed messaging (MPI-3.0 section 3.3.1) is
stated in terms of *type signatures*: the ordered sequence of primitive
types in the flattened typemap, ignoring displacements.  A send matches a
receive iff the send signature is a prefix of the receive signature; a
longer send is a truncation error; overlapping receive blocks are
undefined behaviour.

The same flattening machinery also predicts *performance*: the paper's
section 4.1 shows that MPICH2's baseline pack pipeline re-searches the
block list per stage, so low-density datatypes (many short blocks) pack
dramatically slower than a dense copy.  :func:`check_datatype` flags those
shapes before they ever reach a benchmark.

>>> from repro.datatypes import Vector, DOUBLE, INT
>>> check_transfer(Vector(4, 1, 8, DOUBLE), 1, INT, 8).ok
False
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analyze.findings import Report
from repro.datatypes.typemap import Datatype, TypeSignature, _rle_repeat

#: SIG004 fires for at least this many blocks ...
DENSITY_MIN_BLOCKS = 32
#: ... whose mean length is below this many bytes
DENSITY_MIN_MEAN = 64.0


def full_signature(datatype: Datatype, count: int = 1) -> TypeSignature:
    """The signature of ``count`` back-to-back copies of ``datatype``."""
    return _rle_repeat(datatype.typemap_signature(), count)


def _is_summarised(sig: TypeSignature) -> bool:
    return any(name == "..." for name, _c in sig)


def signature_prefix(send: TypeSignature, recv: TypeSignature) -> bool:
    """True iff ``send`` is a (possibly complete) prefix of ``recv``.

    Run-length-encoded two-pointer walk; no expansion.  Summarised
    signatures (containing a ``"..."`` run) compare by total element count
    only -- the best that can be said about a capped signature.
    """
    if _is_summarised(send) or _is_summarised(recv):
        return sum(c for _n, c in send) <= sum(c for _n, c in recv)
    i = j = 0
    need = 0  # remaining elements of send run i
    have = 0  # remaining elements of recv run j
    while True:
        if need == 0:
            if i == len(send):
                return True  # send exhausted: prefix holds
            need = send[i][1]
        if have == 0:
            if j == len(recv):
                return False  # recv exhausted first: send is longer
            have = recv[j][1]
        if send[i][0] != recv[j][0]:
            return False
        step = min(need, have)
        need -= step
        have -= step
        if need == 0:
            i += 1
        if have == 0:
            j += 1


def render_signature(sig: TypeSignature, limit: int = 6) -> str:
    """Compact human-readable form, e.g. ``DOUBLE*8 INT*2 ...``."""
    parts = [f"{name}*{count}" for name, count in sig[:limit]]
    if len(sig) > limit:
        parts.append("...")
    return " ".join(parts) or "(empty)"


@dataclass(frozen=True)
class TransferVerdict:
    """The complete static verdict on one send/receive endpoint pair.

    This is the single source of truth for signature compatibility: both
    :func:`check_transfer` (SIG001/SIG002, per-call-site) and the
    cross-rank protocol verifier's MTC105 (per-matched-edge) consume it,
    so the symbolic and concrete paths cannot drift.
    """

    send_sig: TypeSignature
    recv_sig: TypeSignature
    send_bytes: int
    recv_bytes: int
    prefix_ok: bool

    @property
    def truncates(self) -> bool:
        return self.send_bytes > self.recv_bytes

    @property
    def ok(self) -> bool:
        return self.prefix_ok and not self.truncates


def transfer_verdict(
    send_type: Datatype,
    send_count: int,
    recv_type: Datatype,
    recv_count: int,
) -> TransferVerdict:
    """Evaluate MPI-3.0 section 3.3.1 for one send/receive pair: the send
    signature must be a prefix of the receive signature, and the send's
    data volume must fit the receive's capacity."""
    send_sig = full_signature(send_type, send_count)
    recv_sig = full_signature(recv_type, recv_count)
    return TransferVerdict(
        send_sig=send_sig,
        recv_sig=recv_sig,
        send_bytes=send_type.size * send_count,
        recv_bytes=recv_type.size * recv_count,
        prefix_ok=signature_prefix(send_sig, recv_sig),
    )


def check_transfer(
    send_type: Datatype,
    send_count: int,
    recv_type: Datatype,
    recv_count: int,
    location: str = "",
    report: Optional[Report] = None,
) -> Report:
    """Static compatibility check of a send/receive pair (SIG001, SIG002)."""
    report = report if report is not None else Report()
    verdict = transfer_verdict(send_type, send_count, recv_type, recv_count)
    if verdict.truncates:
        report.add(
            "SIG002",
            f"send is {verdict.send_bytes} bytes but the receive holds only "
            f"{verdict.recv_bytes}",
            location=location,
        )
    if not verdict.prefix_ok:
        report.add(
            "SIG001",
            f"send signature [{render_signature(verdict.send_sig)}] is not "
            f"a prefix of receive signature "
            f"[{render_signature(verdict.recv_sig)}]",
            location=location,
        )
    return report


def check_datatype(
    datatype: Datatype,
    name: str = "",
    report: Optional[Report] = None,
) -> Report:
    """Static single-datatype checks (SIG003, SIG004, SIG005)."""
    report = report if report is not None else Report()
    label = name or repr(datatype)
    blocks = datatype.flatten()
    offs = blocks.offsets
    lens = blocks.lengths

    # SIG005: blocks out of monotone offset order (packing jumps backwards)
    monotone = bool(np.all(offs[1:] >= offs[:-1])) if blocks.num_blocks > 1 else True
    if not monotone:
        report.add(
            "SIG005",
            f"{label}: flattened blocks are not in increasing offset order; "
            "packing will stride backwards through memory",
            location=name,
            key=("order", label),
        )

    # SIG003: overlapping blocks (sort first; SIG005 already covers order)
    if blocks.num_blocks > 1:
        order = np.argsort(offs, kind="stable")
        so, sl = offs[order], lens[order]
        if bool(np.any(so[1:] < so[:-1] + sl[:-1])):
            report.add(
                "SIG003",
                f"{label}: flattened blocks overlap; receiving into this "
                "datatype is undefined (MPI-3.0 section 3.3.1)",
                location=name,
                key=("overlap", label),
            )

    # SIG004: the section-4.1 pathology predictor -- many short blocks make
    # the baseline engine's per-stage block re-search dominate the copy
    mean_len = blocks.size / blocks.num_blocks
    if blocks.num_blocks >= DENSITY_MIN_BLOCKS and mean_len < DENSITY_MIN_MEAN:
        report.add(
            "SIG004",
            f"{label}: {blocks.num_blocks} blocks of mean length "
            f"{mean_len:.1f} B; expect the baseline pack pipeline to "
            "re-search this block list quadratically (use the dual-context "
            "engine, or restructure toward longer runs)",
            location=name,
            key=("density", label),
        )
    return report
