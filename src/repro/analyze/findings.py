"""Findings and reports -- the common currency of the analyzer.

Every check (static signature analysis, runtime verification, project lint)
emits :class:`Finding` objects identified by a stable rule ID from
:data:`RULES`; a :class:`Report` collects them, de-duplicates, renders, and
maps to a process exit code.  The full rule catalogue with remediation
advice lives in ``docs/ANALYZE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional

#: severity ordering, most serious first
SEVERITIES = ("error", "warning", "info")

#: rule id -> (severity, one-line summary)
RULES = {
    # -- static signature analysis (repro.analyze.signatures) ---------------
    "SIG001": ("error", "send/receive datatype signatures are incompatible"),
    "SIG002": ("error", "message truncation: send larger than receive capacity"),
    "SIG003": ("error", "datatype blocks overlap (receiving into it is undefined)"),
    "SIG004": ("warning", "low-density datatype: pack likely slower than copy "
                          "(baseline re-search pathology, paper section 4.1)"),
    "SIG005": ("warning", "datatype blocks not in monotonically increasing "
                          "offset order (cache-unfriendly packing)"),
    # -- runtime verification (repro.analyze.runtime) -----------------------
    "DLK001": ("error", "deadlock: cycle in the wait-for graph"),
    "DLK002": ("error", "deadlock: ranks blocked forever without a wait cycle"),
    "REQ001": ("warning", "leaked Request: never completed with wait()/test()"),
    "P2P001": ("warning", "unmatched send: message was never received"),
    "P2P002": ("warning", "unmatched receive: no message ever arrived"),
    "COL001": ("error", "collective call-order mismatch across ranks"),
    "COL002": ("error", "collective argument mismatch across ranks"),
    "ZBS001": ("info", "zero-byte synchronisation messages on the wire "
                       "(the binned Alltoallw of section 4.2.2 removes these)"),
    # -- dataflow: request lifetime (repro.analyze.dataflow.requests) -------
    "REQ101": ("error", "nonblocking request may reach function exit "
                        "without wait()/test() on some path"),
    "REQ102": ("error", "request rebound while a completion was still "
                        "pending (classic loop-carried isend bug)"),
    "REQ103": ("error", "blocking-communication generator assigned but "
                        "never driven with 'yield from' on some path "
                        "(dataflow-complete LNT003)"),
    # -- dataflow: buffer aliasing (repro.analyze.dataflow.requests) --------
    "BUF101": ("error", "buffer written between a nonblocking send and the "
                        "wait that completes it"),
    "BUF102": ("warning", "receive buffer read before the nonblocking "
                          "receive completes"),
    # -- dataflow: SPMD rank divergence (repro.analyze.dataflow.spmd) -------
    "SPMD101": ("error", "collective call dominated by a rank-dependent "
                         "branch (static twin of runtime COL001/COL002)"),
    "SPMD102": ("warning", "rank-dependent early exit ahead of a collective "
                           "entered by the remaining ranks"),
    # -- dataflow: static communication plans (repro.analyze.dataflow.plans)
    "PLAN101": ("warning", "statically sparse volume set: mostly zero-byte "
                           "synchronisation messages (binned Alltoallw of "
                           "section 4.2.2 removes these)"),
    "PLAN102": ("warning", "statically heavy-outlier volume set: ring-style "
                           "algorithms serialise on the largest "
                           "contribution (Eq. 1)"),
    "PLAN103": ("warning", "statically low-density datatype at a "
                           "communication call site (section 4.1 "
                           "pack-slower-than-copy cost model)"),
    # -- cross-rank protocol verification (repro.analyze.protocol) ----------
    "MTC101": ("error", "unmatched send: no feasible receive on any rank "
                        "under the model worlds"),
    "MTC102": ("error", "unmatched receive: no feasible send on any rank "
                        "under the model worlds"),
    "MTC103": ("error", "deterministic deadlock: blocking cycle in the "
                        "static wait-for graph (static twin of DLK001)"),
    "MTC104": ("error", "collective sequence divergence across ranks "
                        "(static twin of COL001/COL002, cross-rank "
                        "strengthening of SPMD101)"),
    "MTC105": ("error", "matched send/receive have incompatible signatures "
                        "or the receive buffer is too small (static "
                        "prefix-rule + truncation check)"),
    # -- project lint (repro.analyze.lint) ----------------------------------
    "LNT001": ("error", "bare 'except:' swallows SystemExit/KeyboardInterrupt"),
    "LNT002": ("warning", "datatype re-flattened/re-packed inside a loop "
                          "(O(N^2) rescan of the block list)"),
    "LNT003": ("error", "blocking communication generator called but not "
                        "driven ('yield from' missing)"),
    "LNT004": ("warning", "mutable default argument"),
    "LNT005": ("warning", "time.sleep in simulated code (yield Delay/cpu instead)"),
    "LNT006": ("error", "concrete collective-algorithm implementation imported "
                        "outside the registry (go through "
                        "repro.mpi.algorithms.REGISTRY)"),
    "LNT007": ("warning", "unused suppression: '# analyze: ignore[...]' "
                          "matches no finding (stale after a fix, or a typo "
                          "in the rule code)"),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a location."""

    rule: str
    message: str
    #: file path or logical location ("rank 3", "ctx (0, 1) seq 4", ...)
    location: str = ""
    line: Optional[int] = None
    #: hashable de-duplication key; findings with equal (rule, key) collapse
    key: Any = None

    @property
    def severity(self) -> str:
        return RULES[self.rule][0]

    def render(self) -> str:
        loc = self.location
        if self.line is not None:
            loc = f"{loc}:{self.line}"
        prefix = f"{loc}: " if loc else ""
        return f"{prefix}{self.rule} [{self.severity}] {self.message}"


@dataclass
class Report:
    """An ordered, de-duplicated collection of findings."""

    findings: List[Finding] = field(default_factory=list)
    _seen: set = field(default_factory=set, repr=False)

    def add(self, rule: str, message: str, location: str = "",
            line: Optional[int] = None, key: Any = None) -> Optional[Finding]:
        """Record a finding; returns it, or None if it was a duplicate."""
        if rule not in RULES:
            raise ValueError(f"unknown rule id {rule!r}")
        dedup = (rule, key if key is not None else (location, line, message))
        if dedup in self._seen:
            return None
        self._seen.add(dedup)
        finding = Finding(rule, message, location, line, key)
        self.findings.append(finding)
        return finding

    def extend(self, other: "Report") -> None:
        for f in other.findings:
            self.add(f.rule, f.message, f.location, f.line, f.key)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def count(self, *severities: str) -> int:
        wanted = severities or SEVERITIES
        return sum(1 for f in self.findings if f.severity in wanted)

    @property
    def ok(self) -> bool:
        """True when nothing actionable was found (info-only is ok)."""
        return self.count("error", "warning") == 0

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self, show: Iterable[str] = SEVERITIES) -> str:
        """Human-readable listing, most serious findings first."""
        show = tuple(show)
        order = {s: i for i, s in enumerate(SEVERITIES)}
        chosen = sorted(
            (f for f in self.findings if f.severity in show),
            key=lambda f: (order[f.severity], f.rule, f.location, f.line or 0),
        )
        if not chosen:
            return "analyze: no findings"
        lines = [f.render() for f in chosen]
        counts = ", ".join(
            f"{self.count(s)} {s}(s)" for s in SEVERITIES if self.count(s)
        )
        lines.append(f"analyze: {counts}")
        return "\n".join(lines)
