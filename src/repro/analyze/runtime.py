"""Runtime verification of simulated MPI programs (DLK/REQ/P2P/COL/ZBS rules).

A :class:`RuntimeVerifier` subscribes to a cluster's observer events (see
:meth:`repro.mpi.comm.Cluster.add_observer`) and checks, while the program
runs and once it finishes:

- **signature matching on the wire** -- every send/receive bind compares
  flattened typemap signatures (SIG001) and capacities (SIG002),
- **deadlock analysis** -- when the engine reports that live processes are
  blocked forever, the pending receives and unmatched rendezvous sends are
  assembled into a *wait-for graph*; a cycle is the classic
  send-blocks-send deadlock (DLK001), an acyclic blockage is an orphaned
  wait (DLK002),
- **request lifecycle** -- nonblocking requests that were never completed
  with ``wait()``/``test()`` (REQ001),
- **unmatched traffic** -- sends nobody received (P2P001) and receives
  nobody satisfied (P2P002),
- **collective consistency** -- every rank of a communicator must enter
  the same collectives in the same order (COL001) with consistent
  root/count arguments (COL002),
- **zero-byte synchronisation audit** -- counts the pure-synchronisation
  messages that the paper's binned Alltoallw (section 4.2.2) eliminates
  (ZBS001, informational).

>>> cluster = Cluster(2)
>>> verifier = RuntimeVerifier.attach(cluster)
>>> results = verifier.run(main)         # like cluster.run, but survives
>>> print(verifier.report.render())      # deadlocks and reports them
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analyze.findings import Report
from repro.analyze.signatures import render_signature, signature_prefix
from repro.mpi.comm import ANY_SOURCE, MPIError
from repro.mpi.request import Request
from repro.simtime.engine import SimulationDeadlock


class RuntimeVerifier:
    """Observer that turns cluster events into correctness findings."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.report = Report()
        self._requests: List[Tuple[int, Request]] = []
        #: (ctx, seq) -> list of (grank, op, detail)
        self._collectives: Dict[Tuple[Any, int], List[Tuple[int, str, Any]]] = {}
        self._zero_byte_sends = 0
        self._sends_posted = 0
        self._recvs_posted = 0
        self._finalized = False
        self.deadlock: Optional[SimulationDeadlock] = None
        self.error: Optional[BaseException] = None

    @classmethod
    def attach(cls, cluster) -> "RuntimeVerifier":
        """Instrument ``cluster``; call before running it."""
        verifier = cls(cluster)
        cluster.add_observer(verifier)
        return verifier

    # -- observer callbacks (invoked by Cluster._notify) ---------------------

    def on_send_posted(self, rec) -> None:
        self._sends_posted += 1
        if not rec.is_obj and rec.nbytes == 0:
            # typed zero-byte messages are pure synchronisation -- exactly
            # the traffic the optimised Alltoallw's zero bin exempts
            self._zero_byte_sends += 1

    def on_recv_posted(self, grank, rrec) -> None:
        self._recvs_posted += 1

    def on_match(self, rec, rrec) -> None:
        if rec.sig is None or rrec.sig is None:
            return  # control-plane object message
        if not signature_prefix(rec.sig, rrec.sig):
            self.report.add(
                "SIG001",
                f"message {rec.src}->{rec.dst} tag={rec.tag}: send signature "
                f"[{render_signature(rec.sig)}] is not a prefix of receive "
                f"signature [{render_signature(rrec.sig)}]",
                location=f"rank {rec.dst}",
                key=("match", rec.src, rec.dst, rec.tag,
                     rec.sig, rrec.sig),
            )

    def on_truncation(self, rec, rrec) -> None:
        capacity = rrec.tb.nbytes if rrec.tb is not None else 0
        self.report.add(
            "SIG002",
            f"message {rec.src}->{rec.dst} tag={rec.tag} is {rec.nbytes} "
            f"bytes but the posted receive holds {capacity}",
            location=f"rank {rec.dst}",
            key=("trunc", rec.src, rec.dst, rec.tag),
        )

    def on_request(self, grank, req) -> None:
        self._requests.append((grank, req))

    def on_collective(self, grank, ctx, seq, op, detail) -> None:
        self._collectives.setdefault((ctx, seq), []).append((grank, op, detail))

    # -- driving -------------------------------------------------------------

    def run(self, fn, *args) -> Optional[list]:
        """Like ``cluster.run(fn, *args)`` but survives deadlocks and MPI
        errors, converting them into findings.  Returns the rank results,
        or ``None`` when the run aborted.  Always finalizes the report."""
        try:
            results = self.cluster.run(fn, *args)
        except SimulationDeadlock as exc:
            self.deadlock = exc
            results = None
        except MPIError as exc:
            self.error = exc
            results = None
        self.finalize()
        return results

    # -- post-run analysis ---------------------------------------------------

    def finalize(self) -> Report:
        """Run the end-of-job checks; idempotent.  Returns the report."""
        if self._finalized:
            return self.report
        self._finalized = True
        if self.deadlock is not None:
            self._analyze_deadlock()
        self._check_requests()
        self._check_unmatched()
        self._check_collectives()
        if self._zero_byte_sends:
            self.report.add(
                "ZBS001",
                f"{self._zero_byte_sends} zero-byte synchronisation "
                "message(s) sent; MPIConfig.optimized()'s binned Alltoallw "
                "exempts the zero bin entirely",
                key="zbs",
            )
        return self.report

    # the wait-for graph: an edge (a, b, why) means rank a cannot make
    # progress until rank b acts
    def _wait_edges(self) -> List[Tuple[int, int, str]]:
        cluster = self.cluster
        edges: List[Tuple[int, int, str]] = []
        for rank, posted in enumerate(cluster._posted):
            for rrec in posted:
                if rrec.source == ANY_SOURCE:
                    continue  # wildcard: no single culprit to point at
                edges.append((
                    rank, rrec.source,
                    f"rank {rank} awaits a message from rank {rrec.source} "
                    f"(tag={rrec.tag})",
                ))
        threshold = cluster.config.eager_threshold
        for dst, pending in enumerate(cluster._unexpected):
            for rec in pending:
                if not rec.is_obj and rec.nbytes > threshold:
                    edges.append((
                        rec.src, dst,
                        f"rank {rec.src} blocks in a rendezvous send of "
                        f"{rec.nbytes} bytes to rank {dst} (tag={rec.tag})",
                    ))
        return edges

    def _analyze_deadlock(self) -> None:
        edges = self._wait_edges()
        adj: Dict[int, List[int]] = {}
        for a, b, _w in edges:
            adj.setdefault(a, []).append(b)
        cycles = _find_cycles(adj)
        if cycles:
            by_pair = {(a, b): w for a, b, w in edges}
            for cycle in cycles:
                hops = list(zip(cycle, cycle[1:] + cycle[:1]))
                why = "; ".join(by_pair.get(h, f"{h[0]} waits on {h[1]}")
                                for h in hops)
                chain = " -> ".join(str(r) for r in cycle + (cycle[0],))
                self.report.add(
                    "DLK001",
                    f"wait-for cycle {chain}: {why}",
                    key=("cycle", cycle),
                )
        else:
            detail = "; ".join(w for _a, _b, w in edges) or \
                "no pending point-to-point state (processes wait on futures " \
                "that nothing resolves)"
            self.report.add(
                "DLK002",
                f"{self.deadlock}: {detail}",
                key="orphan-deadlock",
            )

    def _check_requests(self) -> None:
        for idx, (grank, req) in enumerate(self._requests):
            if req.kind in ("send", "recv") and not req.waited:
                self.report.add(
                    "REQ001",
                    f"rank {grank}: nonblocking {req.kind} request was never "
                    "completed with wait()/test()",
                    location=f"rank {grank}",
                    key=("req", idx),
                )

    def _check_unmatched(self) -> None:
        cluster = self.cluster
        for dst, pending in enumerate(cluster._unexpected):
            for rec in pending:
                self.report.add(
                    "P2P001",
                    f"message {rec.src}->{dst} tag={rec.tag} "
                    f"({rec.nbytes} bytes) was never received",
                    location=f"rank {rec.src}",
                    key=("usend", rec.src, dst, rec.tag, id(rec)),
                )
        for rank, posted in enumerate(cluster._posted):
            for rrec in posted:
                src = "ANY" if rrec.source == ANY_SOURCE else rrec.source
                self.report.add(
                    "P2P002",
                    f"receive posted on rank {rank} (source={src}, "
                    f"tag={rrec.tag}) was never satisfied",
                    location=f"rank {rank}",
                    key=("urecv", rank, rrec.source, rrec.tag, id(rrec)),
                )

    def _check_collectives(self) -> None:
        for (ctx, seq), entries in sorted(
            self._collectives.items(), key=lambda kv: repr(kv[0])
        ):
            ops = {op for _g, op, _d in entries}
            if len(ops) > 1:
                listing = ", ".join(
                    f"rank {g}: {op}" for g, op, _d in sorted(entries)
                )
                self.report.add(
                    "COL001",
                    f"collective #{seq} on communicator ctx={ctx!r} differs "
                    f"across ranks: {listing}",
                    key=("colop", repr(ctx), seq),
                )
                continue
            details = {repr(d) for _g, _op, d in entries}
            if len(details) > 1:
                op = next(iter(ops))
                listing = ", ".join(
                    f"rank {g}: {d!r}" for g, _op, d in sorted(entries)
                )
                self.report.add(
                    "COL002",
                    f"collective #{seq} ({op}) on communicator ctx={ctx!r} "
                    f"called with mismatched arguments: {listing}",
                    key=("coldetail", repr(ctx), seq),
                )


def _find_cycles(adj: Dict[int, List[int]]) -> List[Tuple[int, ...]]:
    """Distinct elementary cycles of a small digraph, canonicalised by
    rotating the smallest node first (iterative DFS; graphs here have at
    most nranks nodes, so simplicity beats asymptotics)."""
    cycles: List[Tuple[int, ...]] = []
    seen: set = set()
    for start in sorted(adj):
        stack: List[Tuple[int, Tuple[int, ...]]] = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for nxt in adj.get(node, ()):
                if nxt == path[0] and len(path) > 0:
                    k = path.index(min(path))
                    canon = path[k:] + path[:k]
                    if canon not in seen:
                        seen.add(canon)
                        cycles.append(canon)
                elif nxt not in path and len(path) < 64:
                    stack.append((nxt, path + (nxt,)))
    return cycles
