"""Cross-rank protocol verification (rules MTC101-MTC105).

Every dataflow pass so far reasons about *one* rank's control flow.
This module closes the loop: it abstractly executes each analyzed
function once per rank of a few small **model worlds** (sizes
:data:`WORLD_SIZES`), with ``comm.rank`` / ``comm.size`` bound to
concrete integers, records the per-rank abstract communication traces,
and joins them in the static match graph of
:mod:`repro.analyze.matchgraph`:

- **MTC101 / MTC102** -- a send (receive) with no feasible peer under
  the envelope rules of MPI matching (destination, source, tag,
  typed/object channel, wildcards honoured);
- **MTC103** -- a deterministic deadlock: the abstract scheduler, using
  rendezvous semantics for blocking sends, stops with a wait-for cycle
  (the classic head-to-head ``send``/``send``);
- **MTC104** -- ranks disagree on the collective sequence (kind or
  root) -- the cross-rank strengthening of SPMD101, which only sees
  that a collective sits under a rank-dependent branch;
- **MTC105** -- a *matched* send/receive pair whose statically known
  datatypes violate the paper's correctness contract: the send
  signature must be a prefix of the receive signature (MPI-3.0 section
  3.3.1, via the same :func:`repro.analyze.signatures.transfer_verdict`
  the concrete checker uses) and each endpoint's buffer must actually
  hold ``count`` copies of its datatype.

Soundness model
---------------

The extractor is deliberately *incomplete* but tries hard not to lie:

- Whenever a rank's behaviour depends on something it cannot evaluate
  -- data-dependent tags or peers, ``while`` loops around
  communication, unknown branches containing communication, dynamic
  peer sets, ``probe``/``waitany``/``split`` -- extraction **bails**
  for that model size and nothing is reported from it.
- A finding is emitted only when it appears at **every** model size
  that extracted successfully (intersection semantics).  Programs
  written for an assumed world size (e.g. a two-rank pingpong run
  under a size-4 model) produce spurious unmatched ops at the wrong
  sizes only, so the intersection discards them.
- Unknown non-rank conditions are assumed SPMD-replicated: branches
  without communication are skipped with their assignments poisoned,
  and guard-clause returns are assumed not taken, identically on every
  rank.

Only *top-level* functions that take a communicator parameter and are
never called inside their own module are verified directly -- anything
that is called is a helper, and is verified inlined at its call sites
(same module, bounded depth), where its arguments are known.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analyze.dataflow.engine import COLLECTIVE_METHODS, CallSummary
from repro.analyze.findings import Report
from repro.analyze.matchgraph import (
    ANY,
    Op,
    WorldResult,
    verify_world,
)
from repro.analyze.signatures import render_signature, transfer_verdict
from repro.datatypes.typemap import Datatype, primitive_for

__all__ = ["WORLD_SIZES", "FunctionStat", "check_module", "extract_traces"]

#: the model world sizes; a finding must hold at every size that
#: extracts to be reported
WORLD_SIZES = (2, 3, 4)

#: extraction budgets (exceeding any of them bails the model size)
MAX_UNROLL = 64          # iterations of one statically known loop
MAX_OPS = 512            # communication ops per rank trace
MAX_STMTS = 8192         # executed statements per rank (fuel)
MAX_INLINE_DEPTH = 5     # nested helper inlining

#: attribute names that mean "this object is used as a communicator"
_COMM_ATTRS = frozenset({
    "rank", "size", "send", "recv", "isend", "irecv", "sendrecv",
    "isend_obj", "recv_obj", "cpu", "compute",
}) | COLLECTIVE_METHODS

#: comm methods whose presence in un-analyzable code forces a bail
_COMM_OP_NAMES = frozenset({
    "send", "recv", "isend", "irecv", "sendrecv", "isend_obj",
    "recv_obj", "wait", "waitall", "waitany", "test", "probe", "iprobe",
}) | COLLECTIVE_METHODS

#: comm methods the extractor refuses outright (dynamic matching or
#: communicator surgery the static model cannot follow)
_BAIL_METHODS = frozenset({
    "probe", "iprobe", "waitany", "test", "split", "dup", "shrink",
    "agree", "revoke",
})

#: collective method -> index of its ``root`` argument (positional),
#: mirroring repro.mpi.comm; absent means the collective has no root
_COLLECTIVE_ROOT_ARG = {
    "bcast": 1,
    "gather_obj": 1,
    "reduce": 3,
    "gatherv": 4,
    "scatterv": 4,
}

_NUMPY_CTORS = frozenset({"zeros", "empty", "ones", "arange", "full"})

_DTYPE_SIZES = {
    "float64": 8, "float32": 4, "float16": 2,
    "int64": 8, "int32": 4, "int16": 2, "int8": 1,
    "uint64": 8, "uint32": 4, "uint16": 2, "uint8": 1,
    "double": 8, "single": 4, "byte": 1, "intc": 4, "intp": 8,
    "bool_": 1,
}


class _Bail(Exception):
    """Extraction gave up for this model size; carries the reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Return(Exception):
    def __init__(self, value: Any):
        super().__init__("return")
        self.value = value


class _EndTrace(Exception):
    """An unconditional ``raise`` was reached: the trace ends here."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Unknown:
    """The single abstract 'no idea' value."""

    _instance: Optional["_Unknown"] = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


UNKNOWN = _Unknown()


@dataclass(frozen=True)
class _CommVal:
    rank: int
    size: int


@dataclass(frozen=True)
class _RequestVal:
    """A pending request: the trace index of the op that created it."""

    op_index: int


@dataclass(frozen=True)
class _ArrayVal:
    """A numpy-ish buffer with (possibly) known element count."""

    elems: Any            # int or UNKNOWN
    itemsize: Any         # int or UNKNOWN
    dtype_name: Any = None  # str or None

    @property
    def nbytes(self) -> Any:
        if isinstance(self.elems, int) and isinstance(self.itemsize, int):
            return self.elems * self.itemsize
        return UNKNOWN


@dataclass(frozen=True)
class _TypedBufVal:
    buf_bytes: Any        # int or UNKNOWN
    datatype: Any         # Datatype or UNKNOWN
    count: Any            # int or UNKNOWN


@dataclass(frozen=True)
class _DTypeVal:
    name: str
    itemsize: int


@dataclass(frozen=True)
class _FuncVal:
    node: ast.AST


@dataclass
class FunctionStat:
    """What happened to one candidate function."""

    path: str
    func: str
    verified_sizes: Tuple[int, ...]
    bailed: Tuple[Tuple[int, str], ...] = ()
    ops: int = 0


# -- module context -----------------------------------------------------------


def _datatype_namespace() -> Dict[str, Any]:
    try:
        import repro.datatypes as dt
    except Exception:  # pragma: no cover - always importable here
        return {}
    names = ("Vector", "HVector", "Contiguous", "Indexed", "HIndexed",
             "Struct", "DOUBLE", "FLOAT", "INT", "CHAR", "BYTE", "LONG")
    return {n: getattr(dt, n) for n in names if hasattr(dt, n)}


class _ModuleCtx:
    """Everything the extractor shares across ranks and sizes."""

    def __init__(self, tree: ast.Module, path: str,
                 env: Optional[Dict[str, CallSummary]] = None):
        self.path = path
        self.env = env or {}
        self.datatypes = _datatype_namespace()
        self.module_funcs: Dict[str, ast.AST] = {
            node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.np_aliases: Set[str] = set()
        self.typedbuffer_names: Set[str] = set()
        self.request_names: Set[str] = set()
        self.consts: Dict[str, Any] = {}
        self._has_comm_memo: Dict[str, bool] = {}
        self._scan_module(tree)

    def _scan_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "numpy":
                        self.np_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "numpy":
                        self.np_aliases.add(local)
                    elif alias.name == "TypedBuffer":
                        self.typedbuffer_names.add(local)
                    elif alias.name == "Request":
                        self.request_names.add(local)
                    elif alias.name in ("ANY_SOURCE", "ANY_TAG"):
                        self.consts[local] = ANY
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(
                        value.value, (int, float, str, bool)):
                    if name in self.consts:
                        self.consts[name] = UNKNOWN  # reassigned: unsafe
                    else:
                        self.consts[name] = value.value

    def has_comm(self, node: ast.AST) -> bool:
        """Whether executing ``node`` could touch communication --
        directly, through a local helper (transitively), or through an
        imported function whose summary says it blocks/collects."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr in _COMM_OP_NAMES:
                return True
            if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await)):
                return True
            if isinstance(sub, ast.Call):
                fn = sub.func
                if isinstance(fn, ast.Name):
                    if self._local_has_comm(fn.id):
                        return True
                    summary = self.env.get(fn.id)
                    if summary is not None and (summary.calls_blocking
                                                or summary.calls_collective):
                        return True
                elif isinstance(fn, ast.Attribute) \
                        and isinstance(fn.value, ast.Name):
                    summary = self.env.get(f"{fn.value.id}.{fn.attr}")
                    if summary is not None and (summary.calls_blocking
                                                or summary.calls_collective):
                        return True
        return False

    def _local_has_comm(self, name: str) -> bool:
        if name not in self.module_funcs:
            return False
        if name in self._has_comm_memo:
            return self._has_comm_memo[name]
        self._has_comm_memo[name] = False  # cycle guard
        func = self.module_funcs[name]
        found = False
        for sub in ast.walk(func):
            if isinstance(sub, ast.Attribute) and sub.attr in _COMM_OP_NAMES:
                found = True
                break
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                    and sub.func.id != name \
                    and self._local_has_comm(sub.func.id):
                found = True
                break
        self._has_comm_memo[name] = found
        return found


# -- the abstract executor ----------------------------------------------------


class _Extractor:
    """Abstractly executes one function for one (rank, size) world."""

    def __init__(self, ctx: _ModuleCtx, rank: int, size: int):
        self.ctx = ctx
        self.rank = rank
        self.size = size
        self.trace: List[Op] = []
        self.fuel = MAX_STMTS
        self.inline_stack: List[str] = []
        self.func_name = ""

    # -- entry ----------------------------------------------------------------

    def run(self, func: ast.AST, comm_param: str) -> List[Op]:
        self.func_name = getattr(func, "name", "<fn>")
        env = self._bind_params(func, {comm_param: _CommVal(self.rank,
                                                            self.size)})
        try:
            self._exec_body(func.body, env)
        except _Return:
            pass
        except _EndTrace:
            pass
        return self.trace

    def _bind_params(self, func: ast.AST,
                     given: Dict[str, Any]) -> Dict[str, Any]:
        args = func.args
        if args.vararg is not None or args.kwarg is not None:
            raise _Bail(f"{getattr(func, 'name', '?')}: *args/**kwargs "
                        "parameters")
        env: Dict[str, Any] = {}
        params = [a.arg for a in args.posonlyargs + args.args]
        defaults = list(args.defaults)
        # right-align defaults onto params
        default_of: Dict[str, ast.AST] = {}
        for param, dnode in zip(params[len(params) - len(defaults):],
                                defaults):
            default_of[param] = dnode
        for a, dnode in zip(args.kwonlyargs, args.kw_defaults):
            if dnode is not None:
                default_of[a.arg] = dnode
            params.append(a.arg)
        for p in params:
            if p in given:
                env[p] = given[p]
            elif p in default_of:
                try:
                    env[p] = self._eval(default_of[p], env)
                except _Bail:
                    env[p] = UNKNOWN
            else:
                env[p] = UNKNOWN
        return env

    # -- statements -----------------------------------------------------------

    def _exec_body(self, body: Sequence[ast.stmt],
                   env: Dict[str, Any]) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.stmt, env: Dict[str, Any]) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise _Bail(f"{self.func_name}: statement budget exceeded")
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                             ast.Import, ast.ImportFrom, ast.Assert)):
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
            return
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, value, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self._eval(stmt.value, env),
                                  env)
            return
        if isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                cur = env.get(stmt.target.id, UNKNOWN)
                env[stmt.target.id] = self._binop_values(
                    stmt.op, cur, value)
            return
        if isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
            return
        if isinstance(stmt, ast.While):
            if self.ctx.has_comm(stmt):
                raise _Bail(f"{self.func_name}: while-loop around "
                            "communication")
            self._poison_assigned(stmt, env)
            return
        if isinstance(stmt, ast.Return):
            value = (self._eval(stmt.value, env)
                     if stmt.value is not None else None)
            raise _Return(value)
        if isinstance(stmt, ast.Raise):
            raise _EndTrace()
        if isinstance(stmt, ast.Try):
            if self.ctx.has_comm(stmt):
                raise _Bail(f"{self.func_name}: try-block around "
                            "communication")
            self._poison_assigned(stmt, env)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, UNKNOWN, env)
            self._exec_body(stmt.body, env)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = _FuncVal(stmt)
            return
        if isinstance(stmt, ast.Break):
            raise _Break()
        if isinstance(stmt, ast.Continue):
            raise _Continue()
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return
        if self.ctx.has_comm(stmt):
            raise _Bail(f"{self.func_name}: unsupported statement "
                        f"{type(stmt).__name__} around communication")
        self._poison_assigned(stmt, env)

    def _exec_if(self, stmt: ast.If, env: Dict[str, Any]) -> None:
        test = self._eval(stmt.test, env)
        if test is not UNKNOWN and not isinstance(
                test, (_CommVal, _RequestVal, _ArrayVal, _TypedBufVal,
                       _DTypeVal, _FuncVal)):
            branch = stmt.body if test else stmt.orelse
            self._exec_body(branch, env)
            return
        # unknown condition: SPMD-replicated by assumption, but we do not
        # know which way it goes -- only safe when neither branch talks
        for branch in (stmt.body, stmt.orelse):
            for sub_stmt in branch:
                if self.ctx.has_comm(sub_stmt):
                    raise _Bail(f"{self.func_name}: unknown branch "
                                "condition guards communication "
                                f"(line {stmt.lineno})")
                for sub in ast.walk(sub_stmt):
                    if isinstance(sub, (ast.Break, ast.Continue)):
                        raise _Bail(f"{self.func_name}: unknown branch "
                                    "condition guards loop control "
                                    f"(line {stmt.lineno})")
        # guard clauses (`if bad: return`) are assumed not taken --
        # SPMD-identical fall-through on every rank
        self._poison_assigned(stmt, env)

    def _exec_for(self, stmt: ast.For, env: Dict[str, Any]) -> None:
        items = self._eval(stmt.iter, env)
        if not isinstance(items, list):
            if self.ctx.has_comm(stmt):
                raise _Bail(f"{self.func_name}: loop over unknown iterable "
                            f"around communication (line {stmt.lineno})")
            self._poison_assigned(stmt, env)
            return
        if len(items) > MAX_UNROLL:
            raise _Bail(f"{self.func_name}: loop of {len(items)} iterations "
                        f"exceeds the unroll budget (line {stmt.lineno})")
        broke = False
        for item in items:
            self._bind_target(stmt.target, item, env)
            try:
                self._exec_body(stmt.body, env)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke:
            self._exec_body(stmt.orelse, env)

    def _bind_target(self, target: ast.AST, value: Any,
                     env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if isinstance(value, list) and len(value) == len(elts) \
                    and not any(isinstance(e, ast.Starred) for e in elts):
                for elt, v in zip(elts, value):
                    self._bind_target(elt, v, env)
            else:
                for elt in elts:
                    self._bind_target(elt, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, UNKNOWN, env)
        # Subscript / Attribute targets mutate objects we do not model

    def _poison_assigned(self, node: ast.AST, env: Dict[str, Any]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                env[sub.id] = UNKNOWN
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                env[sub.name] = UNKNOWN

    # -- expressions ----------------------------------------------------------

    def _eval(self, node: ast.AST, env: Dict[str, Any]) -> Any:
        if isinstance(node, (ast.YieldFrom, ast.Await)):
            return self._eval(node.value, env)
        if isinstance(node, ast.Yield):
            raise _Bail(f"{self.func_name}: bare 'yield' (engine-level "
                        "code, not a comm call)")
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self._lookup(node.id, env)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop_values(node.op, self._eval(node.left, env),
                                      self._eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if operand is UNKNOWN:
                return UNKNOWN
            try:
                if isinstance(node.op, ast.USub):
                    return -operand
                if isinstance(node.op, ast.UAdd):
                    return +operand
                if isinstance(node.op, ast.Not):
                    return not operand
                if isinstance(node.op, ast.Invert):
                    return ~operand
            except TypeError:
                return UNKNOWN
            return UNKNOWN
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.BoolOp):
            result = UNKNOWN
            for value in node.values:
                v = self._eval(value, env)
                if v is UNKNOWN:
                    return UNKNOWN
                result = v
                if isinstance(node.op, ast.And) and not v:
                    return v
                if isinstance(node.op, ast.Or) and v:
                    return v
            return result
        if isinstance(node, ast.IfExp):
            test = self._eval(node.test, env)
            if test is UNKNOWN:
                if self.ctx.has_comm(node):
                    raise _Bail(f"{self.func_name}: unknown conditional "
                                "expression around communication")
                return UNKNOWN
            return self._eval(node.body if test else node.orelse, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            if any(isinstance(e, ast.Starred) for e in node.elts):
                return UNKNOWN
            return [self._eval(e, env) for e in node.elts]
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env)
        if isinstance(node, ast.Slice):
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            if self.ctx.has_comm(node):
                raise _Bail(f"{self.func_name}: comprehension around "
                            "communication")
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            return UNKNOWN
        if isinstance(node, ast.Dict):
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return UNKNOWN
        if self.ctx.has_comm(node):
            raise _Bail(f"{self.func_name}: unsupported expression "
                        f"{type(node).__name__} around communication")
        return UNKNOWN

    def _lookup(self, name: str, env: Dict[str, Any]) -> Any:
        if name in env:
            return env[name]
        if name in self.ctx.consts:
            return self.ctx.consts[name]
        if name in ("ANY_SOURCE", "ANY_TAG"):
            return ANY
        if name in self.ctx.datatypes and not callable(
                self.ctx.datatypes[name]):
            return self.ctx.datatypes[name]
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute,
                        env: Dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        if isinstance(base, _CommVal):
            if node.attr == "rank":
                return base.rank
            if node.attr == "size":
                return base.size
            return UNKNOWN
        if isinstance(base, _ArrayVal):
            if node.attr == "size":
                return base.elems
            if node.attr == "itemsize":
                return base.itemsize
            if node.attr == "nbytes":
                return base.nbytes
            if node.attr == "dtype" and base.dtype_name is not None \
                    and isinstance(base.itemsize, int):
                return _DTypeVal(base.dtype_name, base.itemsize)
            return UNKNOWN
        if isinstance(base, Datatype):
            if node.attr in ("size", "extent"):
                return int(getattr(base, node.attr))
            return UNKNOWN
        # np.float64 and friends used as dtype tokens
        if isinstance(node.value, ast.Name) \
                and node.value.id in self.ctx.np_aliases \
                and node.attr in _DTYPE_SIZES:
            return _DTypeVal(node.attr, _DTYPE_SIZES[node.attr])
        return UNKNOWN

    def _compare(self, node: ast.Compare, env: Dict[str, Any]) -> Any:
        left = self._eval(node.left, env)
        for op, comp in zip(node.ops, node.comparators):
            right = self._eval(comp, env)
            if left is UNKNOWN or right is UNKNOWN:
                return UNKNOWN
            try:
                if isinstance(op, ast.Eq):
                    ok = left == right
                elif isinstance(op, ast.NotEq):
                    ok = left != right
                elif isinstance(op, ast.Lt):
                    ok = left < right
                elif isinstance(op, ast.LtE):
                    ok = left <= right
                elif isinstance(op, ast.Gt):
                    ok = left > right
                elif isinstance(op, ast.GtE):
                    ok = left >= right
                elif isinstance(op, ast.In):
                    ok = isinstance(right, list) and left in right
                elif isinstance(op, ast.NotIn):
                    ok = isinstance(right, list) and left not in right
                else:
                    return UNKNOWN
            except TypeError:
                return UNKNOWN
            if not ok:
                return False
            left = right
        return True

    def _binop_values(self, op: ast.operator, left: Any, right: Any) -> Any:
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        try:
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.FloorDiv):
                return left // right
            if isinstance(op, ast.Div):
                return left / right
            if isinstance(op, ast.Mod):
                return left % right
            if isinstance(op, ast.Pow):
                return left ** right
            if isinstance(op, ast.BitXor):
                return left ^ right
            if isinstance(op, ast.BitAnd):
                return left & right
            if isinstance(op, ast.BitOr):
                return left | right
            if isinstance(op, ast.LShift):
                return left << right
            if isinstance(op, ast.RShift):
                return left >> right
        except (TypeError, ValueError, ZeroDivisionError):
            return UNKNOWN
        return UNKNOWN

    def _subscript(self, node: ast.Subscript, env: Dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        if isinstance(node.slice, ast.Slice):
            lower = (self._eval(node.slice.lower, env)
                     if node.slice.lower is not None else 0)
            upper = (self._eval(node.slice.upper, env)
                     if node.slice.upper is not None else None)
            step = (self._eval(node.slice.step, env)
                    if node.slice.step is not None else 1)
            if isinstance(base, _ArrayVal) and isinstance(base.elems, int) \
                    and isinstance(lower, int) and step == 1 \
                    and (upper is None or isinstance(upper, int)):
                stop = base.elems if upper is None else min(upper, base.elems)
                if lower < 0 or (upper is not None and upper < 0):
                    return UNKNOWN
                return _ArrayVal(max(0, stop - lower), base.itemsize,
                                 base.dtype_name)
            if isinstance(base, list) and isinstance(lower, int) \
                    and step == 1 and (upper is None
                                       or isinstance(upper, int)):
                return base[lower:upper]
            return UNKNOWN
        index = self._eval(node.slice, env)
        if isinstance(base, list) and isinstance(index, int) \
                and -len(base) <= index < len(base):
            return base[index]
        return UNKNOWN

    # -- calls ----------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env: Dict[str, Any]) -> Any:
        if any(isinstance(a, ast.Starred) for a in node.args) \
                or any(kw.arg is None for kw in node.keywords):
            if self.ctx.has_comm(node):
                raise _Bail(f"{self.func_name}: starred arguments in a "
                            "communicating call")
            return UNKNOWN
        fn = node.func
        if isinstance(fn, ast.Attribute):
            return self._eval_method(node, fn, env)
        if isinstance(fn, ast.Name):
            return self._eval_named_call(node, fn.id, env)
        if self.ctx.has_comm(node):
            raise _Bail(f"{self.func_name}: call through an unsupported "
                        "callee expression around communication")
        return UNKNOWN

    def _args_kwargs(self, node: ast.Call, env: Dict[str, Any],
                     ) -> Tuple[List[Any], Dict[str, Any]]:
        args = [self._eval(a, env) for a in node.args]
        kwargs = {kw.arg: self._eval(kw.value, env) for kw in node.keywords}
        return args, kwargs

    def _eval_method(self, node: ast.Call, fn: ast.Attribute,
                     env: Dict[str, Any]) -> Any:
        base = self._eval(fn.value, env)
        attr = fn.attr
        if isinstance(base, _CommVal):
            return self._comm_method(node, attr, env)
        if isinstance(base, _RequestVal):
            if attr == "wait":
                return self._record_wait((base.op_index,), node.lineno)
            if attr in ("test", "waitany"):
                raise _Bail(f"{self.func_name}: data-dependent request "
                            f"completion via .{attr}() (line {node.lineno})")
            return UNKNOWN
        if attr == "waitall":
            # Request.waitall([...]) -- by far the common spelling; the
            # base class name itself resolves to UNKNOWN
            args, _ = self._args_kwargs(node, env)
            if len(args) == 1 and isinstance(args[0], list) \
                    and all(isinstance(r, _RequestVal) for r in args[0]):
                return self._record_wait(
                    tuple(r.op_index for r in args[0]), node.lineno)
            raise _Bail(f"{self.func_name}: waitall over an unknown "
                        f"request set (line {node.lineno})")
        if isinstance(base, list):
            args, _ = self._args_kwargs(node, env)
            if attr == "append" and len(args) == 1:
                base.append(args[0])
                return None
            if attr == "extend" and len(args) == 1 \
                    and isinstance(args[0], list):
                base.extend(args[0])
                return None
            if attr == "clear":
                base.clear()
                return None
            if attr == "pop" and not args and base:
                return base.pop()
            return UNKNOWN
        # numpy constructors through a module alias
        if isinstance(fn.value, ast.Name) \
                and fn.value.id in self.ctx.np_aliases:
            return self._numpy_call(node, attr, env)
        if attr in _COMM_OP_NAMES or attr in _BAIL_METHODS:
            raise _Bail(f"{self.func_name}: .{attr}() on an unknown object "
                        f"-- possibly a communicator (line {node.lineno})")
        # module-qualified helper with a known summary
        if isinstance(fn.value, ast.Name):
            summary = self.ctx.env.get(f"{fn.value.id}.{attr}")
            if summary is not None and (summary.calls_blocking
                                        or summary.calls_collective):
                raise _Bail(f"{self.func_name}: cross-module communicating "
                            f"helper {fn.value.id}.{attr}() "
                            f"(line {node.lineno})")
        args, _ = self._args_kwargs(node, env)
        if any(isinstance(a, _CommVal) for a in args):
            raise _Bail(f"{self.func_name}: communicator passed into "
                        f"unresolved .{attr}() (line {node.lineno})")
        return UNKNOWN

    def _numpy_call(self, node: ast.Call, attr: str,
                    env: Dict[str, Any]) -> Any:
        args, kwargs = self._args_kwargs(node, env)
        if attr in _NUMPY_CTORS:
            elems: Any = UNKNOWN
            if attr == "arange":
                shape_args = [a for a in args if not isinstance(a, _DTypeVal)]
                if len(shape_args) == 1 and isinstance(shape_args[0], int):
                    elems = max(0, shape_args[0])
            elif args:
                shape = args[0]
                if isinstance(shape, int):
                    elems = shape
                elif isinstance(shape, list) \
                        and all(isinstance(d, int) for d in shape):
                    elems = 1
                    for d in shape:
                        elems *= d
            dtype = kwargs.get("dtype")
            if dtype is None and attr == "full" and len(args) >= 3 \
                    and isinstance(args[2], _DTypeVal):
                dtype = args[2]
            if dtype is None and attr in ("zeros", "empty", "ones") \
                    and len(args) >= 2 and isinstance(args[1], _DTypeVal):
                dtype = args[1]
            if isinstance(dtype, _DTypeVal):
                return _ArrayVal(elems, dtype.itemsize, dtype.name)
            if dtype is None:
                if attr == "arange":
                    return _ArrayVal(elems, 8, "int64")
                return _ArrayVal(elems, 8, "float64")
            return _ArrayVal(elems, UNKNOWN, None)
        if attr in ("float64", "float32", "int64", "int32") and args:
            return UNKNOWN
        return UNKNOWN

    def _eval_named_call(self, node: ast.Call, name: str,
                         env: Dict[str, Any]) -> Any:
        args, kwargs = self._args_kwargs(node, env)
        # nested function defined in this body
        local = env.get(name)
        if isinstance(local, _FuncVal):
            return self._inline(local.node, name, node, args, kwargs)
        if name in self.ctx.module_funcs and name not in env:
            return self._inline(self.ctx.module_funcs[name], name, node,
                                args, kwargs)
        if name in ("range",):
            ints = [a for a in args if isinstance(a, int)]
            if len(ints) == len(args) and 1 <= len(args) <= 3:
                seq = list(range(*args))
                if len(seq) > MAX_UNROLL:
                    return seq  # let the loop handler bail on the budget
                return seq
            return UNKNOWN
        if name == "len":
            if args and isinstance(args[0], list):
                return len(args[0])
            if args and isinstance(args[0], _ArrayVal) \
                    and isinstance(args[0].elems, int):
                return args[0].elems
            return UNKNOWN
        if name in ("min", "max", "abs", "sum", "int", "float", "bool"):
            if all(isinstance(a, (int, float, bool)) for a in args) and args:
                try:
                    return {"min": min, "max": max, "abs": abs, "sum": sum,
                            "int": int, "float": float,
                            "bool": bool}[name](*args)
                except (TypeError, ValueError):
                    return UNKNOWN
            if name in ("min", "max", "sum") and len(args) == 1 \
                    and isinstance(args[0], list) \
                    and all(isinstance(v, (int, float)) for v in args[0]) \
                    and args[0]:
                return {"min": min, "max": max, "sum": sum}[name](args[0])
            return UNKNOWN
        if name == "enumerate" and args and isinstance(args[0], list):
            start = args[1] if len(args) > 1 and isinstance(args[1], int) \
                else 0
            return [[start + i, v] for i, v in enumerate(args[0])]
        if name == "zip" and args \
                and all(isinstance(a, list) for a in args):
            return [list(t) for t in zip(*args)]
        if name == "list" and args and isinstance(args[0], list):
            return list(args[0])
        if name == "sorted" and args and isinstance(args[0], list) \
                and not kwargs \
                and all(isinstance(v, (int, float)) for v in args[0]):
            return sorted(args[0])
        if name in self.ctx.typedbuffer_names:
            return self._typedbuffer_ctor(args, kwargs)
        if name in self.ctx.datatypes:
            ctor = self.ctx.datatypes[name]
            if callable(ctor):
                if any(a is UNKNOWN or isinstance(
                        a, (_CommVal, _ArrayVal, _TypedBufVal))
                        for a in args) or any(
                        v is UNKNOWN for v in kwargs.values()):
                    return UNKNOWN
                try:
                    return ctor(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            return ctor
        summary = self.ctx.env.get(name)
        if summary is not None and (summary.calls_blocking
                                    or summary.calls_collective):
            raise _Bail(f"{self.func_name}: cross-module communicating "
                        f"helper {name}() (line {node.lineno})")
        if any(isinstance(a, _CommVal) for a in args) \
                or any(isinstance(v, _CommVal) for v in kwargs.values()):
            raise _Bail(f"{self.func_name}: communicator passed into "
                        f"unresolved {name}() (line {node.lineno})")
        return UNKNOWN

    def _typedbuffer_ctor(self, args: List[Any],
                          kwargs: Dict[str, Any]) -> Any:
        params = ["buffer", "datatype", "count", "offset_bytes"]
        bound = dict(zip(params, args))
        bound.update(kwargs)
        buffer = bound.get("buffer", UNKNOWN)
        datatype = bound.get("datatype", UNKNOWN)
        count = bound.get("count", 1)
        offset = bound.get("offset_bytes", 0)
        buf_bytes: Any = UNKNOWN
        if isinstance(buffer, _ArrayVal) and isinstance(buffer.nbytes, int) \
                and isinstance(offset, int):
            buf_bytes = buffer.nbytes - offset
        if not isinstance(datatype, Datatype):
            datatype = UNKNOWN
        if not isinstance(count, int):
            count = UNKNOWN
        return _TypedBufVal(buf_bytes, datatype, count)

    def _inline(self, func: ast.AST, name: str, node: ast.Call,
                args: List[Any], kwargs: Dict[str, Any]) -> Any:
        if name in self.inline_stack:
            raise _Bail(f"{self.func_name}: recursive helper {name}() "
                        f"(line {node.lineno})")
        if len(self.inline_stack) >= MAX_INLINE_DEPTH:
            raise _Bail(f"{self.func_name}: helper inlining depth exceeded "
                        f"at {name}() (line {node.lineno})")
        fargs = func.args
        if fargs.vararg is not None or fargs.kwarg is not None:
            raise _Bail(f"{self.func_name}: helper {name}() takes "
                        "*args/**kwargs")
        params = [a.arg for a in fargs.posonlyargs + fargs.args]
        given: Dict[str, Any] = {}
        for pos, value in enumerate(args):
            if pos < len(params):
                given[params[pos]] = value
        given.update(kwargs)
        callee_env = self._bind_params(func, given)
        self.inline_stack.append(name)
        try:
            self._exec_body(func.body, callee_env)
            result: Any = None
        except _Return as ret:
            result = ret.value
        finally:
            self.inline_stack.pop()
        return result

    # -- comm-op recording -----------------------------------------------------

    def _record(self, op: Op) -> int:
        if len(self.trace) >= MAX_OPS:
            raise _Bail(f"{self.func_name}: trace exceeds {MAX_OPS} "
                        "operations")
        self.trace.append(op)
        return op.index

    def _record_wait(self, waits_on: Tuple[int, ...], line: int) -> Any:
        self._record(Op(rank=self.rank, index=len(self.trace), kind="wait",
                        line=line, func=self.func_name, waits_on=waits_on))
        return UNKNOWN

    def _require_rank(self, value: Any, what: str, line: int,
                      wildcard_ok: bool = False) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise _Bail(f"{self.func_name}: data-dependent {what} "
                        f"(line {line})")
        if value == ANY and wildcard_ok:
            return ANY
        if not 0 <= value < self.size:
            raise _EndTrace()  # invalid rank raises MPIError at runtime
        return value

    def _require_tag(self, value: Any, line: int) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise _Bail(f"{self.func_name}: data-dependent tag "
                        f"(line {line})")
        return value

    def _bound(self, node: ast.Call, env: Dict[str, Any],
               params: List[str]) -> Dict[str, Any]:
        args, kwargs = self._args_kwargs(node, env)
        bound = dict(zip(params, args))
        bound.update(kwargs)
        return bound

    def _payload(self, bound: Dict[str, Any],
                 ) -> Tuple[Any, Any, Any]:
        """Effective (datatype, count, capacity bytes) of one endpoint,
        mirroring ``repro.mpi.comm.as_typed``; ``None`` where unknown."""
        buffer = bound.get("buffer", UNKNOWN)
        datatype = bound.get("datatype", UNKNOWN)
        count = bound.get("count", UNKNOWN)
        offset = bound.get("offset_bytes", 0)
        if not isinstance(offset, int):
            offset = None
        if isinstance(buffer, _TypedBufVal):
            dt = buffer.datatype if isinstance(buffer.datatype, Datatype) \
                else None
            cnt = buffer.count if isinstance(buffer.count, int) else None
            cap = buffer.buf_bytes if isinstance(buffer.buf_bytes, int) \
                else None
            return dt, cnt, cap
        dt = datatype if isinstance(datatype, Datatype) else None
        cnt = count if isinstance(count, int) and not isinstance(
            count, bool) else None
        cap = None
        if isinstance(buffer, _ArrayVal):
            nbytes = buffer.nbytes
            if isinstance(nbytes, int) and offset is not None:
                cap = nbytes - offset
            if dt is None and buffer.dtype_name is not None:
                try:
                    dt = primitive_for(np.dtype(buffer.dtype_name))
                except Exception:
                    dt = None
            if cnt is None and dt is not None and cap is not None \
                    and dt.extent > 0:
                cnt = cap // int(dt.extent)
        return dt, cnt, cap

    def _comm_method(self, node: ast.Call, attr: str,
                     env: Dict[str, Any]) -> Any:
        line = node.lineno
        if attr in _BAIL_METHODS:
            raise _Bail(f"{self.func_name}: comm.{attr}() is outside the "
                        f"static model (line {line})")
        if attr in ("cpu", "compute"):
            return None
        if attr in ("isend", "send"):
            bound = self._bound(node, env, ["buffer", "dest", "tag",
                                            "datatype", "count",
                                            "offset_bytes"])
            dest = self._require_rank(bound.get("dest", UNKNOWN),
                                      "destination", line)
            tag = self._require_tag(bound.get("tag", 0), line)
            dt, cnt, cap = self._payload(bound)
            idx = self._record(Op(
                rank=self.rank, index=len(self.trace), kind=attr, line=line,
                func=self.func_name, peer=dest, tag=tag, channel="typed",
                count=cnt, datatype=dt, buf_bytes=cap))
            return _RequestVal(idx) if attr == "isend" else None
        if attr in ("irecv", "recv"):
            bound = self._bound(node, env, ["buffer", "source", "tag",
                                            "datatype", "count",
                                            "offset_bytes"])
            source = self._require_rank(bound.get("source", ANY), "source",
                                        line, wildcard_ok=True)
            tag = self._require_tag(bound.get("tag", ANY), line)
            dt, cnt, cap = self._payload(bound)
            idx = self._record(Op(
                rank=self.rank, index=len(self.trace), kind=attr, line=line,
                func=self.func_name, peer=source, tag=tag, channel="typed",
                count=cnt, datatype=dt, buf_bytes=cap))
            return _RequestVal(idx) if attr == "irecv" else UNKNOWN
        if attr == "sendrecv":
            bound = self._bound(node, env, ["sendbuffer", "dest",
                                            "recvbuffer", "source",
                                            "sendtag", "recvtag"])
            dest = self._require_rank(bound.get("dest", UNKNOWN),
                                      "destination", line)
            source = self._require_rank(bound.get("source", UNKNOWN),
                                        "source", line, wildcard_ok=True)
            sendtag = self._require_tag(bound.get("sendtag", 0), line)
            recvtag = bound.get("recvtag")
            if recvtag is None:
                recvtag = sendtag
            recvtag = self._require_tag(recvtag, line)
            sdt, scnt, scap = self._payload({"buffer":
                                             bound.get("sendbuffer",
                                                       UNKNOWN)})
            rdt, rcnt, rcap = self._payload({"buffer":
                                             bound.get("recvbuffer",
                                                       UNKNOWN)})
            # mirrors the implementation: irecv posts, isend posts, then
            # both complete under one wait
            ridx = self._record(Op(
                rank=self.rank, index=len(self.trace), kind="irecv",
                line=line, func=self.func_name, peer=source, tag=recvtag,
                channel="typed", count=rcnt, datatype=rdt, buf_bytes=rcap))
            sidx = self._record(Op(
                rank=self.rank, index=len(self.trace), kind="isend",
                line=line, func=self.func_name, peer=dest, tag=sendtag,
                channel="typed", count=scnt, datatype=sdt, buf_bytes=scap))
            self._record(Op(rank=self.rank, index=len(self.trace),
                            kind="wait", line=line, func=self.func_name,
                            waits_on=(ridx, sidx)))
            return UNKNOWN
        if attr == "isend_obj":
            bound = self._bound(node, env, ["value", "dest", "tag",
                                            "nbytes"])
            dest = self._require_rank(bound.get("dest", UNKNOWN),
                                      "destination", line)
            tag = self._require_tag(bound.get("tag", 0), line)
            idx = self._record(Op(
                rank=self.rank, index=len(self.trace), kind="isend",
                line=line, func=self.func_name, peer=dest, tag=tag,
                channel="obj", eager=True))
            return _RequestVal(idx)
        if attr == "recv_obj":
            bound = self._bound(node, env, ["source", "tag"])
            source = self._require_rank(bound.get("source", UNKNOWN),
                                        "source", line, wildcard_ok=True)
            tag = self._require_tag(bound.get("tag", UNKNOWN), line)
            self._record(Op(
                rank=self.rank, index=len(self.trace), kind="recv",
                line=line, func=self.func_name, peer=source, tag=tag,
                channel="obj"))
            return UNKNOWN
        if attr in COLLECTIVE_METHODS:
            root: Optional[int] = None
            root_pos = _COLLECTIVE_ROOT_ARG.get(attr)
            if root_pos is not None:
                args, kwargs = self._args_kwargs(node, env)
                value: Any = 0  # every rooted collective defaults root=0
                if "root" in kwargs:
                    value = kwargs["root"]
                elif len(args) > root_pos:
                    value = args[root_pos]
                if isinstance(value, int) and not isinstance(value, bool):
                    root = value
                else:
                    raise _Bail(f"{self.func_name}: data-dependent "
                                f"collective root (line {line})")
            self._record(Op(rank=self.rank, index=len(self.trace),
                            kind="coll", line=line, func=self.func_name,
                            coll=attr, root=root))
            return UNKNOWN
        # unknown comm attribute (config access etc.): evaluate arguments
        # for their effects and move on
        self._args_kwargs(node, env)
        return UNKNOWN


# -- function discovery and the rule driver -----------------------------------


def _called_names(tree: ast.Module) -> Set[str]:
    """Names invoked anywhere in the module -- such functions are
    helpers, verified inlined at their call sites, not as roots."""
    called: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name):
                called.add(fn.id)
            elif isinstance(fn, ast.Attribute):
                called.add(fn.attr)
    return called


def _comm_params(func: ast.AST) -> List[str]:
    """Parameters of ``func`` that are used as communicators."""
    args = func.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    used: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr in _COMM_ATTRS \
                and isinstance(node.value, ast.Name) \
                and node.value.id in params:
            used.add(node.value.id)
    for p in params:
        if p == "comm" and p not in used:
            used.add(p)
    return [p for p in params if p in used]


def extract_traces(ctx: _ModuleCtx, func: ast.AST, comm_param: str,
                   size: int) -> Dict[int, List[Op]]:
    """Per-rank traces of ``func`` under a ``size``-rank model world.

    Raises :class:`_Bail` when any rank's behaviour is outside the
    static model at this size.
    """
    traces: Dict[int, List[Op]] = {}
    for rank in range(size):
        traces[rank] = _Extractor(ctx, rank, size).run(func, comm_param)
    return traces


def _bytes_needed(datatype: Datatype, count: int) -> int:
    """Bytes a buffer must hold for ``count`` copies of ``datatype``
    (the last copy only needs its furthest-reaching block)."""
    if count <= 0:
        return 0
    blocks = datatype.flatten()
    if blocks.num_blocks == 0:
        return 0
    one = int(np.max(blocks.offsets + blocks.lengths))
    return (count - 1) * int(datatype.extent) + one


def _world_findings(result: WorldResult) -> Dict[Tuple, Dict[str, Any]]:
    """All findings of one model world, keyed for cross-size
    intersection."""
    out: Dict[Tuple, Dict[str, Any]] = {}
    for op in result.unmatched_sends:
        out[("MTC101", op.func, op.line)] = {
            "rule": "MTC101", "line": op.line, "func": op.func,
            "message": f"{op.describe()} is never received "
                       "under the model worlds",
        }
    for op in result.unmatched_recvs:
        out[("MTC102", op.func, op.line)] = {
            "rule": "MTC102", "line": op.line, "func": op.func,
            "message": f"{op.describe()} is never sent to "
                       "under the model worlds",
        }
    if result.divergence is not None:
        div = result.divergence
        line = max((l for _k, _r, l in div.per_rank.values()), default=0)
        func = next((op.func for t in result.traces.values() for op in t
                     if op.func), "")
        what = "kind" if div.kind_mismatch else "root"
        out[("MTC104", func)] = {
            "rule": "MTC104", "line": line, "func": func,
            "message": f"collective sequence diverges across ranks "
                       f"({what} mismatch at collective "
                       f"#{div.index}): {div.describe()}",
        }
    if result.deadlock is not None:
        dl = result.deadlock
        line = min((op.line for op in dl.blocked if op.line), default=0)
        func = next((op.func for op in dl.blocked if op.func), "")
        out[("MTC103", func)] = {
            "rule": "MTC103", "line": line, "func": func,
            "message": f"deterministic deadlock: {dl.describe()}",
        }
    for send, recv in result.matches:
        if send.channel != "typed":
            continue
        findings = _mtc105(send, recv)
        for suffix, message in findings:
            out[("MTC105", send.func, send.line, recv.line, suffix)] = {
                "rule": "MTC105", "line": recv.line or send.line,
                "func": send.func or recv.func, "message": message,
            }
    return out


def _mtc105(send: Op, recv: Op) -> List[Tuple[str, str]]:
    """Signature/truncation problems of one matched edge, as
    (kind-suffix, message) pairs."""
    problems: List[Tuple[str, str]] = []
    if isinstance(send.datatype, Datatype) \
            and isinstance(recv.datatype, Datatype) \
            and isinstance(send.count, int) and isinstance(recv.count, int):
        verdict = transfer_verdict(send.datatype, send.count,
                                   recv.datatype, recv.count)
        edge = (f"rank {send.rank} (line {send.line}) -> "
                f"rank {recv.rank} (line {recv.line})")
        if verdict.truncates:
            problems.append((
                "truncation",
                f"truncation on {edge}: send is {verdict.send_bytes} bytes "
                f"but the receive holds only {verdict.recv_bytes}",
            ))
        if not verdict.prefix_ok:
            problems.append((
                "prefix",
                f"signature mismatch on {edge}: send signature "
                f"[{render_signature(verdict.send_sig)}] is not a prefix "
                f"of receive signature "
                f"[{render_signature(verdict.recv_sig)}]",
            ))
    for op, side in ((send, "send"), (recv, "receive")):
        if isinstance(op.datatype, Datatype) and isinstance(op.count, int) \
                and isinstance(op.buf_bytes, int):
            need = _bytes_needed(op.datatype, op.count)
            if op.buf_bytes < need:
                problems.append((
                    f"extent-{side}",
                    f"{side} buffer on rank {op.rank} (line {op.line}) "
                    f"holds {op.buf_bytes} bytes but count={op.count} x "
                    f"{op.datatype!r} needs {need}",
                ))
    return problems


def check_module(tree: ast.Module, path: str, report: Report,
                 env: Optional[Dict[str, CallSummary]] = None,
                 stats: Optional[List[FunctionStat]] = None) -> None:
    """Run the protocol verifier over one parsed module.

    Every uncalled top-level function with a communicator parameter is
    executed under each model size of :data:`WORLD_SIZES`; a finding is
    reported only when present at every size that extracted.
    """
    ctx = _ModuleCtx(tree, path, env)
    called = _called_names(tree)
    for name, func in ctx.module_funcs.items():
        if name in called:
            continue
        comm_params = _comm_params(func)
        if len(comm_params) != 1:
            continue
        results: List[WorldResult] = []
        bails: List[Tuple[int, str]] = []
        for size in WORLD_SIZES:
            try:
                traces = extract_traces(ctx, func, comm_params[0], size)
            except _Bail as bail:
                bails.append((size, bail.reason))
                continue
            results.append(verify_world(traces, size))
        if stats is not None:
            stats.append(FunctionStat(
                path=path, func=name,
                verified_sizes=tuple(r.size for r in results),
                bailed=tuple(bails),
                ops=max((r.num_ops for r in results), default=0)))
        if not results:
            continue
        per_size = [_world_findings(r) for r in results]
        common = set(per_size[0])
        for keys in per_size[1:]:
            common &= set(keys)
        sizes = "/".join(str(r.size) for r in results)
        for key in sorted(common, key=lambda k: (k[0], str(k[1:]))):
            payload = per_size[0][key]
            fname = payload["func"] or name
            report.add(
                payload["rule"],
                f"{fname}: {payload['message']} "
                f"(model sizes {sizes})",
                location=path,
                line=payload["line"] or func.lineno,
                key=(payload["rule"], path) + key[1:],
            )
