"""Command-line entry point: ``python -m repro.analyze``.

Modes (combinable):

``python -m repro.analyze --lint src``
    Lint every ``.py`` file under the given files/directories
    (LNT rules).  Exit code 1 if anything actionable is found.

``python -m repro.analyze --dataflow src examples``
    Additionally run the CFG/fixpoint dataflow passes (REQ1xx request
    lifetime, BUF1xx buffer aliasing, SPMD1xx rank divergence, PLAN1xx
    static communication plans).

``python -m repro.analyze --protocol src examples``
    Additionally run the cross-rank protocol verifier (MTC10x): every
    uncalled top-level function taking a communicator is abstractly
    executed under small model worlds and its per-rank traces joined
    in a static match graph (unmatched sends/receives, deterministic
    deadlocks, collective divergence, signature/truncation mismatch at
    matched endpoints).  Combinable with ``--dataflow``.

``python -m repro.analyze examples/ghost_exchange_2d.py``
    Same as ``--lint`` for the named script (scripts are linted by
    default).

``python -m repro.analyze --run examples/ghost_exchange_2d.py``
    Additionally *execute* the script with every :class:`Cluster` it
    creates instrumented by a :class:`RuntimeVerifier`, then report
    runtime findings (deadlocks, leaked requests, signature mismatches,
    collective inconsistencies, zero-byte audits).

Output:

``--format text|json|sarif`` selects the emitter (JSON carries the
extracted communication plans; SARIF 2.1.0 feeds CI annotations);
``--output FILE`` writes the machine-readable document to a file while
keeping the human-readable summary on stdout.  Inline
``# analyze: ignore[CODE]`` comments suppress findings per line.

Rewriting and the static->runtime loop:

``--fix`` applies the conservative auto-rewrites of
:mod:`repro.analyze.fix` (insert missing ``yield from``, wait on every
path, hoist loop-invariant flatten/pack, drop stale suppressions) and
writes the changed files back; ``--fix --check`` prints the unified
diffs *without writing* and exits 1 when any rewrite would apply -- the
CI fix-clean gate.  ``--plans-out FILE`` (with ``--dataflow``) writes
the extracted PLAN10x communication plans as a ``repro-plans/1``
document that ``python -m repro.bench --autotune --plans FILE`` uses to
pre-seed the tuning table (see ``docs/ANALYZE.md``).
"""

from __future__ import annotations

import argparse
import runpy
import sys
from typing import List

from repro.analyze.findings import Report
from repro.analyze.lint import lint_paths
from repro.analyze.runtime import RuntimeVerifier


def _run_verified(script: str, report: Report) -> None:
    """Execute ``script`` with auto-attached runtime verifiers."""
    from repro.mpi.comm import Cluster, MPIError
    from repro.simtime.engine import SimulationDeadlock

    verifiers: List[RuntimeVerifier] = []
    original_init = Cluster.__init__
    original_run = Cluster.run

    def instrumented_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        verifiers.append(RuntimeVerifier.attach(self))

    def instrumented_run(self, fn, *args, **kwargs):
        # record deadlocks on the attached verifier even when the script
        # drives cluster.run itself (and possibly swallows the exception)
        try:
            return original_run(self, fn, *args, **kwargs)
        except SimulationDeadlock as exc:
            for verifier in verifiers:
                if verifier.cluster is self and verifier.deadlock is None:
                    verifier.deadlock = exc
            raise

    Cluster.__init__ = instrumented_init
    Cluster.run = instrumented_run
    try:
        runpy.run_path(script, run_name="__main__")
    except (SimulationDeadlock, MPIError):
        pass  # already recorded on the verifier; reported below
    finally:
        Cluster.__init__ = original_init
        Cluster.run = original_run
        for verifier in verifiers:
            report.extend(verifier.finalize())


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="MPI correctness analyzer: lint, CFG/dataflow "
                    "analysis, static signature checks and runtime "
                    "verification.",
    )
    parser.add_argument("paths", nargs="+",
                        help="python files or directories to analyze")
    parser.add_argument("--lint", action="store_true",
                        help="lint only (default when --run is not given)")
    parser.add_argument("--dataflow", action="store_true",
                        help="run the CFG/fixpoint dataflow passes "
                             "(REQ1xx/BUF1xx/SPMD1xx/PLAN1xx)")
    parser.add_argument("--protocol", action="store_true",
                        help="run the cross-rank protocol verifier "
                             "(MTC10x match-graph rules)")
    parser.add_argument("--protocol-stats", action="store_true",
                        help="with --protocol: print what was verified "
                             "and where extraction bailed")
    parser.add_argument("--run", action="store_true",
                        help="also execute the given script(s) under a "
                             "runtime verifier")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--output", "-o", metavar="FILE",
                        help="write the json/sarif document to FILE "
                             "(text summary stays on stdout)")
    parser.add_argument("--show-info", action="store_true",
                        help="include informational findings in the output")
    parser.add_argument("--show-plans", action="store_true",
                        help="print the extracted communication plans "
                             "(text format; json always carries them)")
    parser.add_argument("--fix", action="store_true",
                        help="apply the conservative auto-rewrites and "
                             "write the files back")
    parser.add_argument("--check", action="store_true",
                        help="with --fix: print the diffs without "
                             "writing; exit 1 if any rewrite would apply")
    parser.add_argument("--plans-out", metavar="FILE",
                        help="with --dataflow: write the extracted "
                             "communication plans as a repro-plans/1 "
                             "JSON document (autotuner pre-seed input)")
    args = parser.parse_args(argv)

    if args.check and not args.fix:
        parser.error("--check requires --fix")

    if args.fix:
        from repro.analyze.fix import fix_paths

        try:
            result = fix_paths(args.paths, write=not args.check)
        except (FileNotFoundError, SyntaxError) as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        if result:
            if args.check:
                sys.stdout.write(result.diff())
                print(f"analyze --fix --check: {len(result.changed)} "
                      "file(s) would be rewritten")
                return 1
            for action in result.actions:
                print(action)
            print(f"analyze --fix: rewrote {len(result.changed)} file(s)")
        else:
            print("analyze --fix: nothing to rewrite")
        if args.check:
            return 0
        # fall through: report what remains after the rewrites

    report = Report()
    plans: list = []
    protocol_stats: list = []
    try:
        if args.dataflow or args.protocol:
            from repro.analyze.dataflow import analyze_tree

            analyze_tree(args.paths, report, plans,
                         dataflow=args.dataflow,
                         protocol=args.protocol,
                         protocol_stats=protocol_stats)
        else:
            lint_paths(args.paths, report)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    if args.plans_out:
        from repro.analyze.emit import to_plans

        with open(args.plans_out, "w", encoding="utf-8") as fh:
            fh.write(to_plans(plans) + "\n")
        print(f"{len(plans)} communication plan(s) written to "
              f"{args.plans_out}")

    if args.run:
        for path in args.paths:
            if path.endswith(".py"):
                _run_verified(path, report)

    document = None
    if args.fmt == "json":
        from repro.analyze.emit import to_json

        document = to_json(report, plans)
    elif args.fmt == "sarif":
        from repro.analyze.emit import to_sarif

        document = to_sarif(report)

    if document is not None and args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(document + "\n")
        document = None  # fall through to the text summary on stdout

    if document is not None:
        print(document)
    else:
        show = (("error", "warning", "info") if args.show_info
                else ("error", "warning"))
        print(report.render(show=show))
        if args.protocol_stats and protocol_stats:
            verified = [s for s in protocol_stats if s.verified_sizes]
            print(f"-- protocol: {len(verified)}/{len(protocol_stats)} "
                  "candidate function(s) verified under at least one "
                  "model size:")
            for stat in protocol_stats:
                sizes = ",".join(str(s) for s in stat.verified_sizes) or "-"
                line = f"{stat.path}: {stat.func}() sizes=[{sizes}]"
                if stat.bailed:
                    size, reason = stat.bailed[0]
                    line += f" bailed@{size}: {reason}"
                print(line)
        if args.show_plans and plans:
            print(f"-- {len(plans)} static communication plan(s):")
            for plan in plans:
                decisions = ", ".join(
                    f"{p}->{a}" for p, a in sorted(plan.decisions.items()))
                print(f"{plan.path}:{plan.line}: {plan.collective}() "
                      f"in {plan.function}() total={plan.total_bytes}B "
                      f"profile={plan.profile or 'n/a'} "
                      f"[{decisions or 'no prediction'}]")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
