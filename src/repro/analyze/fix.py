"""``--fix``: conservative auto-rewrites for a fixable finding subset.

libcst-free: rewrites are plain line edits computed from the stdlib
``ast`` positions of the offending statements, applied bottom-up so
earlier edits never shift later ones.  Every codemod is **gated on a
finding** from a fresh analysis run -- the rewriter never pattern-matches
source on its own -- and the whole fix loop re-analyzes after each pass,
so a fix is applied only while its finding persists.  That is what makes
``--fix`` idempotent: once the finding is gone, no edit matches, and a
second run is a byte-for-byte no-op.

The fixable catalogue (see ``docs/ANALYZE.md`` for before/after):

LNT003 / REQ103 -- **insert the missing ``yield from``** on a discarded
    or undriven blocking-communication generator, when the enclosing
    function is already a generator (never changes a plain function into
    one).

REQ101 -- **restructure conditional waits**: a request created under one
    arm of an ``if`` and waited nowhere gets ``yield from r.wait()``
    appended to the creating arm; a request created unconditionally but
    waited on only one arm gets the wait mirrored onto the arm that
    skips it (waiting on every path is exactly what the rule demands).

LNT002 -- **hoist the loop-invariant flatten/pack**: a single-target
    ``name = chain.flatten()`` / ``.pack()`` assignment (zero-argument
    call) sitting directly in a loop body moves to just above the loop.
    Assumes flatten/pack are pure (true for :mod:`repro.datatypes`).

LNT007 -- **remove the unused suppression**: the stale code is dropped
    from the ``# analyze: ignore[...]`` list; when no code survives the
    whole marker goes, and a marker-only comment line disappears.

Anything not matching these exact shapes is left alone -- ``--fix``
reduces the finding count, it does not guarantee zero.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analyze.findings import Finding
from repro.analyze.lint import iter_python_files

__all__ = ["FixResult", "fix_sources", "fix_paths", "unified_diff"]

#: re-analyze/re-fix cycles before giving up (each pass applies at least
#: one edit or terminates, so this is a backstop, not a tuning knob)
MAX_PASSES = 10

_IGNORE_MARKER = re.compile(
    r"\s*#\s*analyze:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")


@dataclass
class FixResult:
    """Outcome of one fix run over a file set."""

    #: path -> rewritten text, only for files that changed
    changed: Dict[str, str] = field(default_factory=dict)
    #: path -> original text for the changed files
    original: Dict[str, str] = field(default_factory=dict)
    #: human-readable "<path>:<line>: <what>" actions, in application order
    actions: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.changed)

    def diff(self) -> str:
        return "".join(
            unified_diff(self.original[p], self.changed[p], p)
            for p in sorted(self.changed))


def unified_diff(old: str, new: str, path: str) -> str:
    return "".join(difflib.unified_diff(
        old.splitlines(keepends=True), new.splitlines(keepends=True),
        fromfile=f"a/{path}", tofile=f"b/{path}"))


# -- line-edit plumbing -------------------------------------------------------


class _Lines:
    """One file's lines with 1-based whole-line edit operations, applied
    bottom-up by the caller ordering."""

    def __init__(self, source: str):
        self.lines = source.splitlines(keepends=True)
        if source and not source.endswith("\n"):
            self.lines[-1] += "\n"

    def text(self) -> str:
        return "".join(self.lines)

    def get(self, line: int) -> str:
        return self.lines[line - 1]

    def replace(self, line: int, text: str) -> None:
        self.lines[line - 1] = text

    def insert_after(self, line: int, text: str) -> None:
        self.lines.insert(line, text)

    def delete(self, line: int) -> None:
        del self.lines[line - 1]


def _indent_of(text: str) -> str:
    return text[: len(text) - len(text.lstrip())]


def _function_of(tree: ast.Module, line: int) -> Optional[ast.AST]:
    """Innermost function whose span contains ``line``."""
    best: Optional[ast.AST] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.lineno <= line <= (node.end_lineno or node.lineno):
            if best is None or node.lineno > best.lineno:
                best = node
    return best


def _is_generator(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _stmt_at(func: ast.AST, line: int, kinds: tuple) -> Optional[ast.stmt]:
    for node in ast.walk(func):
        if isinstance(node, kinds) and node.lineno == line:
            return node
    return None


def _suites(node: ast.AST) -> List[List[ast.stmt]]:
    out = []
    for attr in ("body", "orelse", "finalbody"):
        suite = getattr(node, attr, None)
        if suite:
            out.append(suite)
    for handler in getattr(node, "handlers", []) or []:
        out.append(handler.body)
    return out


def _waits_name(stmt: ast.stmt, name: str) -> bool:
    """Does this statement complete request ``name``?"""
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            fn = sub.func
            if fn.attr in ("wait", "test") and isinstance(fn.value, ast.Name) \
                    and fn.value.id == name:
                return True
            if fn.attr in ("waitall", "waitany") and any(
                    isinstance(s, ast.Name) and s.id == name
                    for a in sub.args for s in ast.walk(a)):
                return True
    return False


def _mentions_name(stmt: ast.stmt, name: str) -> bool:
    return any(isinstance(s, ast.Name) and s.id == name
               for s in ast.walk(stmt))


# -- the per-rule codemods ----------------------------------------------------

#: one planned whole-line edit: (sort line, apply thunk, description)
_Planned = Tuple[int, object, str]


def _plan_yield_from(tree: ast.Module, lines: _Lines,
                     finding: Finding) -> List[_Planned]:
    """LNT003/REQ103: prefix the blocking call with ``yield from``."""
    line = finding.line or 0
    func = _function_of(tree, line)
    if func is None or not _is_generator(func):
        return []
    call_pos: Optional[Tuple[int, int]] = None
    if finding.rule == "LNT003":
        stmt = _stmt_at(func, line, (ast.Expr,))
        if stmt is not None and isinstance(stmt.value, ast.Call):
            call_pos = (stmt.value.lineno, stmt.value.col_offset)
    else:  # REQ103 at the undriven generator assignment (def-site
        # findings only; the 5-tuple rebind variant needs a human)
        if not (isinstance(finding.key, tuple) and len(finding.key) == 4):
            return []
        stmt = _stmt_at(func, line, (ast.Assign, ast.AnnAssign))
        value = getattr(stmt, "value", None)
        if isinstance(value, ast.Call):
            call_pos = (value.lineno, value.col_offset)
    if call_pos is None:
        return []
    row, col = call_pos
    text = lines.get(row)
    if text[col:].startswith("yield from "):
        return []  # already driven (stale finding)

    def apply(ls: _Lines = lines, r: int = row, c: int = col):
        ls.replace(r, ls.get(r)[:c] + "yield from " + ls.get(r)[c:])

    return [(row, apply, f"insert 'yield from' ({finding.rule})")]


def _plan_conditional_wait(tree: ast.Module, lines: _Lines,
                           finding: Finding) -> List[_Planned]:
    """REQ101: make every path wait the request."""
    key = finding.key
    if not (isinstance(key, tuple) and len(key) == 4):
        return []
    _rule, _fname, name, _def_node = key
    line = finding.line or 0
    func = _function_of(tree, line)
    if func is None or not _is_generator(func):
        return []
    waited_anywhere = any(_waits_name(s, name) for s in ast.walk(func)
                          if isinstance(s, ast.stmt))
    def_stmt = _stmt_at(func, line, (ast.Assign, ast.AnnAssign))
    if def_stmt is None:
        return []

    if not waited_anywhere:
        # created under one arm of an if, never completed: finish it at
        # the end of the creating arm
        suite = _creating_if_suite(func, def_stmt)
        if suite is None:
            return []
        return [_append_to_suite(lines, suite, name)]

    # waited on one arm only: mirror the wait onto the arm that skips it
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        body_waits = any(_waits_name(s, name) for s in node.body)
        orelse_waits = any(_waits_name(s, name) for s in node.orelse)
        if body_waits == orelse_waits:
            continue
        missing = node.orelse if body_waits else node.body
        if any(_mentions_name(s, name) for s in missing):
            continue  # the other arm handles it some other way: hands off
        if missing:
            return [_append_to_suite(lines, missing, name)]
        # no else arm at all: create one (skip elif chains -- appending
        # to them is ambiguous)
        if node.orelse:
            continue
        if_indent = _indent_of(lines.get(node.lineno))
        body_indent = _indent_of(lines.get(node.body[0].lineno))
        end = max(s.end_lineno or s.lineno for s in node.body)

        def apply(ls: _Lines = lines, e: int = end, ii: str = if_indent,
                  bi: str = body_indent, n: str = name):
            ls.insert_after(e, f"{bi}yield from {n}.wait()\n")
            ls.insert_after(e, f"{ii}else:\n")

        return [(end, apply, f"add else-arm wait for '{name}' (REQ101)")]
    return []


def _creating_if_suite(func: ast.AST,
                       def_stmt: ast.stmt) -> Optional[List[ast.stmt]]:
    """The if/else arm directly containing ``def_stmt`` -- with no loop
    on the path from the function body (hoisting a wait into a loop
    iteration is always safe; out of one is not, so loops are skipped)."""

    def search(node: ast.AST, in_loop: bool) -> Optional[List[ast.stmt]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and child is not func:
                continue
            loop_here = in_loop or isinstance(
                child, (ast.For, ast.AsyncFor, ast.While))
            if isinstance(child, ast.If) and not loop_here:
                for suite in (child.body, child.orelse):
                    if def_stmt in suite:
                        return suite
            found = search(child, loop_here)
            if found is not None:
                return found
        return None

    return search(func, False)


def _append_to_suite(lines: _Lines, suite: Sequence[ast.stmt],
                     name: str) -> _Planned:
    indent = _indent_of(lines.get(suite[0].lineno))
    end = max(s.end_lineno or s.lineno for s in suite)

    def apply(ls: _Lines = lines, e: int = end, i: str = indent,
              n: str = name):
        ls.insert_after(e, f"{i}yield from {n}.wait()\n")

    return (end, apply, f"append wait for '{name}' (REQ101)")


def _plan_hoist(tree: ast.Module, lines: _Lines,
                finding: Finding) -> List[_Planned]:
    """LNT002: move a loop-invariant zero-arg flatten/pack assignment
    out of the loop."""
    line = finding.line or 0
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.Assign) and stmt.lineno == line
                    and stmt.lineno == (stmt.end_lineno or stmt.lineno)):
                continue
            if len(stmt.targets) != 1 or not isinstance(
                    stmt.targets[0], ast.Name):
                continue
            value = stmt.value
            if not (isinstance(value, ast.Call) and not value.args
                    and not value.keywords
                    and isinstance(value.func, ast.Attribute)):
                continue
            target = stmt.targets[0].id
            rebinds = sum(
                1 for s in ast.walk(node)
                if isinstance(s, ast.Name) and s.id == target
                and isinstance(s.ctx, (ast.Store, ast.Del)))
            if rebinds != 1:
                continue  # the name is loop-variant beyond this stmt
            loop_indent = _indent_of(lines.get(node.lineno))
            moved = loop_indent + lines.get(stmt.lineno).lstrip()

            def apply(ls: _Lines = lines, sl: int = stmt.lineno,
                      ll: int = node.lineno, m: str = moved):
                ls.delete(sl)
                ls.insert_after(ll - 1, m)

            return [(stmt.lineno, apply,
                     f"hoist '{target} = ...' above the loop (LNT002)")]
    return []


def _plan_drop_suppression(tree: ast.Module, lines: _Lines,
                           finding: Finding) -> List[_Planned]:
    """LNT007: drop the stale code (or whole marker) from the comment."""
    key = finding.key
    if not (isinstance(key, tuple) and len(key) == 4):
        return []
    _rule, _path, line, code = key
    text = lines.get(line)
    match = _IGNORE_MARKER.search(text)
    if match is None:
        return []
    raw = match.group("codes")
    remaining: List[str] = []
    if raw is not None:
        listed = [c.strip().upper() for c in raw.split(",") if c.strip()]
        if code not in listed:
            return []
        remaining = [c for c in listed if c != code]
    elif code != "*":
        return []

    if remaining:
        new = (text[: match.start()]
               + re.sub(r"\[.*?\]", f"[{','.join(remaining)}]",
                        match.group(0), count=1)
               + text[match.end():])
    else:
        new = text[: match.start()] + text[match.end():]
        if not new.strip() or new.strip() == "#":
            new = None  # the line carried only the marker: drop it

    def apply(ls: _Lines = lines, row: int = line,
              replacement: Optional[str] = new):
        if replacement is None:
            ls.delete(row)
        else:
            ls.replace(row, replacement
                       if replacement.endswith("\n") else replacement + "\n")

    what = (f"drop '{code}' from suppression" if remaining
            else "remove unused suppression")
    return [(line, apply, f"{what} (LNT007)")]


_CODEMODS = {
    "LNT003": _plan_yield_from,
    "REQ103": _plan_yield_from,
    "REQ101": _plan_conditional_wait,
    "LNT002": _plan_hoist,
    "LNT007": _plan_drop_suppression,
}


# -- the fix loop -------------------------------------------------------------


def _fix_module_once(source: str, path: str,
                     findings: Iterable[Finding]) -> Tuple[str, List[str]]:
    """Apply at most one pass of edits to one module; returns (new
    source, action descriptions)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, []
    lines = _Lines(source)
    planned: List[_Planned] = []
    for finding in findings:
        codemod = _CODEMODS.get(finding.rule)
        if codemod is None:
            continue
        planned.extend(codemod(tree, lines, finding))
    if not planned:
        return source, []
    # bottom-up, one edit per line per pass (overlaps re-resolve next pass)
    seen_lines: set = set()
    actions: List[str] = []
    for anchor, apply, what in sorted(planned, key=lambda p: -p[0]):
        if anchor in seen_lines:
            continue
        seen_lines.add(anchor)
        apply()
        actions.append(f"{path}:{anchor}: {what}")
    new = lines.text()
    try:
        ast.parse(new, filename=path)
    except SyntaxError:  # a rewrite broke the file: refuse the whole pass
        return source, []
    return new, list(reversed(actions))


def fix_sources(sources: Dict[str, str],
                max_passes: int = MAX_PASSES) -> FixResult:
    """Iterate analyze -> rewrite to a fixpoint over in-memory sources.

    Every pass re-runs the full (interprocedural) analysis on the
    current text, so each codemod is gated on a finding that still
    exists; the loop ends when a pass changes nothing."""
    from repro.analyze.dataflow.driver import analyze_source_set

    result = FixResult()
    current = dict(sources)
    for _ in range(max_passes):
        report, _plans = analyze_source_set(sorted(current.items()))
        by_path: Dict[str, List[Finding]] = {}
        for finding in report:
            by_path.setdefault(finding.location, []).append(finding)
        changed = False
        for path in sorted(current):
            new, actions = _fix_module_once(
                current[path], path, by_path.get(path, []))
            if new != current[path]:
                result.original.setdefault(path, sources[path])
                result.changed[path] = new
                result.actions.extend(actions)
                current[path] = new
                changed = True
        if not changed:
            break
    return result


def fix_paths(paths: Iterable[Union[str, Path]], write: bool = False,
              max_passes: int = MAX_PASSES) -> FixResult:
    """Run the fix loop over files/directories; with ``write`` the
    rewritten files are saved back (otherwise callers inspect
    :attr:`FixResult.changed` -- that is ``--fix --check``)."""
    files = iter_python_files(paths)
    sources = {str(p): Path(p).read_text(encoding="utf-8") for p in files}
    result = fix_sources(sources, max_passes=max_passes)
    if write:
        for path, text in result.changed.items():
            Path(path).write_text(text, encoding="utf-8")
    return result
