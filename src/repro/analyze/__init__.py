"""MUST-style MPI correctness analyzer for the simulated stack.

Three layers, one finding currency (:class:`Finding` / :class:`Report`):

``repro.analyze.signatures``
    Static datatype analysis built on typemap flattening: send/receive
    signature compatibility, truncation, self-overlap, and the paper's
    section-4.1 "pack slower than copy" density smell (SIG001-SIG005).

``repro.analyze.runtime``
    :class:`RuntimeVerifier` subscribes to cluster observer events and
    checks wire-level signature matching, wait-for-graph deadlocks,
    request leaks, unmatched traffic, collective consistency and
    zero-byte synchronisation (DLK/REQ/P2P/COL/ZBS rules).

``repro.analyze.lint``
    AST rules over project and example code: bare excepts, O(N^2) block
    rescans, ``yield from`` discipline (LNT001-LNT005).

Shell entry point::

    python -m repro.analyze --lint src
    python -m repro.analyze --run examples/ghost_exchange_2d.py

The rule catalogue is documented in ``docs/ANALYZE.md``.
"""

from repro.analyze.findings import RULES, SEVERITIES, Finding, Report
from repro.analyze.lint import lint_file, lint_paths, lint_source
from repro.analyze.runtime import RuntimeVerifier
from repro.analyze.signatures import (
    check_datatype,
    check_transfer,
    full_signature,
    render_signature,
    signature_prefix,
)

__all__ = [
    "RULES",
    "SEVERITIES",
    "Finding",
    "Report",
    "RuntimeVerifier",
    "check_datatype",
    "check_transfer",
    "full_signature",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_signature",
    "signature_prefix",
]
