"""MUST-style MPI correctness analyzer for the simulated stack.

Five layers, one finding currency (:class:`Finding` / :class:`Report`):

``repro.analyze.signatures``
    Static datatype analysis built on typemap flattening: send/receive
    signature compatibility, truncation, self-overlap, and the paper's
    section-4.1 "pack slower than copy" density smell (SIG001-SIG005).

``repro.analyze.runtime``
    :class:`RuntimeVerifier` subscribes to cluster observer events and
    checks wire-level signature matching, wait-for-graph deadlocks,
    request leaks, unmatched traffic, collective consistency and
    zero-byte synchronisation (DLK/REQ/P2P/COL/ZBS rules).

``repro.analyze.lint``
    AST rules over project and example code: bare excepts, O(N^2) block
    rescans, ``yield from`` discipline (LNT001-LNT006).

``repro.analyze.dataflow``
    CFG + fixpoint dataflow passes: request lifetime (REQ1xx), buffer
    use-after-isend (BUF1xx), SPMD rank divergence (SPMD1xx) and static
    communication-plan extraction (PLAN1xx).

``repro.analyze.protocol``
    Cross-rank protocol verification: each function is abstractly
    executed per model rank (world sizes 2/3/4), the per-rank traces are
    joined into a static match graph (:mod:`repro.analyze.matchgraph`),
    and unmatched envelopes, deterministic deadlocks, collective
    divergence and signature-incompatible matched pairs are proved
    statically (MTC101-MTC105).

Shell entry point::

    python -m repro.analyze --lint src
    python -m repro.analyze --dataflow src examples
    python -m repro.analyze --protocol src examples
    python -m repro.analyze --dataflow --format sarif -o out.sarif src
    python -m repro.analyze --run examples/ghost_exchange_2d.py

Findings on any line can be silenced with an inline
``# analyze: ignore[CODE]`` comment (see :mod:`repro.analyze.suppress`).
The rule catalogue is documented in ``docs/ANALYZE.md``.
"""

from repro.analyze.findings import RULES, SEVERITIES, Finding, Report
from repro.analyze.lint import lint_file, lint_paths, lint_source
from repro.analyze.runtime import RuntimeVerifier
from repro.analyze.matchgraph import check_collectives, match_p2p, verify_world
from repro.analyze.protocol import check_module as check_protocol
from repro.analyze.signatures import (
    TransferVerdict,
    check_datatype,
    check_transfer,
    full_signature,
    render_signature,
    signature_prefix,
    transfer_verdict,
)
from repro.analyze.suppress import Suppressions, collect_suppressions

__all__ = [
    "RULES",
    "SEVERITIES",
    "Finding",
    "Report",
    "RuntimeVerifier",
    "Suppressions",
    "TransferVerdict",
    "check_collectives",
    "check_datatype",
    "check_protocol",
    "check_transfer",
    "collect_suppressions",
    "full_signature",
    "lint_file",
    "lint_paths",
    "lint_source",
    "match_p2p",
    "render_signature",
    "signature_prefix",
    "transfer_verdict",
    "verify_world",
]
