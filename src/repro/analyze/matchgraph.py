"""Static match graph over per-rank abstract communication traces.

This is the cross-rank half of the protocol verifier
(:mod:`repro.analyze.protocol`): the AST side abstractly executes one
function under a small concrete world (every rank of a model size), and
this module joins the resulting per-rank :class:`Op` traces into a
**match graph** -- which send pairs with which receive, whether every
rank's collective sequence agrees, and whether the blocking structure
can make progress.

The algorithms mirror what the runtime verifier observes dynamically
(P2P001/P2P002, COL001/COL002, DLK001), but they run on *symbolic*
traces produced without executing the program:

:func:`match_p2p`
    In-order matching per receiver.  A receive takes the earliest
    posted, signature-eligible send whose envelope (src, tag, channel)
    it accepts, honouring MPI's non-overtaking rule for a fixed
    (source, tag) pair.  Unmatched sends/receives feed MTC101/MTC102.

:func:`check_collectives`
    Compares the collective *sequence* (operation kind, then root
    argument where statically known) of every rank against rank 0.
    Any divergence feeds MTC104 -- the cross-rank generalisation of
    SPMD101, which only sees one rank's control flow.

:func:`simulate`
    A deterministic abstract scheduler over the matched traces: every
    rank advances while its next operation *can* complete (rendezvous
    semantics for blocking sends -- a correct MPI program must not rely
    on eager buffering), collectives act as barriers, and waits block
    on the posting of their matched peer.  If no rank can advance and
    some rank is not done, the blocked ops and the rank wait-for cycle
    feed MTC103.

Everything here is deliberately independent of the AST layer so the
matching/deadlock semantics can be unit- and property-tested on
hand-built traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ANY",
    "Op",
    "CollectiveDivergence",
    "Deadlock",
    "WorldResult",
    "match_p2p",
    "check_collectives",
    "simulate",
    "verify_world",
]

#: wildcard source/tag (mirrors ``ANY_SOURCE`` / ``ANY_TAG``)
ANY = -1


@dataclass
class Op:
    """One abstract communication operation in a rank's trace.

    ``peer`` is the destination rank for sends and the source rank for
    receives (:data:`ANY` for a wildcard receive); ``waits_on`` holds
    trace indices (same rank) of the requests a ``wait`` completes.
    ``count`` / ``datatype`` / ``buf_bytes`` carry the statically
    evaluated payload shape for the MTC105 signature check and are
    ``None`` when unknown.
    """

    rank: int
    index: int
    kind: str                      # send | isend | recv | irecv | coll | wait
    line: int = 0
    func: str = ""
    peer: Optional[int] = None
    tag: Optional[int] = None
    channel: str = "typed"         # typed | obj
    coll: str = ""                 # collective method name (kind == "coll")
    root: Optional[int] = None     # statically known root argument
    waits_on: Tuple[int, ...] = ()
    eager: bool = False            # completes without a matching peer
    count: Optional[int] = None
    datatype: Any = None
    buf_bytes: Optional[int] = None

    @property
    def is_send(self) -> bool:
        return self.kind in ("send", "isend")

    @property
    def is_recv(self) -> bool:
        return self.kind in ("recv", "irecv")

    @property
    def blocking(self) -> bool:
        return self.kind in ("send", "recv", "coll", "wait")

    def describe(self) -> str:
        if self.kind == "coll":
            root = f", root={self.root}" if self.root is not None else ""
            return f"{self.coll}(...{root}) on rank {self.rank}"
        if self.kind == "wait":
            return f"wait on rank {self.rank}"
        peer = "ANY" if self.peer == ANY else self.peer
        tag = "ANY" if self.tag == ANY else self.tag
        arrow = "->" if self.is_send else "<-"
        return (f"{self.kind}({arrow} rank {peer}, tag={tag}) "
                f"on rank {self.rank}")


@dataclass
class CollectiveDivergence:
    """Ranks disagree on the collective sequence at instance ``index``."""

    index: int
    #: rank -> (collective kind or None when the rank has no such
    #: instance, root or None, source line or 0)
    per_rank: Dict[int, Tuple[Optional[str], Optional[int], int]]
    kind_mismatch: bool            # False: kinds agree, roots differ

    def describe(self) -> str:
        parts = []
        for rank in sorted(self.per_rank):
            kind, root, _line = self.per_rank[rank]
            if kind is None:
                parts.append(f"rank {rank}: <none>")
            elif root is not None:
                parts.append(f"rank {rank}: {kind}(root={root})")
            else:
                parts.append(f"rank {rank}: {kind}")
        return "; ".join(parts)


@dataclass
class Deadlock:
    """The abstract scheduler stopped with unfinished ranks."""

    #: the operation each blocked rank is stuck at
    blocked: List[Op]
    #: a wait-for cycle among the blocked ranks (empty when the
    #: dependency is a chain into a finished rank -- orphaned ordering)
    cycle: List[int] = field(default_factory=list)

    def describe(self) -> str:
        ops = "; ".join(op.describe() for op in self.blocked)
        if self.cycle:
            ring = " -> ".join(str(r) for r in self.cycle + self.cycle[:1])
            return f"wait-for cycle {ring}: {ops}"
        return f"no progress possible: {ops}"


@dataclass
class WorldResult:
    """Everything the verifier learned about one model world size."""

    size: int
    traces: Dict[int, List[Op]]
    matches: List[Tuple[Op, Op]]
    unmatched_sends: List[Op]
    unmatched_recvs: List[Op]
    divergence: Optional[CollectiveDivergence]
    deadlock: Optional[Deadlock]

    @property
    def num_ops(self) -> int:
        return sum(len(t) for t in self.traces.values())


def match_p2p(traces: Dict[int, List[Op]],
              ) -> Tuple[List[Tuple[Op, Op]], List[Op], List[Op]]:
    """Pair sends with receives across the world.

    Receives are processed in per-rank program order; each takes the
    earliest-posted eligible send (matching destination, channel, source
    and tag envelope).  "Earliest" orders by (sender trace position,
    sender rank) -- deterministic, and exact for the deterministic
    programs the extractor admits (it bails on wildcard *sends* and
    data-dependent envelopes).
    """
    matches: List[Tuple[Op, Op]] = []
    taken: set = set()
    sends_to: Dict[int, List[Op]] = {}
    for rank in sorted(traces):
        for op in traces[rank]:
            if op.is_send and op.peer is not None and op.peer != ANY:
                sends_to.setdefault(op.peer, []).append(op)
    for dst in sends_to:
        sends_to[dst].sort(key=lambda s: (s.index, s.rank))

    for rank in sorted(traces):
        for op in traces[rank]:
            if not op.is_recv:
                continue
            for send in sends_to.get(rank, ()):
                key = (send.rank, send.index)
                if key in taken:
                    continue
                if send.channel != op.channel:
                    continue
                if op.peer not in (ANY, send.rank):
                    continue
                if op.tag != ANY and send.tag != op.tag:
                    continue
                taken.add(key)
                matches.append((send, op))
                break

    matched_recvs = {(r.rank, r.index) for _s, r in matches}
    unmatched_sends = [
        op for rank in sorted(traces) for op in traces[rank]
        if op.is_send and not op.eager
        and (op.rank, op.index) not in taken
    ]
    unmatched_recvs = [
        op for rank in sorted(traces) for op in traces[rank]
        if op.is_recv and (op.rank, op.index) not in matched_recvs
    ]
    return matches, unmatched_sends, unmatched_recvs


def check_collectives(traces: Dict[int, List[Op]],
                      ) -> Optional[CollectiveDivergence]:
    """First divergence in the per-rank collective sequences, or None."""
    seqs = {rank: [op for op in trace if op.kind == "coll"]
            for rank, trace in traces.items()}
    depth = max((len(s) for s in seqs.values()), default=0)
    for i in range(depth):
        kinds = set()
        roots = set()
        for seq in seqs.values():
            if i < len(seq):
                kinds.add(seq[i].coll)
                if seq[i].root is not None:
                    roots.add(seq[i].root)
            else:
                kinds.add(None)
        if len(kinds) > 1 or (len(kinds) == 1 and len(roots) > 1):
            per_rank = {}
            for rank, seq in seqs.items():
                if i < len(seq):
                    per_rank[rank] = (seq[i].coll, seq[i].root, seq[i].line)
                else:
                    per_rank[rank] = (None, None, 0)
            return CollectiveDivergence(i, per_rank,
                                        kind_mismatch=len(kinds) > 1)
    return None


def simulate(traces: Dict[int, List[Op]],
             matches: Sequence[Tuple[Op, Op]]) -> Optional[Deadlock]:
    """Run the abstract scheduler; returns the deadlock, if any.

    Completion rules (rendezvous semantics):

    - ``isend`` / ``irecv`` post and complete immediately;
    - a blocking ``send`` completes once its matched receive is posted,
      a blocking ``recv`` once its matched send is posted (unmatched
      ops complete immediately -- they are MTC101/102 territory and
      must not cascade into a spurious deadlock);
    - ``wait`` completes once every request it waits on has a posted
      match;
    - the *i*-th collective completes once every rank has posted its
      own *i*-th collective (the caller guarantees the sequences agree
      before simulating).
    """
    match_of: Dict[Tuple[int, int], Op] = {}
    for send, recv in matches:
        match_of[(send.rank, send.index)] = recv
        match_of[(recv.rank, recv.index)] = send

    pcs = {rank: 0 for rank in traces}
    posted: set = set()
    coll_posted = {rank: 0 for rank in traces}
    coll_occurrence: Dict[Tuple[int, int], int] = {}
    for rank, trace in traces.items():
        seen = 0
        for op in trace:
            if op.kind == "coll":
                coll_occurrence[(rank, op.index)] = seen
                seen += 1

    def peer_posted(op: Op) -> bool:
        peer = match_of.get((op.rank, op.index))
        if peer is None:
            return True  # unmatched: reported separately, never blocks
        return (peer.rank, peer.index) in posted

    def can_complete(op: Op) -> bool:
        if op.kind in ("isend", "irecv") or op.eager:
            return True
        if op.kind in ("send", "recv"):
            return peer_posted(op)
        if op.kind == "wait":
            return all(peer_posted(traces[op.rank][i]) for i in op.waits_on)
        if op.kind == "coll":
            occ = coll_occurrence[(op.rank, op.index)]
            return all(coll_posted[r] > occ for r in traces)
        return True

    progressed = True
    while progressed:
        progressed = False
        for rank in sorted(traces):
            trace = traces[rank]
            while pcs[rank] < len(trace):
                op = trace[pcs[rank]]
                if (rank, op.index) not in posted:
                    posted.add((rank, op.index))
                    if op.kind == "coll":
                        coll_posted[rank] += 1
                    progressed = True
                if not can_complete(op):
                    break
                pcs[rank] += 1
                progressed = True

    blocked = [traces[rank][pcs[rank]] for rank in sorted(traces)
               if pcs[rank] < len(traces[rank])]
    if not blocked:
        return None

    # rank wait-for edges: who must post before the blocked op completes?
    waits_for: Dict[int, set] = {}
    for op in blocked:
        needs: set = set()
        if op.kind in ("send", "recv"):
            peer = match_of.get((op.rank, op.index))
            if peer is not None and (peer.rank, peer.index) not in posted:
                needs.add(peer.rank)
        elif op.kind == "wait":
            for i in op.waits_on:
                peer = match_of.get((op.rank, i))
                if peer is not None and (peer.rank, peer.index) not in posted:
                    needs.add(peer.rank)
        elif op.kind == "coll":
            occ = coll_occurrence[(op.rank, op.index)]
            needs |= {r for r in traces if coll_posted[r] <= occ
                      and r != op.rank}
        waits_for[op.rank] = needs

    cycle = _find_cycle(waits_for)
    return Deadlock(blocked=blocked, cycle=cycle)


def _find_cycle(edges: Dict[int, set]) -> List[int]:
    """Any cycle in the rank wait-for digraph, as an ordered rank list."""
    for start in sorted(edges):
        stack = [(start, [start])]
        seen = set()
        while stack:
            node, path = stack.pop()
            for succ in sorted(edges.get(node, ())):
                if succ == start:
                    return path
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
    return []


def verify_world(traces: Dict[int, List[Op]], size: int) -> WorldResult:
    """Full verification of one model world: match, collectives, then
    (only when the collective sequences agree -- a divergence already
    explains any stall) the deadlock simulation."""
    matches, unmatched_sends, unmatched_recvs = match_p2p(traces)
    divergence = check_collectives(traces)
    deadlock = None
    if divergence is None:
        deadlock = simulate(traces, matches)
    return WorldResult(size=size, traces=traces, matches=matches,
                       unmatched_sends=unmatched_sends,
                       unmatched_recvs=unmatched_recvs,
                       divergence=divergence, deadlock=deadlock)
