"""AST-based project lint (rules LNT001-LNT006).

Repo-specific invariants that generic linters do not know about:

- **LNT001** -- bare ``except:`` clauses (swallow ``SystemExit`` and
  ``KeyboardInterrupt``; always name the exception class),
- **LNT002** -- calling ``.flatten()`` / ``.pack()`` on a loop-invariant
  object inside a loop.  Flattening is cached per datatype but packing is
  not, and re-deriving block lists per iteration is exactly the O(N^2)
  rescan of flattened block lists the paper's section 4.1 eliminates,
- **LNT003** -- *dropped generators*: this codebase's blocking
  communication calls (``comm.send``, ``comm.barrier``, ``req.wait`` ...)
  are generator functions that do nothing unless driven with
  ``yield from``.  A bare ``comm.send(x, 1)`` statement silently sends
  nothing -- the single most common bug in simulated-process code,
- **LNT004** -- mutable default arguments,
- **LNT005** -- ``time.sleep`` in simulated code (wall-clock sleeps do not
  advance simulated time; charge ``yield Delay(..)`` or ``comm.cpu``),
- **LNT006** -- importing a concrete collective-algorithm implementation
  (``_ring``, ``_binned``, ...) from outside the algorithm subsystem.
  Which implementation runs is a *selection-policy* decision; go through
  :data:`repro.mpi.algorithms.REGISTRY` (or pass ``algorithm=...`` to the
  collective) instead of hard-wiring one.

Use :func:`lint_paths` for files/directories or ``python -m repro.analyze
--lint src`` from the shell; CI runs the latter on every push.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.analyze.findings import Report

#: methods returning generators that MUST be driven with ``yield from``
BLOCKING_GENERATOR_METHODS = frozenset({
    "send", "recv", "sendrecv", "recv_obj", "probe",
    "barrier", "bcast", "allreduce", "gather_obj", "split",
    "reduce", "allreduce_array", "scan",
    "gatherv", "scatterv", "allgather", "alltoall", "allgatherv", "alltoallw",
    "wait", "waitall", "waitany",
    "cpu", "compute",
    "global_to_local", "local_to_global",
})

#: rebuild-in-loop methods for LNT002
RESCAN_METHODS = frozenset({"flatten", "pack"})

#: concrete algorithm implementations that only the registry may dispatch
ALGORITHM_IMPL_NAMES = frozenset({
    "_ring", "_recursive_doubling", "_dissemination",
    "_round_robin", "_binned",
    "_barrier_dissemination", "_bcast_binomial",
    "_allreduce_recursive_doubling", "_gather_obj_linear",
    "_gatherv_linear", "_scatterv_linear", "_alltoall_pairwise",
    "_reduce_binomial", "_allreduce_rd_array", "_scan_doubling",
})

#: path fragments exempt from LNT006 (the algorithm subsystem itself)
_LNT006_EXEMPT = ("repro/mpi/algorithms", "repro/mpi/collectives")


def _assigned_names(node: ast.AST) -> set:
    """Names (re)bound anywhere inside ``node``."""
    out: set = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            out.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(sub.name)
    return out


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, report: Report):
        self.path = path
        self.report = report
        self._loop_invariant_names: List[set] = []

    # LNT001 ---------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report.add(
                "LNT001",
                "bare 'except:'; catch a named exception class instead",
                location=self.path, line=node.lineno,
            )
        self.generic_visit(node)

    # LNT004 ---------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report.add(
                    "LNT004",
                    f"mutable default argument in {node.name}(); "
                    "use None and create it inside the function",
                    location=self.path, line=default.lineno,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_dropped_generators(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # LNT003 ---------------------------------------------------------------
    def _check_dropped_generators(self, fn: ast.FunctionDef) -> None:
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Expr):
                continue
            call = sub.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in BLOCKING_GENERATOR_METHODS
            ):
                self.report.add(
                    "LNT003",
                    f"result of blocking call '.{func.attr}(...)' is "
                    "discarded; generators do nothing unless driven with "
                    "'yield from'",
                    location=self.path, line=sub.lineno,
                )

    # LNT002 / LNT005 ------------------------------------------------------
    def _visit_loop(self, node: Union[ast.For, ast.While]) -> None:
        assigned = _assigned_names(node)
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            if sub.func.attr not in RESCAN_METHODS:
                continue
            recv = sub.func.value
            # only flag calls on a plain name that the loop never rebinds:
            # a loop-invariant datatype/buffer being re-flattened per trip
            if isinstance(recv, ast.Name) and recv.id not in assigned:
                self.report.add(
                    "LNT002",
                    f"'{recv.id}.{sub.func.attr}()' re-derives its block "
                    "list on every loop iteration; hoist it out of the loop",
                    location=self.path, line=sub.lineno,
                )
        self.generic_visit(node)

    visit_For = _visit_loop
    visit_While = _visit_loop

    # LNT006 ---------------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        exempt = any(frag in self.path.replace("\\", "/")
                     for frag in _LNT006_EXEMPT)
        if not exempt and module.startswith("repro.mpi.collectives"):
            for alias in node.names:
                if alias.name in ALGORITHM_IMPL_NAMES:
                    self.report.add(
                        "LNT006",
                        f"concrete algorithm '{alias.name}' imported from "
                        f"{module}; dispatch through "
                        "repro.mpi.algorithms.REGISTRY (or pass "
                        "algorithm=...) instead",
                        location=self.path, line=node.lineno,
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self.report.add(
                "LNT005",
                "time.sleep does not advance simulated time; "
                "yield Delay(seconds) or comm.cpu(seconds) instead",
                location=self.path, line=node.lineno,
            )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>",
                report: Optional[Report] = None) -> Report:
    """Lint python ``source`` text; syntax errors become LNT findings-free
    errors raised to the caller."""
    report = report if report is not None else Report()
    tree = ast.parse(source, filename=path)
    _Linter(path, report).visit(tree)
    return report


def lint_file(path: Union[str, Path], report: Optional[Report] = None) -> Report:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), report)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return out


def lint_paths(paths: Iterable[Union[str, Path]],
               report: Optional[Report] = None) -> Report:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    report = report if report is not None else Report()
    for path in iter_python_files(paths):
        lint_file(path, report)
    return report
