"""AST-based project lint (rules LNT001-LNT006).

Repo-specific invariants that generic linters do not know about:

- **LNT001** -- bare ``except:`` clauses (swallow ``SystemExit`` and
  ``KeyboardInterrupt``; always name the exception class),
- **LNT002** -- calling ``.flatten()`` / ``.pack()`` on a loop-invariant
  object inside a loop.  Flattening is cached per datatype but packing is
  not, and re-deriving block lists per iteration is exactly the O(N^2)
  rescan of flattened block lists the paper's section 4.1 eliminates,
- **LNT003** -- *dropped generators*: this codebase's blocking
  communication calls (``comm.send``, ``comm.barrier``, ``req.wait`` ...)
  are generator functions that do nothing unless driven with
  ``yield from``.  A bare ``comm.send(x, 1)`` statement silently sends
  nothing -- the single most common bug in simulated-process code,
- **LNT004** -- mutable default arguments,
- **LNT005** -- ``time.sleep`` in simulated code (wall-clock sleeps do not
  advance simulated time; charge ``yield Delay(..)`` or ``comm.cpu``),
- **LNT006** -- importing a concrete collective-algorithm implementation
  (``_ring``, ``_binned``, ...) from outside the algorithm subsystem.
  Which implementation runs is a *selection-policy* decision; go through
  :data:`repro.mpi.algorithms.REGISTRY` (or pass ``algorithm=...`` to the
  collective) instead of hard-wiring one.

Use :func:`lint_paths` for files/directories or ``python -m repro.analyze
--lint src`` from the shell; CI runs the latter on every push.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.analyze.findings import Report

#: methods returning generators that MUST be driven with ``yield from``
BLOCKING_GENERATOR_METHODS = frozenset({
    "send", "recv", "sendrecv", "recv_obj", "probe",
    "barrier", "bcast", "allreduce", "gather_obj", "split",
    "reduce", "allreduce_array", "scan",
    "gatherv", "scatterv", "allgather", "alltoall", "allgatherv", "alltoallw",
    "sparse_alltoall",
    "wait", "waitall", "waitany",
    "cpu", "compute",
    "global_to_local", "local_to_global",
})

#: rebuild-in-loop methods for LNT002
RESCAN_METHODS = frozenset({"flatten", "pack"})

#: concrete algorithm implementations that only the registry may dispatch
ALGORITHM_IMPL_NAMES = frozenset({
    "_ring", "_recursive_doubling", "_dissemination",
    "_round_robin", "_binned",
    "_barrier_dissemination", "_bcast_binomial",
    "_allreduce_recursive_doubling", "_gather_obj_linear",
    "_gatherv_linear", "_scatterv_linear", "_alltoall_pairwise",
    "_reduce_binomial", "_allreduce_rd_array", "_scan_doubling",
    "_sparse_dense", "_nbx", "_nbx_binned",
})

#: path fragments exempt from LNT006 (the algorithm subsystem itself)
_LNT006_EXEMPT = ("repro/mpi/algorithms", "repro/mpi/collectives")


def _dotted_path(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _assigned_names(node: ast.AST) -> set:
    """Names and dotted attribute paths (re)bound anywhere inside
    ``node`` (``x``, ``self.dtype`` ...)."""
    out: set = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, (ast.Store, ast.Del)):
            dotted = _dotted_path(sub)
            if dotted is not None:
                out.add(dotted)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(sub.name)
    return out


def _prefixes(dotted: str) -> List[str]:
    """``a.b.c`` -> [``a``, ``a.b``, ``a.b.c``]."""
    parts = dotted.split(".")
    return [".".join(parts[:i + 1]) for i in range(len(parts))]


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, report: Report):
        self.path = path
        self.report = report
        self._loop_invariant_names: List[set] = []

    # LNT001 ---------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report.add(
                "LNT001",
                "bare 'except:'; catch a named exception class instead",
                location=self.path, line=node.lineno,
            )
        self.generic_visit(node)

    # LNT004 ---------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        label = getattr(node, "name", "<lambda>")
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report.add(
                    "LNT004",
                    f"mutable default argument in {label}(); "
                    "use None and create it inside the function",
                    location=self.path, line=default.lineno,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_dropped_generators(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_dropped_generators(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # lambda defaults (`lambda x=[]: ...`) evaluate once like any
        # other default -- including lambdas nested in other lambdas,
        # which generic_visit reaches recursively
        self._check_defaults(node)
        self.generic_visit(node)

    # LNT003 ---------------------------------------------------------------
    def _check_dropped_generators(self, fn: ast.FunctionDef) -> None:
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Expr):
                continue
            call = sub.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in BLOCKING_GENERATOR_METHODS
            ):
                self.report.add(
                    "LNT003",
                    f"result of blocking call '.{func.attr}(...)' is "
                    "discarded; generators do nothing unless driven with "
                    "'yield from'",
                    location=self.path, line=sub.lineno,
                )

    # LNT002 / LNT005 ------------------------------------------------------
    def _visit_loop(self, node: Union[ast.For, ast.While]) -> None:
        assigned = _assigned_names(node)
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            if sub.func.attr not in RESCAN_METHODS:
                continue
            recv = sub.func.value
            # flag calls on a plain name -- or an attribute chain rooted
            # at one (`self.dtype.flatten()`) -- that the loop never
            # rebinds: a loop-invariant datatype being re-flattened per
            # trip.  Rebinding any prefix of the chain (`self.dtype = ..`
            # or `self = ..`) makes the receiver loop-variant.
            dotted = _dotted_path(recv)
            if dotted is not None and not any(
                    p in assigned for p in _prefixes(dotted)):
                self.report.add(
                    "LNT002",
                    f"'{dotted}.{sub.func.attr}()' re-derives its block "
                    "list on every loop iteration; hoist it out of the loop",
                    location=self.path, line=sub.lineno,
                )
        self.generic_visit(node)

    visit_For = _visit_loop
    visit_While = _visit_loop

    # LNT006 ---------------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        exempt = any(frag in self.path.replace("\\", "/")
                     for frag in _LNT006_EXEMPT)
        if not exempt and module.startswith("repro.mpi.collectives"):
            for alias in node.names:
                if alias.name in ALGORITHM_IMPL_NAMES:
                    self.report.add(
                        "LNT006",
                        f"concrete algorithm '{alias.name}' imported from "
                        f"{module}; dispatch through "
                        "repro.mpi.algorithms.REGISTRY (or pass "
                        "algorithm=...) instead",
                        location=self.path, line=node.lineno,
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self.report.add(
                "LNT005",
                "time.sleep does not advance simulated time; "
                "yield Delay(seconds) or comm.cpu(seconds) instead",
                location=self.path, line=node.lineno,
            )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>",
                report: Optional[Report] = None) -> Report:
    """Lint python ``source`` text; syntax errors become LNT findings-free
    errors raised to the caller.  ``# analyze: ignore[CODE]`` comments
    suppress findings on their line."""
    from repro.analyze.suppress import apply_suppressions, collect_suppressions

    report = report if report is not None else Report()
    tree = ast.parse(source, filename=path)
    local = Report()
    _Linter(path, local).visit(tree)
    report.extend(apply_suppressions(local, collect_suppressions(source)))
    return report


def lint_file(path: Union[str, Path], report: Optional[Report] = None) -> Report:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), report)


#: directory names skipped during directory expansion.  ``fixtures`` holds
#: intentionally-broken analyzer inputs (tests pass them explicitly).
SKIPPED_DIRS = frozenset({"fixtures", "__pycache__"})


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories named in :data:`SKIPPED_DIRS` are pruned during
    expansion; explicitly named files are always included.
    """
    out: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(
                f for f in p.rglob("*.py")
                # prune on path segments *below* the requested directory,
                # so `analyze tests/fixtures` itself still works
                if not (SKIPPED_DIRS & set(f.relative_to(p).parts[:-1]))
            ))
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return out


def lint_paths(paths: Iterable[Union[str, Path]],
               report: Optional[Report] = None) -> Report:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    report = report if report is not None else Report()
    for path in iter_python_files(paths):
        lint_file(path, report)
    return report
