"""Flattened block representation of a derived datatype.

A datatype, applied at byte offset 0, describes an ordered sequence of
contiguous ``(offset, length)`` byte blocks -- MPI's *typemap* with like
types merged.  :class:`BlockList` stores that sequence as numpy arrays plus a
prefix-sum over lengths, which gives the pack engines O(log n) random access
("where in the buffer does packed byte position p fall?") and O(1) block
counting -- the *functional* machinery stays fast even while the *cost model*
charges the baseline engine its quadratic re-search time.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np


class BlockList:
    """An immutable ordered list of contiguous byte blocks.

    Attributes
    ----------
    offsets, lengths:
        int64 arrays; block ``i`` covers bytes
        ``[offsets[i], offsets[i] + lengths[i])`` of the (relative) buffer.
    cum:
        exclusive prefix sum of ``lengths`` with a trailing total, i.e.
        ``cum[i]`` is the packed-stream position where block ``i`` begins and
        ``cum[-1]`` is the total payload size.
    """

    __slots__ = ("offsets", "lengths", "cum", "_granularity")

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray):
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if offsets.shape != lengths.shape or offsets.ndim != 1:
            raise ValueError("offsets/lengths must be 1-D and equal length")
        if np.any(lengths <= 0):
            raise ValueError("all block lengths must be positive")
        self.offsets = offsets
        self.lengths = lengths
        self.cum = np.concatenate(([0], np.cumsum(lengths)))
        self._granularity: int | None = None

    # -- basic properties --------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.offsets)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return int(self.cum[-1])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return zip(self.offsets.tolist(), self.lengths.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockList(num_blocks={self.num_blocks}, size={self.size})"

    # -- queries used by the pack engines -----------------------------------

    def block_at(self, packed_pos: int) -> int:
        """Index of the block containing packed-stream byte ``packed_pos``."""
        if not 0 <= packed_pos < self.size:
            raise IndexError(packed_pos)
        return int(np.searchsorted(self.cum, packed_pos, side="right") - 1)

    def blocks_in_range(self, start: int, stop: int) -> tuple[int, int]:
        """Half-open block-index range touched by packed bytes [start, stop)."""
        if start >= stop:
            return (0, 0)
        first = self.block_at(start)
        last = self.block_at(stop - 1)
        return (first, last + 1)

    def mean_block_length(self, first_block: int, nblocks: int) -> float:
        """Average length of ``nblocks`` blocks starting at ``first_block``
        (clipped to the end) -- the density statistic of the look-ahead."""
        hi = min(first_block + nblocks, self.num_blocks)
        if hi <= first_block:
            return 0.0
        span = self.cum[hi] - self.cum[first_block]
        return float(span) / (hi - first_block)

    # -- transformations -----------------------------------------------------

    def shifted(self, delta: int) -> "BlockList":
        return BlockList(self.offsets + int(delta), self.lengths)

    def replicated(self, displacements: np.ndarray) -> "BlockList":
        """Blocks of one copy per displacement, copies laid out in order."""
        disps = np.asarray(displacements, dtype=np.int64)
        offs = (disps[:, None] + self.offsets[None, :]).reshape(-1)
        lens = np.tile(self.lengths, len(disps))
        return merge_adjacent(offs, lens)

    def granularity(self) -> int:
        """Largest power-of-two (<= 16) dividing every offset and length.

        Packing gathers at this granularity so that e.g. all-double datatypes
        move 8-byte elements instead of single bytes.
        """
        if self._granularity is None:
            g = 16
            for arr in (self.offsets, self.lengths):
                g = math.gcd(g, int(np.gcd.reduce(arr, initial=0)))
            g = g & -g  # power-of-two part of the gcd
            self._granularity = max(1, g)
        return self._granularity


def merge_adjacent(offsets: np.ndarray, lengths: np.ndarray) -> BlockList:
    """Coalesce blocks where one ends exactly where the next begins.

    Mirrors what MPI implementations do when building the internal "dataloop"
    representation; without it a ``Contiguous(n, DOUBLE)`` would count ``n``
    blocks instead of one and every density estimate would be wrong.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(offsets) == 0:
        raise ValueError("empty block list")
    if len(offsets) == 1:
        return BlockList(offsets, lengths)
    # new run starts where the previous block does NOT abut this one
    starts = np.empty(len(offsets), dtype=bool)
    starts[0] = True
    starts[1:] = offsets[1:] != offsets[:-1] + lengths[:-1]
    idx = np.flatnonzero(starts)
    merged_offsets = offsets[idx]
    merged_lengths = np.add.reduceat(lengths, idx)
    return BlockList(merged_offsets, merged_lengths)
