"""Functional packing and unpacking of typed buffers.

Bytes really move in this repository: a :class:`TypedBuffer` binds a datatype
(+ count) to a numpy buffer and can gather its noncontiguous payload into one
contiguous array (``pack``) or scatter a contiguous array back out
(``unpack``).  The MPI layer transfers those contiguous bytes between ranks,
so every simulated experiment doubles as a data-correctness test.

Data movement executes the :class:`repro.datatypes.ir.CopyProgram` compiled
(and memoized process-wide) for the buffer's ``(datatype, count)`` structure:
bulk slice copies and 2-D strided views for regular layouts, one cached
gather index for irregular ones.  The legacy element-gather path
(:meth:`TypedBuffer.pack_legacy`) is retained as the differential-testing
reference -- the fuzz suite asserts both move identical bytes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datatypes import ir as _ir
from repro.datatypes.flatten import BlockList
from repro.datatypes.typemap import (
    Datatype,
    DatatypeError,
    TypeSignature,
    _rle_repeat,
    sig_crc,
)


def _as_byte_view(buffer: np.ndarray) -> np.ndarray:
    """A flat uint8 view of ``buffer`` (must be C-contiguous)."""
    arr = np.asarray(buffer)
    if not arr.flags.c_contiguous:
        raise DatatypeError("buffer must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)


def _gather_index(blocks: BlockList) -> tuple[np.ndarray, int]:
    """(index array, granularity): positions of payload units in the buffer.

    ``index[i]`` is the buffer position (in units of ``granularity`` bytes)
    of the i-th payload unit of the packed stream.
    """
    gran = blocks.granularity()
    offs = blocks.offsets // gran
    lens = blocks.lengths // gran
    total = int(lens.sum())
    # classic vectorised "ragged ranges" construction:
    # index = concat(arange(off, off+len) for each block)
    ends = np.cumsum(lens)
    starts = ends - lens
    index = np.arange(total, dtype=np.int64) + np.repeat(offs - starts, lens)
    return index, gran


class TypedBuffer:
    """``(buffer, count, datatype)`` -- the MPI communication triple.

    ``buffer`` may be any C-contiguous numpy array; ``offset_bytes`` lets a
    view start inside it (MPI's ``buf + displacement`` idiom).
    """

    def __init__(
        self,
        buffer: np.ndarray,
        datatype: Datatype,
        count: int = 1,
        offset_bytes: int = 0,
    ):
        if count < 0:
            raise DatatypeError(f"count must be >= 0, got {count}")
        self.buffer = np.asarray(buffer)
        self.datatype = datatype
        self.count = count
        self.offset_bytes = int(offset_bytes)
        self._bytes = _as_byte_view(self.buffer)
        if count == 0:
            self._plan: Optional[_ir.CompiledPlan] = None
            self._blocks: Optional[BlockList] = None
        else:
            self._plan = _ir.compile_datatype(datatype, count)
            shared = self._plan.blocks
            self._blocks = (shared.shifted(self.offset_bytes)
                            if self.offset_bytes else shared)
            end_needed = int((self._blocks.offsets + self._blocks.lengths).max())
            if end_needed > self._bytes.size:
                raise DatatypeError(
                    f"buffer too small: datatype needs {end_needed} bytes, "
                    f"buffer has {self._bytes.size}"
                )
        self._index: Optional[np.ndarray] = None
        self._gran: int = 1

    # -- properties ----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return 0 if self._blocks is None else self._blocks.size

    @property
    def blocks(self) -> BlockList:
        if self._blocks is None:
            raise DatatypeError("zero-count buffer has no blocks")
        return self._blocks

    def is_contiguous(self) -> bool:
        return self._blocks is not None and self._blocks.num_blocks == 1

    @property
    def num_blocks(self) -> int:
        """Contiguous blocks in the flattened layout (0 for zero-count)."""
        return 0 if self._blocks is None else self._blocks.num_blocks

    @property
    def plan(self) -> Optional[_ir.CompiledPlan]:
        """The shared compiled plan (None for zero-count buffers)."""
        return self._plan

    def layout_summary(self) -> dict:
        """Compact layout description (used as profiling span attributes)."""
        if self._blocks is None:
            return {"nbytes": 0, "blocks": 0, "mean_block": 0.0,
                    "contiguous": True}
        nb = self._blocks.num_blocks
        summary = {
            "nbytes": self._blocks.size,
            "blocks": nb,
            "mean_block": self._blocks.size / nb,
            "contiguous": nb == 1,
        }
        if self._plan is not None:
            summary.update(self._plan.info())
        return summary

    def signature(self) -> TypeSignature:
        """The MPI type signature of the whole buffer (count copies)."""
        if self.count == 0:
            return ()
        return _rle_repeat(self.datatype.typemap_signature(), self.count)

    def signature_hash(self) -> int:
        """Stable 32-bit hash of :meth:`signature` (0 for zero-count)."""
        if self.count == 0:
            return 0
        return sig_crc(self.signature())

    def _ensure_index(self) -> None:
        if self._index is None and self._blocks is not None:
            self._index, self._gran = _gather_index(self._blocks)

    # -- data movement ---------------------------------------------------------

    def pack(self) -> np.ndarray:
        """Gather the payload into a fresh contiguous uint8 array by
        executing the compiled copy program."""
        if self._plan is None:
            return np.empty(0, dtype=np.uint8)
        return self._plan.program.pack(self._bytes, self.offset_bytes)

    def pack_legacy(self) -> np.ndarray:
        """The pre-IR element-gather pack (kept as the differential oracle)."""
        if self._blocks is None:
            return np.empty(0, dtype=np.uint8)
        if self._blocks.num_blocks == 1:
            off = int(self._blocks.offsets[0])
            return self._bytes[off : off + self.nbytes].copy()
        self._ensure_index()
        if self._gran > 1:
            units = self._unit_view()
            packed = units[self._index]
            return packed.view(np.uint8).reshape(-1)
        return self._bytes[self._index].copy()

    def _unit_view(self) -> np.ndarray:
        """Void view at pack granularity.

        Every block offset and end is a multiple of the granularity, so
        trimming the tail remainder of the byte view never cuts a block.
        """
        usable = self._bytes.size - self._bytes.size % self._gran
        return self._bytes[:usable].view(np.dtype((np.void, self._gran)))

    def unpack(self, data: np.ndarray) -> None:
        """Scatter contiguous ``data`` (uint8) back into the typed layout by
        executing the compiled copy program."""
        data = np.asarray(data).reshape(-1).view(np.uint8)
        if data.size != self.nbytes:
            raise DatatypeError(
                f"unpack size mismatch: got {data.size} bytes, type holds {self.nbytes}"
            )
        if self._plan is None:
            return
        self._plan.program.unpack(self._bytes, self.offset_bytes, data)

    def unpack_legacy(self, data: np.ndarray) -> None:
        """The pre-IR element-scatter unpack (the differential oracle)."""
        data = np.asarray(data).reshape(-1).view(np.uint8)
        if data.size != self.nbytes:
            raise DatatypeError(
                f"unpack size mismatch: got {data.size} bytes, type holds {self.nbytes}"
            )
        if self._blocks is None:
            return
        if self._blocks.num_blocks == 1:
            off = int(self._blocks.offsets[0])
            self._bytes[off : off + self.nbytes] = data
            return
        self._ensure_index()
        if self._gran > 1:
            units = self._unit_view()
            units[self._index] = data.view(np.dtype((np.void, self._gran)))
        else:
            self._bytes[self._index] = data

    def extract(self) -> np.ndarray:
        """Alias of :meth:`pack` (reads the payload without sending it)."""
        return self.pack()
