"""The single-context (baseline) and dual-context (optimised) pack engines.

Both engines plan the *pipelined* processing of a noncontiguous send: the
payload is handled in ``pipeline_chunk``-byte stages so packing can overlap
the wire transfer of the previous chunk (section 3.1 of the paper).  Before
each stage the engine looks ahead ``lookahead_depth`` blocks to classify the
upcoming region as *dense* (medium-to-large contiguous segments: send
directly, writev-style) or *sparse* (many short segments: pack into an
intermediate buffer first).

The difference the paper analyses:

``SingleContextEngine`` (MPICH2 / MVAPICH2-0.9.5 behaviour)
    Keeps ONE context (cursor) into the datatype.  The look-ahead advances
    that cursor; when the region is sparse the pack must restart from the
    *previous* position, which the engine has lost -- it re-searches the
    datatype from the beginning.  The per-stage search walks all blocks
    already processed, so total search time grows quadratically with the
    datatype size.

``DualContextEngine`` (the paper's section 4.1 design)
    Keeps TWO contexts: one rolls forward parsing only datatype *signatures*
    for the look-ahead, the other tracks the pack position.  No re-search
    ever happens; the look-ahead cost is near-constant per stage.

The engines return :class:`PackStage` records with the simulated CPU cost of
each phase; the MPI layer turns those into pipelined simulated time.  The
real byte movement is done separately by
:class:`repro.datatypes.packing.TypedBuffer` (vectorised), so wall-clock time
stays small even when simulated search time is quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.datatypes.flatten import BlockList
from repro.util.costmodel import CostModel


@dataclass(frozen=True)
class PackStage:
    """One pipeline stage of a noncontiguous send.

    ``start``/``nbytes`` address the packed stream; the ``*_s`` fields are
    nominal CPU seconds (before per-rank speed scaling) split by phase so
    Fig. 13-style breakdowns can be produced.
    """

    start: int
    nbytes: int
    dense: bool
    lookahead_s: float
    search_s: float
    pack_s: float
    #: blocks walked to recover the lost pack context (0 when no re-search
    #: happened; the profiler's re-search depth histogram reads this)
    search_blocks: int = 0

    @property
    def cpu_s(self) -> float:
        return self.lookahead_s + self.search_s + self.pack_s


class _EngineBase:
    """Shared stage-planning logic; subclasses set the search policy."""

    #: subclasses: does a sparse decision force a context re-search?
    researches_on_sparse: bool

    def __init__(self, blocks: BlockList, cost: CostModel):
        self.blocks = blocks
        self.cost = cost

    def classify(self, first_block: int) -> bool:
        """True if the region starting at ``first_block`` is dense."""
        mean = self.blocks.mean_block_length(first_block, self.cost.lookahead_depth)
        return mean >= self.cost.dense_block_threshold

    def plan(self) -> List[PackStage]:
        """Plan all pipeline stages for one full pass over the payload."""
        cost = self.cost
        blocks = self.blocks
        size = blocks.size
        stages: List[PackStage] = []
        if size == 0:
            return stages
        if blocks.num_blocks == 1:
            # Fully contiguous: sent straight from the user buffer, no
            # datatype processing at all (the MPI fast path).
            pos = 0
            while pos < size:
                chunk = min(cost.pipeline_chunk, size - pos)
                stages.append(PackStage(pos, chunk, True, 0.0, 0.0, 0.0))
                pos += chunk
            return stages
        pos = 0
        while pos < size:
            chunk = min(cost.pipeline_chunk, size - pos)
            first, last = blocks.blocks_in_range(pos, pos + chunk)
            nblocks = last - first
            look_blocks = min(cost.lookahead_depth, blocks.num_blocks - first)
            lookahead_s = look_blocks * cost.lookahead_block
            dense = self.classify(first)
            search_blocks = 0
            if dense:
                # writev-style direct send: per-block iovec setup, no copy
                search_s = 0.0
                pack_s = nblocks * cost.block_overhead
            else:
                # pack into the intermediate buffer
                if self.researches_on_sparse:
                    # context was advanced by the look-ahead; walk the
                    # datatype from block 0 back to the pack position
                    search_s = first * cost.search_block
                    search_blocks = first
                else:
                    search_s = 0.0
                pack_s = chunk * cost.copy_byte + nblocks * cost.block_overhead
            stages.append(PackStage(pos, chunk, dense, lookahead_s, search_s,
                                    pack_s, search_blocks))
            pos += chunk
        return stages

    def total_cpu_s(self) -> float:
        return sum(s.cpu_s for s in self.plan())


class SingleContextEngine(_EngineBase):
    """Baseline MPICH2-style engine: sparse stages pay a context re-search."""

    researches_on_sparse = True


class DualContextEngine(_EngineBase):
    """Paper section 4.1: a second context eliminates the re-search."""

    researches_on_sparse = False


def make_engine(blocks: BlockList, cost: CostModel, dual_context: bool) -> _EngineBase:
    """Factory keyed by the MPI configuration flag."""
    cls = DualContextEngine if dual_context else SingleContextEngine
    return cls(blocks, cost)


def engine_for(typed, cost: CostModel, dual_context: bool) -> _EngineBase:
    """Engine over a :class:`~repro.datatypes.packing.TypedBuffer`'s layout.

    The block structure comes from the buffer's compiled IR plan (shared
    across equal-structure types), so repeated sends of the same datatype
    never re-derive the ``BlockList`` the cost model walks.  The *cost*
    analysis itself is untouched: both engines see the same merged block
    stream the legacy flatten produced, keeping the quadratic-re-search
    versus constant-look-ahead pins exactly where the paper puts them.
    """
    return make_engine(typed.blocks, cost, dual_context)


def unpack_stage_cost(nbytes: int, nblocks: int, cost: CostModel, contiguous: bool) -> float:
    """Receiver-side CPU cost of scattering one chunk into a typed layout.

    Receivers keep a single monotone context (no density decision, hence no
    look-ahead and no lost context) in both MPI configurations, so the cost
    is the same for baseline and optimised runs.
    """
    if contiguous:
        return 0.0
    return nbytes * cost.copy_byte + nblocks * cost.block_overhead
