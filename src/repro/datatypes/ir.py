"""Canonical strided-block IR for derived datatypes (the datatype compiler).

Every :class:`repro.datatypes.typemap.Datatype` compiles -- once per
*structure*, not per instance -- to a small loop nest over primitive byte
runs, in the spirit of TEMPI's canonical datatype representation and of
MPICH's internal dataloops:

====================  ======================================================
Node                  Meaning (applied at a byte shift ``s``)
====================  ======================================================
``Block(o, l)``       the contiguous bytes ``[s+o, s+o+l)``
``Loop(c, st, ch)``   ``c`` copies of ``ch``, copy ``i`` shifted by ``i*st``
``Seq(children)``     the children one after another, in definition order
``Scatter(offs,      irregular runs ``[s+offs[i], s+offs[i]+lens[i])`` in
``lens)``             array order (the ``Indexed``/``HIndexed`` leaf)
====================  ======================================================

All nodes preserve MPI *pack order*: expansion order is definition order,
never sorted order, so the stream of a compiled type is byte-identical to
the legacy per-class ``_flatten()`` walks.

The compiler has three stages, each deterministic:

1. **Normalisation passes** (:func:`optimize`) run to a fixpoint --
   like-block coalescing (abutting runs fuse; ``Loop`` whose stride equals
   its child length becomes one ``Block``; a ``Scatter`` whose runs are
   uniform and evenly strided re-rolls into a ``Loop``), loop collapsing
   (``Loop(c1, c2*s2, Loop(c2, s2, ch))`` flattens to ``Loop(c1*c2, s2,
   ch)``), and small-loop unrolling over multi-run bodies (which exposes
   cross-iteration coalescing a rolled loop cannot express).  Equivalent
   specs -- ``Vector(4, 2, 4, DOUBLE)``, ``Indexed([2]*4, [0,4,8,12],
   DOUBLE)``, ``IndexedBlock(2, [0,4,8,12], DOUBLE)`` -- reach the *same*
   canonical node.
2. **Lowering** (:func:`lower`) emits a :class:`CopyProgram` of bulk
   numpy-slice copy ops (``contig`` slice copies, 2-D ``strided`` views,
   and a cached ``gather`` fallback for irregular layouts) instead of
   element-gather indices.  Loop-invariant address arithmetic is hoisted:
   every op precomputes its source shift and packed-stream destination, so
   executing a program is a handful of slice assignments.
3. **Caching**: plans are memoized in a process-wide table keyed by the
   type's structural signature (:meth:`Datatype.struct_key`) and count, so
   equal-structure instances share one ``BlockList`` and one program.

``set_passes_enabled(False)`` (or ``REPRO_IR_NO_PASSES=1``) disables the
pass pipeline *and* lowers one python-level copy op per raw block -- the
deliberately de-optimized mode the CI guideline gate self-test uses to
prove the "pack must not lose to manual copy" benchmarks actually trip.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.datatypes.flatten import BlockList, merge_adjacent

__all__ = [
    "Block",
    "Loop",
    "Seq",
    "Scatter",
    "CompiledPlan",
    "CopyProgram",
    "cache_clear",
    "cache_stats",
    "compile_datatype",
    "ir_extent",
    "ir_num_blocks",
    "ir_size",
    "loop",
    "lower",
    "optimize",
    "passes_enabled",
    "seq",
    "set_passes_enabled",
    "shift_ir",
    "to_blocklist",
]


# -- IR nodes ----------------------------------------------------------------


class IRNode:
    __slots__ = ()


@dataclass(frozen=True)
class Block(IRNode):
    """One contiguous byte run."""

    offset: int
    length: int


@dataclass(frozen=True)
class Loop(IRNode):
    """``count`` copies of ``child``; copy ``i`` is shifted by ``i*stride``."""

    count: int
    stride: int
    child: IRNode


@dataclass(frozen=True)
class Seq(IRNode):
    """Children laid out one after another in pack order."""

    children: Tuple[IRNode, ...]


class Scatter(IRNode):
    """Irregular byte runs (the ``Indexed`` family leaf).

    Holds int64 arrays; equality and hashing go through the raw bytes so
    Scatter nodes participate in canonical-form comparison like the frozen
    dataclass nodes do.
    """

    __slots__ = ("offsets", "lengths", "_key")

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray):
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if self.offsets.shape != self.lengths.shape or self.offsets.ndim != 1:
            raise ValueError("Scatter offsets/lengths must be 1-D, equal length")
        if len(self.offsets) == 0:
            raise ValueError("Scatter must hold at least one run")
        self._key = (self.offsets.tobytes(), self.lengths.tobytes())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Scatter) and self._key == other._key

    def __hash__(self) -> int:
        return hash(("Scatter", self._key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scatter(runs={len(self.offsets)})"


# -- smart constructors ------------------------------------------------------


def loop(count: int, stride: int, child: IRNode) -> IRNode:
    """``Loop`` constructor that drops degenerate single-iteration loops."""
    if count == 1:
        return child
    return Loop(int(count), int(stride), child)


def seq(children) -> IRNode:
    """``Seq`` constructor that splices nested Seqs and unwraps singletons."""
    flat: List[IRNode] = []
    for ch in children:
        if isinstance(ch, Seq):
            flat.extend(ch.children)
        else:
            flat.append(ch)
    if not flat:
        raise ValueError("empty Seq")
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def shift_ir(node: IRNode, delta: int) -> IRNode:
    """The same layout displaced by ``delta`` bytes."""
    delta = int(delta)
    if delta == 0:
        return node
    if isinstance(node, Block):
        return Block(node.offset + delta, node.length)
    if isinstance(node, Loop):
        return Loop(node.count, node.stride, shift_ir(node.child, delta))
    if isinstance(node, Seq):
        return Seq(tuple(shift_ir(ch, delta) for ch in node.children))
    if isinstance(node, Scatter):
        return Scatter(node.offsets + delta, node.lengths)
    raise TypeError(type(node).__name__)


# -- structural queries ------------------------------------------------------


def ir_size(node: IRNode) -> int:
    """Payload bytes moved by one expansion of ``node``."""
    if isinstance(node, Block):
        return node.length
    if isinstance(node, Loop):
        return node.count * ir_size(node.child)
    if isinstance(node, Seq):
        return sum(ir_size(ch) for ch in node.children)
    if isinstance(node, Scatter):
        return int(node.lengths.sum())
    raise TypeError(type(node).__name__)


def ir_extent(node: IRNode) -> int:
    """Last byte touched (exclusive) relative to shift 0."""
    if isinstance(node, Block):
        return node.offset + node.length
    if isinstance(node, Loop):
        return (node.count - 1) * node.stride + ir_extent(node.child)
    if isinstance(node, Seq):
        return max(ir_extent(ch) for ch in node.children)
    if isinstance(node, Scatter):
        return int((node.offsets + node.lengths).max())
    raise TypeError(type(node).__name__)


def ir_num_blocks(node: IRNode) -> int:
    """Raw (pre-merge) contiguous-run count of one expansion."""
    if isinstance(node, Block):
        return 1
    if isinstance(node, Loop):
        return node.count * ir_num_blocks(node.child)
    if isinstance(node, Seq):
        return sum(ir_num_blocks(ch) for ch in node.children)
    if isinstance(node, Scatter):
        return len(node.offsets)
    raise TypeError(type(node).__name__)


def _expand(node: IRNode) -> Tuple[np.ndarray, np.ndarray]:
    """Raw ``(offsets, lengths)`` in pack order, unmerged."""
    if isinstance(node, Block):
        return (np.array([node.offset], dtype=np.int64),
                np.array([node.length], dtype=np.int64))
    if isinstance(node, Loop):
        offs, lens = _expand(node.child)
        disps = np.arange(node.count, dtype=np.int64) * node.stride
        return ((disps[:, None] + offs[None, :]).reshape(-1),
                np.tile(lens, node.count))
    if isinstance(node, Seq):
        parts = [_expand(ch) for ch in node.children]
        return (np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]))
    if isinstance(node, Scatter):
        return node.offsets, node.lengths
    raise TypeError(type(node).__name__)


def to_blocklist(node: IRNode) -> BlockList:
    """The merged contiguous-block stream of one expansion of ``node``.

    Merging adjacent abutting runs is confluent -- the merged result depends
    only on the final run order, never on which intermediate level merged
    first -- so this is byte-for-byte the ``BlockList`` the legacy per-class
    ``_flatten()`` walks produced.
    """
    offs, lens = _expand(node)
    return merge_adjacent(offs, lens)


# -- normalisation passes ----------------------------------------------------

#: small loops over multi-run bodies unroll up to this trip count
_UNROLL_COUNT = 4
#: ... provided the body has at most this many raw runs
_UNROLL_BODY_RUNS = 8
#: fixpoint iteration cap (every pass shrinks or preserves node count, so
#: real inputs converge in 2-3 rounds; the cap is a safety net)
_MAX_PASS_ROUNDS = 8


def _canonicalize_scatter(node: Scatter) -> IRNode:
    """Merge abutting runs; recognise single runs and uniform strides."""
    offs, lens = node.offsets, node.lengths
    if len(offs) > 1:
        starts = np.empty(len(offs), dtype=bool)
        starts[0] = True
        starts[1:] = offs[1:] != offs[:-1] + lens[:-1]
        if not starts.all():
            idx = np.flatnonzero(starts)
            offs = offs[idx]
            lens = np.add.reduceat(node.lengths, idx)
    if len(offs) == 1:
        return Block(int(offs[0]), int(lens[0]))
    # re-roll: equal lengths + uniform positive stride covering the run
    # length means this is a Vector in disguise
    if (lens == lens[0]).all():
        steps = np.diff(offs)
        if (steps == steps[0]).all() and steps[0] >= lens[0] and steps[0] > 0:
            return Loop(len(offs), int(steps[0]),
                        Block(int(offs[0]), int(lens[0])))
    return Scatter(offs, lens)


def _coalesce(node: IRNode) -> IRNode:
    """Bottom-up like-block coalescing."""
    if isinstance(node, Block):
        return node
    if isinstance(node, Scatter):
        return _canonicalize_scatter(node)
    if isinstance(node, Loop):
        child = _coalesce(node.child)
        if isinstance(child, Block) and node.stride == child.length:
            # back-to-back iterations: the loop is one contiguous run
            return Block(child.offset, node.count * child.length)
        return loop(node.count, node.stride, child)
    if isinstance(node, Seq):
        children: List[IRNode] = []
        for raw in node.children:
            ch = _coalesce(raw)
            sub = ch.children if isinstance(ch, Seq) else (ch,)
            for piece in sub:
                prev = children[-1] if children else None
                if (isinstance(prev, Block) and isinstance(piece, Block)
                        and piece.offset == prev.offset + prev.length):
                    children[-1] = Block(prev.offset, prev.length + piece.length)
                else:
                    children.append(piece)
        return seq(children)
    raise TypeError(type(node).__name__)


def _collapse(node: IRNode) -> IRNode:
    """Bottom-up collapsing of perfectly nested loops."""
    if isinstance(node, (Block, Scatter)):
        return node
    if isinstance(node, Seq):
        return seq(_collapse(ch) for ch in node.children)
    if isinstance(node, Loop):
        child = _collapse(node.child)
        if isinstance(child, Loop) and node.stride == child.count * child.stride:
            return Loop(node.count * child.count, child.stride, child.child)
        return loop(node.count, node.stride, child)
    raise TypeError(type(node).__name__)


def _unroll(node: IRNode) -> IRNode:
    """Unroll small loops over multi-run bodies.

    A rolled ``Loop`` cannot merge the tail run of iteration ``i`` with the
    head run of iteration ``i+1``; unrolling hands those runs to the Seq
    coalescer.  Loops over a single ``Block`` stay rolled -- they lower to
    one strided op, which beats a handful of slice copies.
    """
    if isinstance(node, (Block, Scatter)):
        return node
    if isinstance(node, Seq):
        return seq(_unroll(ch) for ch in node.children)
    if isinstance(node, Loop):
        child = _unroll(node.child)
        if (not isinstance(child, Block)
                and node.count <= _UNROLL_COUNT
                and ir_num_blocks(child) <= _UNROLL_BODY_RUNS):
            return seq(shift_ir(child, i * node.stride)
                       for i in range(node.count))
        return loop(node.count, node.stride, child)
    raise TypeError(type(node).__name__)


def optimize(node: IRNode) -> IRNode:
    """Run the pass pipeline to a fixpoint."""
    prev: Optional[IRNode] = None
    for _ in range(_MAX_PASS_ROUNDS):
        if node == prev:
            break
        prev = node
        node = _unroll(_collapse(_coalesce(node)))
    return node


# -- lowering ----------------------------------------------------------------


class _ContigOp:
    """``out[dst:dst+n] = buf[base+src : base+src+n]``."""

    __slots__ = ("src", "dst", "n")
    kind = "contig"

    def __init__(self, src: int, dst: int, n: int):
        self.src, self.dst, self.n = src, dst, n

    def pack(self, bts: np.ndarray, base: int, out: np.ndarray) -> None:
        s = base + self.src
        out[self.dst : self.dst + self.n] = bts[s : s + self.n]

    def unpack(self, bts: np.ndarray, base: int, data: np.ndarray) -> None:
        s = base + self.src
        bts[s : s + self.n] = data[self.dst : self.dst + self.n]


class _StridedOp:
    """A 2-D strided copy: ``count`` runs of ``blen`` bytes every ``stride``.

    Lowered from ``Loop(count, stride, Block)``; the strided source view is
    built once per execution (the loop-invariant address computation hoisted
    out of any per-iteration work).
    """

    __slots__ = ("src", "dst", "count", "stride", "blen", "span", "total")
    kind = "strided"

    def __init__(self, src: int, dst: int, count: int, stride: int, blen: int):
        self.src, self.dst = src, dst
        self.count, self.stride, self.blen = count, stride, blen
        self.span = (count - 1) * stride + blen
        self.total = count * blen

    def _view(self, bts: np.ndarray, base: int) -> np.ndarray:
        s = base + self.src
        flat = bts[s : s + self.span]
        return np.lib.stride_tricks.as_strided(
            flat, shape=(self.count, self.blen), strides=(self.stride, 1))

    def pack(self, bts: np.ndarray, base: int, out: np.ndarray) -> None:
        dst = out[self.dst : self.dst + self.total]
        dst.reshape(self.count, self.blen)[...] = self._view(bts, base)

    def unpack(self, bts: np.ndarray, base: int, data: np.ndarray) -> None:
        src = data[self.dst : self.dst + self.total]
        self._view(bts, base)[...] = src.reshape(self.count, self.blen)


class _GatherOp:
    """Fancy-index fallback for irregular runs (the legacy mechanism).

    The unit index is relative to the datatype origin and built lazily once
    per *program* (shared across every TypedBuffer with this structure); the
    base offset is applied at execution.  Falls back to a byte-level index
    when the caller's base offset breaks the granularity.
    """

    __slots__ = ("offsets", "lengths", "dst", "total",
                 "_gran", "_unit_index", "_byte_index")
    kind = "gather"

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray, dst: int):
        self.offsets = offsets
        self.lengths = lengths
        self.dst = dst
        self.total = int(lengths.sum())
        g = 16
        for arr in (offsets, lengths):
            g = int(np.gcd(g, np.gcd.reduce(arr, initial=0)))
        self._gran = max(1, g & -g)
        self._unit_index: Optional[np.ndarray] = None
        self._byte_index: Optional[np.ndarray] = None

    @staticmethod
    def _ragged(offs: np.ndarray, lens: np.ndarray) -> np.ndarray:
        total = int(lens.sum())
        ends = np.cumsum(lens)
        starts = ends - lens
        return np.arange(total, dtype=np.int64) + np.repeat(offs - starts, lens)

    def _index_for(self, base: int) -> Tuple[np.ndarray, int]:
        if self._gran > 1 and base % self._gran == 0:
            if self._unit_index is None:
                self._unit_index = self._ragged(
                    self.offsets // self._gran, self.lengths // self._gran)
            return self._unit_index + base // self._gran, self._gran
        if self._byte_index is None:
            self._byte_index = self._ragged(self.offsets, self.lengths)
        return self._byte_index + base, 1

    @staticmethod
    def _units(bts: np.ndarray, gran: int) -> np.ndarray:
        usable = bts.size - bts.size % gran
        return bts[:usable].view(np.dtype((np.void, gran)))

    def pack(self, bts: np.ndarray, base: int, out: np.ndarray) -> None:
        index, gran = self._index_for(base)
        dst = out[self.dst : self.dst + self.total]
        if gran > 1:
            dst[...] = self._units(bts, gran)[index].view(np.uint8).reshape(-1)
        else:
            dst[...] = bts[index]

    def unpack(self, bts: np.ndarray, base: int, data: np.ndarray) -> None:
        index, gran = self._index_for(base)
        src = data[self.dst : self.dst + self.total]
        if gran > 1:
            self._units(bts, gran)[index] = src.view(np.dtype((np.void, gran)))
        else:
            bts[index] = src


class CopyProgram:
    """An ordered list of bulk copy ops; executing it moves the payload."""

    __slots__ = ("ops", "nbytes")

    def __init__(self, ops: List[Any], nbytes: int):
        self.ops = ops
        self.nbytes = nbytes

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def op_kinds(self) -> Dict[str, int]:
        kinds: Dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        return kinds

    def pack_into(self, bts: np.ndarray, base: int, out: np.ndarray) -> np.ndarray:
        for op in self.ops:
            op.pack(bts, base, out)
        return out

    def pack(self, bts: np.ndarray, base: int) -> np.ndarray:
        return self.pack_into(bts, base, np.empty(self.nbytes, dtype=np.uint8))

    def unpack(self, bts: np.ndarray, base: int, data: np.ndarray) -> None:
        for op in self.ops:
            op.unpack(bts, base, data)


#: a Scatter with at most this many runs lowers to per-run slice copies
_SCATTER_INLINE_RUNS = 4
#: expanding loops stops once a subtree would exceed this many python ops
_EXPAND_OPS_LIMIT = 96


def _estimate_ops(node: IRNode) -> int:
    if isinstance(node, Block):
        return 1
    if isinstance(node, Scatter):
        n = len(node.offsets)
        return n if n <= _SCATTER_INLINE_RUNS else 1
    if isinstance(node, Loop):
        if isinstance(node.child, Block):
            return 1
        return node.count * _estimate_ops(node.child)
    if isinstance(node, Seq):
        return sum(_estimate_ops(ch) for ch in node.children)
    raise TypeError(type(node).__name__)


def _emit(node: IRNode, shift: int, dst: int, ops: List[Any]) -> int:
    """Append ops for ``node`` displaced by ``shift``; returns next dst."""
    if isinstance(node, Block):
        ops.append(_ContigOp(shift + node.offset, dst, node.length))
        return dst + node.length
    if isinstance(node, Scatter):
        runs = len(node.offsets)
        if runs <= _SCATTER_INLINE_RUNS:
            for o, n in zip(node.offsets.tolist(), node.lengths.tolist()):
                ops.append(_ContigOp(shift + o, dst, n))
                dst += n
            return dst
        ops.append(_GatherOp(node.offsets + shift, node.lengths, dst))
        return dst + int(node.lengths.sum())
    if isinstance(node, Loop):
        child = node.child
        if isinstance(child, Block):
            if node.stride > child.length:
                ops.append(_StridedOp(shift + child.offset, dst,
                                      node.count, node.stride, child.length))
                return dst + node.count * child.length
            if node.stride == child.length:
                n = node.count * child.length
                ops.append(_ContigOp(shift + child.offset, dst, n))
                return dst + n
            # overlapping hand-built loop: preserve exact sequential order
            for i in range(node.count):
                dst = _emit(child, shift + i * node.stride, dst, ops)
            return dst
        if node.count * _estimate_ops(child) <= _EXPAND_OPS_LIMIT:
            for i in range(node.count):
                dst = _emit(child, shift + i * node.stride, dst, ops)
            return dst
        # too many python ops: gather the whole subtree through one index
        offs, lens = _expand(node)
        merged = merge_adjacent(offs, lens)
        ops.append(_GatherOp(merged.offsets + shift, merged.lengths, dst))
        return dst + merged.size
    if isinstance(node, Seq):
        for ch in node.children:
            dst = _emit(ch, shift, dst, ops)
        return dst
    raise TypeError(type(node).__name__)


def lower(node: IRNode) -> CopyProgram:
    """Lower optimized IR to a bulk-copy program."""
    ops: List[Any] = []
    if _estimate_ops(node) > _EXPAND_OPS_LIMIT:
        blocks = to_blocklist(node)
        ops.append(_GatherOp(blocks.offsets, blocks.lengths, 0))
        nbytes = blocks.size
    else:
        nbytes = _emit(node, 0, 0, ops)
    return CopyProgram(ops, nbytes)


#: above this many raw runs the de-optimized program gathers anyway (keeps
#: pathological self-test types bounded)
_DEOPT_OPS_CAP = 100_000


def lower_deoptimized(node: IRNode) -> CopyProgram:
    """One python-level slice copy per *raw* run -- no coalescing, no
    strided views.  Used only when the pass pipeline is disabled, to give
    the CI guideline gate something that demonstrably loses to manual copy."""
    offs, lens = _expand(node)
    if len(offs) > _DEOPT_OPS_CAP:
        merged = merge_adjacent(offs, lens)
        return CopyProgram([_GatherOp(merged.offsets, merged.lengths, 0)],
                           merged.size)
    ops: List[Any] = []
    dst = 0
    for o, n in zip(offs.tolist(), lens.tolist()):
        ops.append(_ContigOp(o, dst, n))
        dst += n
    return CopyProgram(ops, dst)


# -- compilation cache -------------------------------------------------------


class CompiledPlan:
    """Everything the stack needs about one (structure, count) pair."""

    __slots__ = ("key", "ir", "blocks", "program", "raw_blocks")

    def __init__(self, key, ir: IRNode, blocks: BlockList,
                 program: CopyProgram, raw_blocks: int):
        self.key = key
        self.ir = ir
        self.blocks = blocks
        self.program = program
        self.raw_blocks = raw_blocks

    @property
    def coalesced_ratio(self) -> float:
        """Merged blocks per raw run (1.0 = nothing coalesced)."""
        return self.blocks.num_blocks / max(1, self.raw_blocks)

    def info(self) -> Dict[str, Any]:
        """Compact description used as profiling span attributes."""
        return {
            "ir_ops": self.program.num_ops,
            "ir_blocks": self.blocks.num_blocks,
            "ir_raw_blocks": self.raw_blocks,
            "ir_coalesced_ratio": round(self.coalesced_ratio, 6),
        }


_CACHE: Dict[Any, CompiledPlan] = {}
_HITS = 0
_MISSES = 0
_PASSES_ENABLED = os.environ.get("REPRO_IR_NO_PASSES", "") not in ("1", "true")


def passes_enabled() -> bool:
    return _PASSES_ENABLED


def set_passes_enabled(flag: bool) -> None:
    """Toggle the optimization pipeline (the guideline-gate self-test)."""
    global _PASSES_ENABLED
    _PASSES_ENABLED = bool(flag)


def cache_clear() -> None:
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def cache_stats() -> Dict[str, int]:
    return {"entries": len(_CACHE), "hits": _HITS, "misses": _MISSES}


def _session_registry():
    from repro.prof import session

    if not session.is_enabled():
        return None
    return session.registry()


def _note_hit() -> None:
    global _HITS
    _HITS += 1
    reg = _session_registry()
    if reg is not None:
        reg.counter("repro_datatype_ir_cache_hits_total").inc()


def _note_compile(plan: CompiledPlan, wall: float) -> None:
    global _MISSES
    _MISSES += 1
    reg = _session_registry()
    if reg is not None:
        reg.counter("repro_datatype_ir_compile_total").inc()
        reg.counter("repro_datatype_ir_cache_misses_total").inc()
        reg.histogram("repro_datatype_ir_compile_seconds").observe(wall)
        reg.histogram("repro_datatype_ir_coalesced_ratio").observe(
            plan.coalesced_ratio)


def compile_datatype(datatype, count: int = 1) -> CompiledPlan:
    """Compile ``count`` back-to-back copies of ``datatype``.

    Memoized process-wide on ``(struct_key, count, passes_enabled)`` --
    equal-structure instances share the plan, its ``BlockList``, and its
    (lazily indexed) gather ops.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    key = (datatype.struct_key(), count, _PASSES_ENABLED)
    plan = _CACHE.get(key)
    if plan is not None:
        _note_hit()
        return plan
    t0 = time.perf_counter()
    node = datatype._build_ir()
    if count > 1:
        node = loop(count, datatype.extent, node)
    raw = ir_num_blocks(node)
    if _PASSES_ENABLED:
        node = optimize(node)
        program = lower(node)
    else:
        program = lower_deoptimized(node)
    blocks = to_blocklist(node)
    plan = CompiledPlan(key, node, blocks, program, raw)
    _CACHE[key] = plan
    _note_compile(plan, time.perf_counter() - t0)
    return plan


def ir_of(datatype) -> IRNode:
    """The optimized canonical IR of one instance of ``datatype``."""
    return compile_datatype(datatype).ir
