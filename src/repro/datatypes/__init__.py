"""MPI derived datatypes and the two pack-engine designs.

This package is the heart of the paper's first contribution (sections 3.1 and
4.1):

- :mod:`repro.datatypes.typemap` -- the datatype constructors
  (``Contiguous``, ``Vector``, ``Indexed``, ``Struct``, ``Subarray``, ...),
  mirroring MPI's type-creation calls,
- :mod:`repro.datatypes.ir` -- the datatype compiler: every constructor
  tree lowers to a canonical strided-block IR, an optimizing pass pipeline
  normalises it (equivalent specs reach identical IR), and lowering emits
  the bulk-copy programs packing executes; plans are memoized process-wide
  by structural signature,
- :mod:`repro.datatypes.flatten` -- the contiguous-block stream
  (``BlockList``) the cost engines walk, now produced from the IR,
- :mod:`repro.datatypes.packing` -- functional packing/unpacking: bytes
  really move between user buffers and contiguous wire buffers by
  executing compiled copy programs,
- :mod:`repro.datatypes.engine` -- the *cost* side: the baseline
  single-context engine (whose density look-ahead loses the pack context and
  must re-search, quadratically) and the paper's dual-context look-ahead
  engine.
"""

from repro.datatypes import ir
from repro.datatypes.typemap import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Contiguous,
    Datatype,
    DatatypeError,
    HIndexed,
    HVector,
    Indexed,
    IndexedBlock,
    Primitive,
    Resized,
    Struct,
    Subarray,
    Vector,
)
from repro.datatypes.flatten import BlockList
from repro.datatypes.packing import TypedBuffer
from repro.datatypes.engine import (
    DualContextEngine,
    PackStage,
    SingleContextEngine,
    engine_for,
    make_engine,
)

__all__ = [
    "BYTE",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "BlockList",
    "Contiguous",
    "Datatype",
    "DatatypeError",
    "DualContextEngine",
    "HIndexed",
    "HVector",
    "Indexed",
    "IndexedBlock",
    "PackStage",
    "Primitive",
    "Resized",
    "SingleContextEngine",
    "Struct",
    "Subarray",
    "TypedBuffer",
    "Vector",
    "engine_for",
    "ir",
    "make_engine",
]
