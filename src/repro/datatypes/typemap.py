"""MPI derived-datatype constructors.

Mirrors the MPI type-creation calls the paper exercises:

=====================  =============================================
This module            MPI equivalent
=====================  =============================================
``Primitive``          ``MPI_DOUBLE``, ``MPI_INT``, ...
``Contiguous``         ``MPI_Type_contiguous``
``Vector``             ``MPI_Type_vector``
``HVector``            ``MPI_Type_create_hvector``
``Indexed``            ``MPI_Type_indexed``
``HIndexed``           ``MPI_Type_create_hindexed``
``IndexedBlock``       ``MPI_Type_create_indexed_block``
``Struct``             ``MPI_Type_create_struct``
``Subarray``           ``MPI_Type_create_subarray``
``Resized``            ``MPI_Type_create_resized``
=====================  =============================================

Every datatype knows its ``size`` (payload bytes), ``extent`` (span including
holes), and can ``flatten()`` to a :class:`repro.datatypes.flatten.BlockList`.
Flattening is vectorised (numpy) and cached, so even the million-block
column datatype of the 1024x1024 transpose benchmark is cheap to build.

The paper's running example (Figs. 4-6) -- the first column of an 8x8 matrix
of 3-double elements -- is::

    element = Contiguous(3, DOUBLE)          # one matrix element
    column  = Vector(8, 1, 8, element)       # 8 elements, stride 8 elements
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datatypes.flatten import BlockList, merge_adjacent
from repro.datatypes import ir as _ir

#: a type signature: run-length-encoded primitive sequence ((name, count), ...)
TypeSignature = Tuple[Tuple[str, int], ...]

#: above this many runs a signature is summarised rather than expanded
_SIG_RUN_CAP = 65536


class DatatypeError(ValueError):
    """Invalid datatype construction or use."""


def _rle_compress(runs: Sequence[Tuple[str, int]]) -> TypeSignature:
    """Merge adjacent runs of the same primitive; drop zero-count runs."""
    out: list[tuple[str, int]] = []
    for name, count in runs:
        if count <= 0:
            continue
        if out and out[-1][0] == name:
            out[-1] = (name, out[-1][1] + count)
        else:
            out.append((name, count))
    return tuple(out)


def _rle_repeat(sig: TypeSignature, n: int) -> TypeSignature:
    """The signature of ``n`` back-to-back copies of ``sig``."""
    if n <= 0 or not sig:
        return ()
    if n == 1:
        return sig
    if len(sig) == 1:
        name, count = sig[0]
        return ((name, count * n),)
    if sig[0][0] == sig[-1][0]:
        # the boundary runs of adjacent copies merge:
        #   [h, mid..., t] * n  ->  h, mid..., (t+h, mid...) * (n-1), t
        head = sig[0]
        tail = sig[-1]
        mid = sig[1:-1]
        if (len(sig) - 1) * n > _SIG_RUN_CAP:
            return (("...", sum(c for _n, c in sig) * n),)
        body: tuple = ((tail[0], tail[1] + head[1]),) + mid
        return _rle_compress((head,) + mid + (body * (n - 1)) + (tail,))
    if len(sig) * n > _SIG_RUN_CAP:
        # summarise enormous heterogeneous signatures (hash stays stable)
        return (("...", sum(c for _n, c in sig) * n),)
    return _rle_compress(tuple(sig) * n)


def sig_crc(sig: TypeSignature) -> int:
    """Deterministic 32-bit hash of a type signature (stable across
    processes, unlike builtin ``hash()``)."""
    return zlib.crc32(repr(sig).encode("ascii")) & 0xFFFFFFFF


def signature_hash(datatype: "Datatype", count: int = 1) -> int:
    """A deterministic 32-bit hash of ``count`` copies of the type's
    primitive signature."""
    return sig_crc(_rle_repeat(datatype.typemap_signature(), count))


class Datatype:
    """Base class; concrete types implement :meth:`_build_ir` (the canonical
    strided-block IR the compiler consumes) and :meth:`_flatten` (the legacy
    per-class expansion, kept as the differential-testing reference)."""

    #: payload bytes per instance of this type
    size: int
    #: span in bytes from lower bound to upper bound (may exceed ``size``)
    extent: int

    _cached_blocks: Optional[BlockList]

    def flatten(self) -> BlockList:
        """The merged contiguous-block stream of one instance of the type.

        Served from the :mod:`repro.datatypes.ir` compile cache: every
        instance with the same :meth:`struct_key` shares one ``BlockList``
        (and one lowered copy program), so repeated construction of equal
        types never recomputes the expansion.
        """
        if self._cached_blocks is None:
            self._cached_blocks = _ir.compile_datatype(self).blocks
        return self._cached_blocks

    def _flatten(self) -> BlockList:  # pragma: no cover - abstract
        raise NotImplementedError

    def _build_ir(self) -> "_ir.IRNode":  # pragma: no cover - abstract
        raise NotImplementedError

    def struct_key(self) -> tuple:
        """A hashable structural identity: equal keys mean byte-identical
        layouts built from the same constructor tree (the compile-cache
        key; numpy index arrays enter via their raw bytes)."""
        key = getattr(self, "_struct_key", None)
        if key is None:
            key = self._struct_key_parts()
            self._struct_key = key
        return key

    def _struct_key_parts(self) -> tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def num_blocks(self) -> int:
        return self.flatten().num_blocks

    def signature(self) -> tuple:
        """A hashable structural summary (used for type-matching checks)."""
        return (type(self).__name__, self.size, self.extent, self.num_blocks)

    def typemap_signature(self) -> TypeSignature:
        """The run-length-encoded primitive sequence of one instance.

        This is MPI's *type signature*: the ordered list of basic datatypes
        in the typemap, ignoring displacements.  Send/receive pairs must
        have compatible signatures (MPI-3.0 section 3.3.1); the analyzer's
        SIG001 rule checks exactly this.
        """
        raise NotImplementedError

    def is_contiguous(self) -> bool:
        bl = self.flatten()
        return bl.num_blocks == 1 and int(bl.offsets[0]) == 0 and self.size == self.extent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(size={self.size}, extent={self.extent})"


class Primitive(Datatype):
    """A basic MPI type backed by a numpy scalar dtype."""

    def __init__(self, name: str, np_dtype: np.dtype):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.size = self.np_dtype.itemsize
        self.extent = self.size
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        return BlockList(np.array([0]), np.array([self.size]))

    def _build_ir(self) -> _ir.IRNode:
        return _ir.Block(0, self.size)

    def _struct_key_parts(self) -> tuple:
        return ("prim", self.name, self.size)

    def typemap_signature(self) -> TypeSignature:
        return ((self.name, 1),)

    def __repr__(self) -> str:
        return f"Primitive({self.name})"


DOUBLE = Primitive("DOUBLE", np.float64)
FLOAT = Primitive("FLOAT", np.float32)
INT = Primitive("INT", np.int32)
LONG = Primitive("LONG", np.int64)
CHAR = Primitive("CHAR", np.int8)
BYTE = Primitive("BYTE", np.uint8)

_PRIMITIVE_BY_DTYPE = {
    p.np_dtype.str: p for p in (DOUBLE, FLOAT, INT, LONG, CHAR, BYTE)
}


def primitive_for(np_dtype) -> Primitive:
    """The canonical :class:`Primitive` for a numpy dtype.

    Returns the shared module-level primitive when one exists (so inferred
    and explicit datatypes produce identical type signatures); otherwise a
    fresh ``Primitive`` named after the dtype.
    """
    dt = np.dtype(np_dtype)
    prim = _PRIMITIVE_BY_DTYPE.get(dt.str)
    if prim is not None:
        return prim
    return Primitive(str(dt).upper(), dt)


def _check_base(base: Datatype) -> Datatype:
    if not isinstance(base, Datatype):
        raise DatatypeError(f"base type must be a Datatype, got {type(base).__name__}")
    return base


class Contiguous(Datatype):
    """``count`` back-to-back copies of ``base``."""

    def __init__(self, count: int, base: Datatype):
        if count < 1:
            raise DatatypeError(f"count must be >= 1, got {count}")
        self.count = count
        self.base = _check_base(base)
        self.size = count * base.size
        self.extent = count * base.extent
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        disps = np.arange(self.count, dtype=np.int64) * self.base.extent
        return self.base.flatten().replicated(disps)

    def _build_ir(self) -> _ir.IRNode:
        return _ir.loop(self.count, self.base.extent, _ir.ir_of(self.base))

    def _struct_key_parts(self) -> tuple:
        return ("contig", self.count, self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return _rle_repeat(self.base.typemap_signature(), self.count)


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base-elements, stride in elements.

    The paper's column type: ``Vector(8, 1, 8, element)``.
    """

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype):
        if count < 1 or blocklength < 1:
            raise DatatypeError("count and blocklength must be >= 1")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = _check_base(base)
        self.size = count * blocklength * base.size
        # MPI extent: from first byte to last byte spanned (strides may be
        # negative; we only support non-negative here for clarity)
        if stride < blocklength and count > 1:
            raise DatatypeError("overlapping vector (stride < blocklength)")
        self.extent = ((count - 1) * stride + blocklength) * base.extent
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        block = Contiguous(self.blocklength, self.base) if self.blocklength > 1 else self.base
        disps = np.arange(self.count, dtype=np.int64) * (self.stride * self.base.extent)
        return block.flatten().replicated(disps)

    def _build_ir(self) -> _ir.IRNode:
        ext = self.base.extent
        run = _ir.loop(self.blocklength, ext, _ir.ir_of(self.base))
        return _ir.loop(self.count, self.stride * ext, run)

    def _struct_key_parts(self) -> tuple:
        return ("vector", self.count, self.blocklength, self.stride,
                self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return _rle_repeat(self.base.typemap_signature(), self.count * self.blocklength)


class HVector(Datatype):
    """Like :class:`Vector` but the stride is given in bytes."""

    def __init__(self, count: int, blocklength: int, stride_bytes: int, base: Datatype):
        if count < 1 or blocklength < 1:
            raise DatatypeError("count and blocklength must be >= 1")
        if stride_bytes < blocklength * base.extent and count > 1:
            raise DatatypeError("overlapping hvector")
        self.count = count
        self.blocklength = blocklength
        self.stride_bytes = stride_bytes
        self.base = _check_base(base)
        self.size = count * blocklength * base.size
        self.extent = (count - 1) * stride_bytes + blocklength * base.extent
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        block = Contiguous(self.blocklength, self.base) if self.blocklength > 1 else self.base
        disps = np.arange(self.count, dtype=np.int64) * self.stride_bytes
        return block.flatten().replicated(disps)

    def _build_ir(self) -> _ir.IRNode:
        ext = self.base.extent
        run = _ir.loop(self.blocklength, ext, _ir.ir_of(self.base))
        return _ir.loop(self.count, self.stride_bytes, run)

    def _struct_key_parts(self) -> tuple:
        return ("hvector", self.count, self.blocklength, self.stride_bytes,
                self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return _rle_repeat(self.base.typemap_signature(), self.count * self.blocklength)


class Indexed(Datatype):
    """Blocks of varying length at varying displacements (in base elements)."""

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int], base: Datatype):
        bl = np.asarray(blocklengths, dtype=np.int64)
        dp = np.asarray(displacements, dtype=np.int64)
        if bl.shape != dp.shape or bl.ndim != 1 or len(bl) == 0:
            raise DatatypeError("blocklengths/displacements must be equal-length, non-empty")
        if np.any(bl < 0) or np.all(bl == 0):
            raise DatatypeError("blocklengths must be >= 0 with at least one > 0")
        self.base = _check_base(base)
        keep = bl > 0
        self.blocklengths = bl[keep]
        self.displacements = dp[keep]
        self.size = int(self.blocklengths.sum()) * base.size
        self.extent = int(
            (self.displacements + self.blocklengths).max() * base.extent
        )
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        base_bl = self.base.flatten()
        if base_bl.num_blocks == 1 and self.base.size == self.base.extent:
            # fast path: pure byte blocks, in definition order (MPI packs in
            # the order blocks appear in the typemap, not sorted order)
            offs = self.displacements * self.base.extent
            lens = self.blocklengths * self.base.size
            return merge_adjacent(offs, lens)
        # general base: entry e contributes blocklengths[e] copies of the
        # base layout at element offsets displacements[e], disp[e]+1, ...
        # Expanded with the ragged-ranges trick -- no per-entry python loop.
        ext = self.base.extent
        reps = self.blocklengths
        total = int(reps.sum())
        ends = np.cumsum(reps)
        within = np.arange(total, dtype=np.int64) - np.repeat(ends - reps, reps)
        copy_off = (np.repeat(self.displacements, reps) + within) * ext
        offs = (copy_off[:, None] + base_bl.offsets[None, :]).reshape(-1)
        lens = np.tile(base_bl.lengths, total)
        return merge_adjacent(offs, lens)

    def _build_ir(self) -> _ir.IRNode:
        ext = self.base.extent
        if self.base.is_contiguous():
            return _ir.Scatter(self.displacements * ext,
                               self.blocklengths * self.base.size)
        base_ir = _ir.ir_of(self.base)
        return _ir.seq(
            _ir.shift_ir(_ir.loop(int(blen), ext, base_ir), int(disp) * ext)
            for blen, disp in zip(self.blocklengths.tolist(),
                                  self.displacements.tolist())
        )

    def _struct_key_parts(self) -> tuple:
        return ("indexed", self.blocklengths.tobytes(),
                self.displacements.tobytes(), self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return _rle_repeat(
            self.base.typemap_signature(), int(self.blocklengths.sum())
        )


class HIndexed(Datatype):
    """Like :class:`Indexed` but displacements are in bytes."""

    def __init__(self, blocklengths: Sequence[int], byte_displacements: Sequence[int], base: Datatype):
        bl = np.asarray(blocklengths, dtype=np.int64)
        dp = np.asarray(byte_displacements, dtype=np.int64)
        if bl.shape != dp.shape or bl.ndim != 1 or len(bl) == 0:
            raise DatatypeError("blocklengths/displacements must be equal-length, non-empty")
        if np.any(bl < 0) or np.all(bl == 0):
            raise DatatypeError("blocklengths must be >= 0 with at least one > 0")
        self.base = _check_base(base)
        keep = bl > 0
        self.blocklengths = bl[keep]
        self.byte_displacements = dp[keep]
        self.size = int(self.blocklengths.sum()) * base.size
        self.extent = int(
            (self.byte_displacements + self.blocklengths * base.extent).max()
        )
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        if self.base.num_blocks != 1 or self.base.size != self.base.extent:
            raise DatatypeError("HIndexed over non-contiguous base not supported")
        offs = self.byte_displacements.copy()
        lens = self.blocklengths * self.base.size
        return merge_adjacent(offs, lens)

    def _build_ir(self) -> _ir.IRNode:
        if self.base.num_blocks != 1 or self.base.size != self.base.extent:
            raise DatatypeError("HIndexed over non-contiguous base not supported")
        return _ir.Scatter(self.byte_displacements,
                           self.blocklengths * self.base.size)

    def _struct_key_parts(self) -> tuple:
        return ("hindexed", self.blocklengths.tobytes(),
                self.byte_displacements.tobytes(), self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return _rle_repeat(
            self.base.typemap_signature(), int(self.blocklengths.sum())
        )


class IndexedBlock(Datatype):
    """Equal-length blocks at varying displacements (in base elements)."""

    def __init__(self, blocklength: int, displacements: Sequence[int], base: Datatype):
        if blocklength < 1:
            raise DatatypeError("blocklength must be >= 1")
        dp = np.asarray(displacements, dtype=np.int64)
        if dp.ndim != 1 or len(dp) == 0:
            raise DatatypeError("displacements must be 1-D, non-empty")
        self.blocklength = blocklength
        self.displacements = dp
        self.base = _check_base(base)
        self.size = len(dp) * blocklength * base.size
        self.extent = int((dp.max() + blocklength) * base.extent)
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        block = Contiguous(self.blocklength, self.base) if self.blocklength > 1 else self.base
        disps = self.displacements * self.base.extent
        return block.flatten().replicated(disps)

    def _build_ir(self) -> _ir.IRNode:
        ext = self.base.extent
        if self.base.is_contiguous():
            lens = np.full(len(self.displacements),
                           self.blocklength * self.base.size, dtype=np.int64)
            return _ir.Scatter(self.displacements * ext, lens)
        run = _ir.loop(self.blocklength, ext, _ir.ir_of(self.base))
        return _ir.seq(_ir.shift_ir(run, int(d) * ext)
                       for d in self.displacements.tolist())

    def _struct_key_parts(self) -> tuple:
        return ("indexedblock", self.blocklength,
                self.displacements.tobytes(), self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return _rle_repeat(
            self.base.typemap_signature(), len(self.displacements) * self.blocklength
        )


class Struct(Datatype):
    """Heterogeneous fields: per-field blocklength, byte displacement, type.

    The classic interlaced-fields case from the paper's section 2.1 (pressure,
    temperature, x-velocity, y-velocity stored per grid point).
    """

    def __init__(
        self,
        blocklengths: Sequence[int],
        byte_displacements: Sequence[int],
        types: Sequence[Datatype],
    ):
        if not (len(blocklengths) == len(byte_displacements) == len(types)) or not types:
            raise DatatypeError("struct fields must be equal-length, non-empty")
        self.blocklengths = [int(b) for b in blocklengths]
        self.byte_displacements = [int(d) for d in byte_displacements]
        self.types = [_check_base(t) for t in types]
        if any(b < 1 for b in self.blocklengths):
            raise DatatypeError("struct blocklengths must be >= 1")
        self.size = sum(b * t.size for b, t in zip(self.blocklengths, self.types))
        self.extent = max(
            d + b * t.extent
            for b, d, t in zip(self.blocklengths, self.byte_displacements, self.types)
        )
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        parts_off = []
        parts_len = []
        for b, d, t in zip(self.blocklengths, self.byte_displacements, self.types):
            sub = (Contiguous(b, t) if b > 1 else t).flatten().shifted(d)
            parts_off.append(sub.offsets)
            parts_len.append(sub.lengths)
        offs = np.concatenate(parts_off)
        lens = np.concatenate(parts_len)
        return merge_adjacent(offs, lens)

    def _build_ir(self) -> _ir.IRNode:
        return _ir.seq(
            _ir.shift_ir(_ir.loop(b, t.extent, _ir.ir_of(t)), d)
            for b, d, t in zip(self.blocklengths, self.byte_displacements,
                               self.types)
        )

    def _struct_key_parts(self) -> tuple:
        return ("struct", tuple(self.blocklengths),
                tuple(self.byte_displacements),
                tuple(t.struct_key() for t in self.types))

    def typemap_signature(self) -> TypeSignature:
        runs: list = []
        for b, t in zip(self.blocklengths, self.types):
            runs.extend(_rle_repeat(t.typemap_signature(), b))
        return _rle_compress(runs)


class Subarray(Datatype):
    """An n-dimensional sub-block of an n-dimensional array.

    ``sizes`` is the full local array shape, ``subsizes`` the selected block,
    ``starts`` its origin.  ``order='C'`` means the last dimension is
    contiguous (row-major), matching both numpy's default layout and
    ``MPI_ORDER_C``.  This is the type a DMDA ghost-face exchange builds.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype,
        order: str = "C",
    ):
        sizes = [int(s) for s in sizes]
        subsizes = [int(s) for s in subsizes]
        starts = [int(s) for s in starts]
        if not (len(sizes) == len(subsizes) == len(starts)) or not sizes:
            raise DatatypeError("sizes/subsizes/starts must be equal-length, non-empty")
        for full, sub, st in zip(sizes, subsizes, starts):
            if sub < 1 or st < 0 or st + sub > full:
                raise DatatypeError(
                    f"invalid subarray: sizes={sizes} subsizes={subsizes} starts={starts}"
                )
        if order not in ("C", "F"):
            raise DatatypeError("order must be 'C' or 'F'")
        self.sizes = sizes
        self.subsizes = subsizes
        self.starts = starts
        self.order = order
        self.base = _check_base(base)
        n = 1
        for s in subsizes:
            n *= s
        self.size = n * base.size
        full = 1
        for s in sizes:
            full *= s
        self.extent = full * base.extent  # like MPI: extent of the full array
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        sizes, subsizes, starts = self.sizes, self.subsizes, self.starts
        if self.order == "F":
            sizes, subsizes, starts = sizes[::-1], subsizes[::-1], starts[::-1]
        # Row-major: the last dimension is contiguous.  Build displacements of
        # every run of subsizes[-1] consecutive base elements.
        elem = self.base.extent
        # strides (in elements) of each dimension in the full array
        strides = [1] * len(sizes)
        for d in range(len(sizes) - 2, -1, -1):
            strides[d] = strides[d + 1] * sizes[d + 1]
        # displacement grid over all dims except the last
        disp = np.zeros(1, dtype=np.int64)
        for d in range(len(sizes) - 1):
            idx = (starts[d] + np.arange(subsizes[d], dtype=np.int64)) * strides[d]
            disp = (disp[:, None] + idx[None, :]).reshape(-1)
        disp = (disp + starts[-1]) * elem
        run = Contiguous(subsizes[-1], self.base) if subsizes[-1] > 1 else self.base
        return run.flatten().replicated(disp)

    def _build_ir(self) -> _ir.IRNode:
        sizes, subsizes, starts = self.sizes, self.subsizes, self.starts
        if self.order == "F":
            sizes, subsizes, starts = sizes[::-1], subsizes[::-1], starts[::-1]
        elem = self.base.extent
        strides = [1] * len(sizes)
        for d in range(len(sizes) - 2, -1, -1):
            strides[d] = strides[d + 1] * sizes[d + 1]
        node = _ir.loop(subsizes[-1], elem, _ir.ir_of(self.base))
        for d in range(len(sizes) - 2, -1, -1):
            node = _ir.loop(subsizes[d], strides[d] * elem, node)
        shift = sum(st * sd for st, sd in zip(starts, strides)) * elem
        return _ir.shift_ir(node, shift)

    def _struct_key_parts(self) -> tuple:
        return ("subarray", tuple(self.sizes), tuple(self.subsizes),
                tuple(self.starts), self.order, self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        n = 1
        for s in self.subsizes:
            n *= s
        return _rle_repeat(self.base.typemap_signature(), n)


class Resized(Datatype):
    """Override a type's extent (``MPI_Type_create_resized`` with lb=0)."""

    def __init__(self, base: Datatype, extent: int):
        self.base = _check_base(base)
        if extent < 1:
            raise DatatypeError("extent must be >= 1")
        self.size = base.size
        self.extent = extent
        self._cached_blocks = None

    def _flatten(self) -> BlockList:
        return self.base.flatten()

    def _build_ir(self) -> _ir.IRNode:
        return _ir.ir_of(self.base)

    def _struct_key_parts(self) -> tuple:
        return ("resized", self.extent, self.base.struct_key())

    def typemap_signature(self) -> TypeSignature:
        return self.base.typemap_signature()
