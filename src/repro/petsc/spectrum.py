"""Eigenvalue estimation for SPD operators (power iteration).

Chebyshev smoothing/solving needs spectrum bounds; PETSc estimates them
with a few Krylov iterations (``-ksp_chebyshev_esteig``).  Here a plain
power method estimates ``lambda_max``; the smoothing range is then taken as
``[lambda_max / divisor, lambda_max * safety]``, the standard multigrid
smoother recipe (only the upper part of the spectrum must be damped).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.petsc.mat import Operator
from repro.petsc.vec import PETScError, Vec


def estimate_lambda_max(
    op: Operator,
    template: Vec,
    iterations: int = 12,
    seed: int = 7,
) -> Generator:
    """Estimate the largest eigenvalue of an SPD operator by power
    iteration; returns the Rayleigh-quotient estimate."""
    if iterations < 1:
        raise PETScError("need at least one power iteration")
    x = template.duplicate()
    y = template.duplicate()
    rng = np.random.default_rng(seed + template.comm.rank)
    x.local[:] = rng.random(x.local_size) + 0.1
    nrm = yield from x.norm()
    yield from x.scale(1.0 / nrm)
    lam = 0.0
    for _ in range(iterations):
        yield from op.mult(x, y)
        lam = yield from x.dot(y)  # Rayleigh quotient (||x|| = 1)
        nrm = yield from y.norm()
        if nrm == 0.0:
            return 0.0
        x.copy_from(y)
        yield from x.scale(1.0 / nrm)
    return float(lam)


def smoothing_range(
    op: Operator,
    template: Vec,
    divisor: float = 10.0,
    safety: float = 1.05,
    iterations: int = 12,
) -> Generator:
    """(eig_min, eig_max) bounds for a Chebyshev *smoother*: cover the
    upper ``1/divisor`` fraction of the spectrum (PETSc default ~0.1)."""
    lam = yield from estimate_lambda_max(op, template, iterations)
    if lam <= 0:
        raise PETScError(f"nonpositive lambda_max estimate {lam}")
    return lam / divisor, lam * safety
