"""Index sets (PETSc's ``IS``).

An index set names global vector entries.  Three flavours mirror PETSc:
``GeneralIS`` (explicit indices), ``StrideIS`` (first/step/count) and
``BlockIS`` (fixed-size blocks at explicit block starts).  Index sets here
are *replicated*: every rank constructs the same set, which is how the
scatter build avoids a setup communication round (documented substitution --
PETSc distributes its IS, but the communication structure derived from it is
identical).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.petsc.vec import PETScError


class IS:
    """Base index set; concrete sets implement :meth:`indices`."""

    def indices(self) -> np.ndarray:
        """The global indices, in set order, as an int64 array."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __len__(self) -> int:
        return len(self.indices())

    def validate_against(self, global_size: int) -> None:
        idx = self.indices()
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= global_size:
            raise PETScError(
                f"index set touches [{idx.min()}, {idx.max()}] outside a "
                f"global size of {global_size}"
            )


class GeneralIS(IS):
    """Explicit list of global indices (``ISCreateGeneral``)."""

    def __init__(self, indices: Sequence[int]):
        self._indices = np.asarray(indices, dtype=np.int64)
        if self._indices.ndim != 1:
            raise PETScError("indices must be 1-D")

    def indices(self) -> np.ndarray:
        return self._indices


class StrideIS(IS):
    """first, first+step, ... (``ISCreateStride``)."""

    def __init__(self, count: int, first: int = 0, step: int = 1):
        if count < 0:
            raise PETScError(f"negative count {count}")
        if step == 0 and count > 1:
            raise PETScError("zero step")
        self.count = count
        self.first = first
        self.step = step

    def indices(self) -> np.ndarray:
        return self.first + self.step * np.arange(self.count, dtype=np.int64)


class BlockIS(IS):
    """Fixed-size blocks at explicit block starts (``ISCreateBlock``)."""

    def __init__(self, block_size: int, block_starts: Sequence[int]):
        if block_size < 1:
            raise PETScError(f"block size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.block_starts = np.asarray(block_starts, dtype=np.int64)
        if self.block_starts.ndim != 1:
            raise PETScError("block starts must be 1-D")

    def indices(self) -> np.ndarray:
        offs = np.arange(self.block_size, dtype=np.int64)
        return (self.block_starts[:, None] * self.block_size + offs[None, :]).reshape(-1)
