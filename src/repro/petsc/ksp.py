"""Krylov and relaxation solvers (PETSc's ``KSP``).

``CG`` is preconditioned conjugate gradients; ``Richardson`` is damped
stationary iteration (also the smoother building block).  Both are written
against the :class:`repro.petsc.mat.Operator` interface, and each iteration's
reductions (dots, norms) go through the simulated MPI allreduce -- solver
iteration count therefore translates into simulated communication rounds, as
it does in real PETSc runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

import numpy as np

from repro.petsc.mat import Operator
from repro.petsc.vec import PETScError, Vec
from repro.prof import NULL_PROFILER

#: a preconditioner is a generator function pc(residual_vec, z_vec) that
#: leaves M^{-1} r in z
Preconditioner = Callable[[Vec, Vec], Generator]


def _profiler_of(vec: Vec):
    """(profiler, global rank) for the cluster behind ``vec`` (null-safe)."""
    comm = getattr(vec, "comm", None)
    cluster = getattr(comm, "cluster", None)
    if cluster is None:
        return NULL_PROFILER, -1
    return cluster.profiler, comm.grank


@dataclass
class SolveResult:
    """Outcome of a solve."""

    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    def reduction(self) -> float:
        if len(self.residual_norms) < 2 or self.residual_norms[0] == 0:
            return 1.0
        return self.residual_norms[-1] / self.residual_norms[0]


def CG(
    op: Operator,
    b: Vec,
    x: Vec,
    rtol: float = 1e-8,
    atol: float = 0.0,
    maxits: int = 1000,
    pc: Optional[Preconditioner] = None,
    checkpoint: Optional[Any] = None,
) -> Generator:
    """Preconditioned conjugate gradients; solution accumulates into ``x``.

    Returns a :class:`SolveResult`.  The preconditioner must be symmetric
    positive definite (a multigrid V-cycle with symmetric smoothing
    qualifies).

    ``checkpoint`` (a :class:`repro.petsc.checkpoint.SolverCheckpoint`)
    periodically replicates the iterate so a rank failure mid-solve can be
    recovered by shrinking the communicator and restarting warm from the
    last checkpoint; see :mod:`repro.petsc.checkpoint`.
    """
    if maxits < 0 or rtol < 0 or atol < 0:
        raise PETScError("negative tolerance or iteration limit")
    r = b.duplicate()
    z = b.duplicate()
    p = b.duplicate()
    Ap = b.duplicate()

    yield from op.residual(b, x, r)
    norms: List[float] = []
    rnorm = yield from r.norm()
    norms.append(rnorm)
    target = max(atol, rtol * rnorm)
    if rnorm <= target:
        return SolveResult(True, 0, norms)

    if pc is None:
        z.copy_from(r)
    else:
        yield from z.set(0.0)
        yield from pc(r, z)
    p.copy_from(z)
    rz = yield from r.dot(z)

    prof, grank = _profiler_of(b)
    for it in range(1, maxits + 1):
        with prof.span("solver", "ksp_iteration", grank, method="cg", it=it):
            if prof.enabled:
                prof.count("repro_ksp_iterations_total",
                           labels={"method": "cg"})
            yield from op.mult(p, Ap)
            pAp = yield from p.dot(Ap)
            if pAp <= 0:
                raise PETScError(
                    f"operator not positive definite: p.Ap = {pAp} at "
                    f"iteration {it}"
                )
            alpha = rz / pAp
            yield from x.axpy(alpha, p)
            yield from r.axpy(-alpha, Ap)
            rnorm = yield from r.norm()
            norms.append(rnorm)
            if rnorm <= target:
                return SolveResult(True, it, norms)
            if checkpoint is not None:
                yield from checkpoint.maybe_save(x, it)
            if pc is None:
                z.copy_from(r)
            else:
                yield from z.set(0.0)
                yield from pc(r, z)
            rz_new = yield from r.dot(z)
            beta = rz_new / rz
            rz = rz_new
            yield from p.aypx(beta, z)
    return SolveResult(False, maxits, norms)


def GMRES(
    op: Operator,
    b: Vec,
    x: Vec,
    restart: int = 30,
    rtol: float = 1e-8,
    atol: float = 0.0,
    maxits: int = 1000,
    pc: Optional[Preconditioner] = None,
) -> Generator:
    """Restarted GMRES(m) with left preconditioning.

    Arnoldi with modified Gram-Schmidt; the least-squares problem is solved
    incrementally with Givens rotations, so the (preconditioned) residual
    norm is available every iteration without forming the solution.
    """
    if maxits < 0 or restart < 1:
        raise PETScError("invalid restart or iteration limit")

    def apply_pc(src: Vec, dst: Vec) -> Generator:
        if pc is None:
            dst.copy_from(src)
        else:
            yield from dst.set(0.0)
            yield from pc(src, dst)

    w = b.duplicate()
    z = b.duplicate()
    norms: List[float] = []
    target: Optional[float] = None
    total_it = 0
    prof, grank = _profiler_of(b)
    while True:
        # (re)start: r = M^{-1}(b - Ax)
        yield from op.residual(b, x, w)
        yield from apply_pc(w, z)
        beta = yield from z.norm()
        norms.append(beta)
        if target is None:
            target = max(atol, rtol * beta)
        if beta <= target or total_it >= maxits:
            return SolveResult(beta <= target, total_it, norms)
        V: List[Vec] = [b.duplicate()]
        V[0].copy_from(z)
        yield from V[0].scale(1.0 / beta)
        H = np.zeros((restart + 1, restart))
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        g = np.zeros(restart + 1)
        g[0] = beta
        k = 0
        with prof.span("solver", "ksp_cycle", grank, method="gmres") as _cyc:
            while k < restart and total_it < maxits:
                if prof.enabled:
                    prof.count("repro_ksp_iterations_total",
                               labels={"method": "gmres"})
                yield from op.mult(V[k], w)
                yield from apply_pc(w, z)
                # modified Gram-Schmidt
                for i in range(k + 1):
                    H[i, k] = yield from z.dot(V[i])
                    yield from z.axpy(-H[i, k], V[i])
                H[k + 1, k] = yield from z.norm()
                if H[k + 1, k] > 1e-14 * max(1.0, beta):
                    V.append(b.duplicate())
                    V[k + 1].copy_from(z)
                    yield from V[k + 1].scale(1.0 / H[k + 1, k])
                # apply previous Givens rotations to the new column
                for i in range(k):
                    t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                    H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                    H[i, k] = t
                denom = np.hypot(H[k, k], H[k + 1, k])
                cs[k] = H[k, k] / denom if denom else 1.0
                sn[k] = H[k + 1, k] / denom if denom else 0.0
                H[k, k] = denom
                H[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]
                total_it += 1
                k += 1
                norms.append(abs(g[k]))
                if abs(g[k]) <= target or H[k - 1, k - 1] == 0.0:
                    break
            _cyc.attrs["iterations"] = k
        # form the correction: y = H^{-1} g, x += V y
        if k > 0:
            y = np.zeros(k)
            for i in range(k - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1:k] @ y[i + 1:]) / H[i, i]
            for i in range(k):
                yield from x.axpy(float(y[i]), V[i])
        if norms[-1] <= target:
            # recompute the TRUE residual for the final report
            yield from op.residual(b, x, w)
            true_norm = yield from w.norm()
            norms[-1] = true_norm
            if true_norm <= max(target, 10 * target):
                return SolveResult(True, total_it, norms)
        if total_it >= maxits:
            return SolveResult(False, total_it, norms)


def Chebyshev(
    op: Operator,
    b: Vec,
    x: Vec,
    eig_min: float,
    eig_max: float,
    rtol: float = 1e-8,
    atol: float = 0.0,
    maxits: int = 1000,
) -> Generator:
    """Chebyshev iteration for SPD operators with spectrum in
    ``[eig_min, eig_max]``.

    Communication-light (no inner products except the convergence check),
    which is why PETSc favours it as a smoother; here the residual norm is
    checked every iteration for simplicity.
    """
    if eig_min <= 0 or eig_max <= eig_min:
        raise PETScError("need 0 < eig_min < eig_max")
    # Saad, "Iterative Methods for Sparse Linear Systems", Alg. 12.1
    theta = 0.5 * (eig_max + eig_min)
    delta = 0.5 * (eig_max - eig_min)
    sigma1 = theta / delta
    rho = 1.0 / sigma1
    r = b.duplicate()
    d = b.duplicate()
    Ad = b.duplicate()
    norms: List[float] = []
    yield from op.residual(b, x, r)
    rnorm = yield from r.norm()
    norms.append(rnorm)
    target = max(atol, rtol * rnorm)
    if rnorm <= target:
        return SolveResult(True, 0, norms)
    d.copy_from(r)
    yield from d.scale(1.0 / theta)
    prof, grank = _profiler_of(b)
    for it in range(1, maxits + 1):
        with prof.span("solver", "ksp_iteration", grank,
                       method="chebyshev", it=it):
            if prof.enabled:
                prof.count("repro_ksp_iterations_total",
                           labels={"method": "chebyshev"})
            yield from x.axpy(1.0, d)
            yield from op.mult(d, Ad)
            yield from r.axpy(-1.0, Ad)
            rnorm = yield from r.norm()
            norms.append(rnorm)
            if rnorm <= target:
                return SolveResult(True, it, norms)
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            # d = rho_new*rho * d + (2*rho_new/delta) * r
            yield from d.scale(rho_new * rho)
            yield from d.axpy(2.0 * rho_new / delta, r)
            rho = rho_new
    return SolveResult(False, maxits, norms)


def BiCGStab(
    op: Operator,
    b: Vec,
    x: Vec,
    rtol: float = 1e-8,
    atol: float = 0.0,
    maxits: int = 1000,
    pc: Optional[Preconditioner] = None,
) -> Generator:
    """Stabilised bi-conjugate gradients (van der Vorst) for general
    (nonsymmetric) systems: short recurrences, two operator applications
    per iteration -- cheaper in memory than restarted GMRES."""
    if maxits < 0 or rtol < 0 or atol < 0:
        raise PETScError("negative tolerance or iteration limit")

    def apply_pc(src: Vec, dst: Vec) -> Generator:
        if pc is None:
            dst.copy_from(src)
        else:
            yield from dst.set(0.0)
            yield from pc(src, dst)

    r = b.duplicate()
    r0 = b.duplicate()
    p = b.duplicate()
    v = b.duplicate()
    s = b.duplicate()
    t = b.duplicate()
    phat = b.duplicate()
    shat = b.duplicate()

    yield from op.residual(b, x, r)
    r0.copy_from(r)
    norms: List[float] = []
    rnorm = yield from r.norm()
    norms.append(rnorm)
    target = max(atol, rtol * rnorm)
    if rnorm <= target:
        return SolveResult(True, 0, norms)
    rho_old = alpha = omega = 1.0
    yield from v.set(0.0)
    yield from p.set(0.0)
    prof, grank = _profiler_of(b)
    for it in range(1, maxits + 1):
        if prof.enabled:
            prof.count("repro_ksp_iterations_total",
                       labels={"method": "bicgstab"})
        with prof.span("solver", "ksp_iteration", grank,
                       method="bicgstab", it=it):
            rho = yield from r0.dot(r)
            if rho == 0.0:
                return SolveResult(False, it, norms)  # breakdown
            beta = (rho / rho_old) * (alpha / omega)
            # p = r + beta*(p - omega*v)
            yield from p.axpy(-omega, v)
            yield from p.aypx(beta, r)
            yield from apply_pc(p, phat)
            yield from op.mult(phat, v)
            r0v = yield from r0.dot(v)
            if r0v == 0.0:
                return SolveResult(False, it, norms)
            alpha = rho / r0v
            s.copy_from(r)
            yield from s.axpy(-alpha, v)
            snorm = yield from s.norm()
            if snorm <= target:
                yield from x.axpy(alpha, phat)
                norms.append(snorm)
                return SolveResult(True, it, norms)
            yield from apply_pc(s, shat)
            yield from op.mult(shat, t)
            tt = yield from t.dot(t)
            ts = yield from t.dot(s)
            if tt == 0.0:
                return SolveResult(False, it, norms)
            omega = ts / tt
            yield from x.axpy(alpha, phat)
            yield from x.axpy(omega, shat)
            r.copy_from(s)
            yield from r.axpy(-omega, t)
            rnorm = yield from r.norm()
            norms.append(rnorm)
            if rnorm <= target:
                return SolveResult(True, it, norms)
            if omega == 0.0:
                return SolveResult(False, it, norms)
            rho_old = rho
    return SolveResult(False, maxits, norms)


def Richardson(
    op: Operator,
    b: Vec,
    x: Vec,
    omega: float = 1.0,
    rtol: float = 1e-8,
    atol: float = 0.0,
    maxits: int = 1000,
    pc: Optional[Preconditioner] = None,
) -> Generator:
    """Damped (preconditioned) Richardson iteration:
    ``x += omega * M^{-1} (b - A x)``.

    With ``pc`` set to a V-cycle this is the classic "multigrid as a solver"
    loop the paper's application runs.
    """
    if maxits < 0:
        raise PETScError("negative iteration limit")
    r = b.duplicate()
    z = b.duplicate()
    norms: List[float] = []
    prof, grank = _profiler_of(b)
    for it in range(maxits + 1):
        with prof.span("solver", "ksp_iteration", grank,
                       method="richardson", it=it):
            if prof.enabled and it > 0:
                prof.count("repro_ksp_iterations_total",
                           labels={"method": "richardson"})
            yield from op.residual(b, x, r)
            rnorm = yield from r.norm()
            norms.append(rnorm)
            if it == 0:
                target = max(atol, rtol * rnorm)
            if rnorm <= target:
                return SolveResult(True, it, norms)
            if it == maxits:
                break
            if pc is None:
                z.copy_from(r)
            else:
                yield from z.set(0.0)
                yield from pc(r, z)
            yield from x.axpy(omega, z)
    return SolveResult(False, maxits, norms)
