"""DMDA: distributed structured-grid arrays (PETSc's ``DMDA``).

A DMDA partitions a 1/2/3-D grid of points (each carrying ``dof`` interlaced
field values, section 2.1 of the paper) over a cartesian process grid, and
builds the ghost-point communication (Fig. 2) as a :class:`VecScatter`:

- the **global vector** stores each rank's owned box contiguously (PETSc
  ordering), x fastest, dof innermost,
- the **local array** is the owned box plus a ghost halo of ``stencil_width``
  points; ``global_to_local`` fills it (interior copy + neighbour exchange),
- **star stencils** exchange the 2*ndim face slabs; **box stencils** also
  exchange edges and corners (Fig. 3) -- with a box stencil the corner
  messages are much smaller than the face messages, which is precisely the
  nonuniform-volume pattern sections 3.2/4.2.2 analyse.

Everything is computed from the grid geometry every rank already knows, so
building a scatter requires no communication.

Internally all shapes are padded to 3-D ``(z, y, x)``; a 1-D grid is
``(1, 1, M)``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.comm import Comm
from repro.petsc.scatter import VecScatter
from repro.petsc.vec import Layout, PETScError, Vec

Box = Tuple[Tuple[int, int, int], Tuple[int, int, int]]  # (lo, hi) half-open


def dims_create(nranks: int, ndim: int) -> List[int]:
    """Factor ``nranks`` into a balanced ``ndim``-dimensional process grid
    (like ``MPI_Dims_create``); larger factors go to later dimensions."""
    if nranks < 1 or not 1 <= ndim <= 3:
        raise PETScError(f"bad nranks={nranks} or ndim={ndim}")
    dims = [1] * ndim
    remaining = nranks
    factor = 2
    factors: List[int] = []
    while remaining > 1:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return sorted(dims)


def _split(n: int, parts: int) -> List[int]:
    """Balanced ownership sizes of ``n`` points over ``parts`` ranks."""
    base, rem = divmod(n, parts)
    return [base + (1 if p < rem else 0) for p in range(parts)]


class DMDA:
    """A distributed structured grid.

    Parameters
    ----------
    comm:
        rank-bound communicator,
    dims:
        grid points per dimension, e.g. ``(100, 100, 100)``; 1-3 entries
        ordered ``(M,)``, ``(N, M)`` or ``(P, N, M)`` with the *last* entry
        the contiguous (x) dimension,
    dof:
        interlaced field values per grid point,
    stencil:
        ``"star"`` or ``"box"``,
    stencil_width:
        ghost halo width.
    """

    def __init__(
        self,
        comm: Comm,
        dims: Sequence[int],
        dof: int = 1,
        stencil: str = "star",
        stencil_width: int = 1,
        proc_grid: Optional[Sequence[int]] = None,
        periodic: Sequence[bool] | bool = False,
    ):
        if stencil not in ("star", "box"):
            raise PETScError(f"stencil must be 'star' or 'box', got {stencil!r}")
        if dof < 1 or stencil_width < 0:
            raise PETScError("dof must be >= 1 and stencil_width >= 0")
        dims = [int(d) for d in dims]
        if not 1 <= len(dims) <= 3 or any(d < 1 for d in dims):
            raise PETScError(f"bad grid dims {dims}")
        self.comm = comm
        self.ndim = len(dims)
        self.dof = dof
        self.stencil = stencil
        self.width = stencil_width
        # pad to 3-D: (z, y, x)
        self.dims = tuple([1] * (3 - len(dims)) + dims)
        if isinstance(periodic, bool):
            periodic = [periodic] * len(dims)
        periodic = [bool(p) for p in periodic]
        if len(periodic) != len(dims):
            raise PETScError("periodic must have one entry per dimension")
        self.periodic = tuple([False] * (3 - len(dims)) + periodic)
        for d in range(3):
            if self.periodic[d] and self.dims[d] < 2 * stencil_width:
                raise PETScError(
                    f"periodic dim {d} too small for stencil width {stencil_width}"
                )

        if proc_grid is None:
            pg = dims_create(comm.size, self.ndim)
            proc_grid = [1] * (3 - self.ndim) + pg
        else:
            proc_grid = [int(p) for p in proc_grid]
            proc_grid = [1] * (3 - len(proc_grid)) + proc_grid
        if int(np.prod(proc_grid)) != comm.size:
            raise PETScError(
                f"process grid {proc_grid} does not match {comm.size} ranks"
            )
        self.proc_grid = tuple(proc_grid)
        for d in range(3):
            if self.proc_grid[d] > self.dims[d]:
                raise PETScError(
                    f"more ranks than grid points in dim {d}: "
                    f"{self.proc_grid[d]} > {self.dims[d]}"
                )
        # per-dim ownership: starts[d][p] .. starts[d][p+1]
        self._sizes = [_split(self.dims[d], self.proc_grid[d]) for d in range(3)]
        self._starts = [
            np.concatenate(([0], np.cumsum(self._sizes[d]))).astype(np.int64)
            for d in range(3)
        ]
        if self.width > 0:
            min_local = min(min(s) for s in (self._sizes[d] for d in range(3)
                                             if self.proc_grid[d] > 1)) \
                if any(self.proc_grid[d] > 1 for d in range(3)) else self.width
            if min_local < self.width:
                raise PETScError(
                    f"stencil width {self.width} exceeds the smallest local "
                    f"size {min_local}; neighbour-only exchange would miss data"
                )

        # rank <-> process-grid coordinates (x fastest, PETSc ordering)
        pz, py, px = self.proc_grid
        r = comm.rank
        self.proc_coord = (r // (px * py), (r // px) % py, r % px)

        # global vector layout: one contiguous block per rank
        local_counts = []
        for rank in range(comm.size):
            c = self._coords_of(rank)
            n = 1
            for d in range(3):
                n *= self._sizes[d][c[d]]
            local_counts.append(n * dof)
        self.layout = Layout(comm.size, sum(local_counts), local_counts)

        self._g2l_scatter: Optional[VecScatter] = None

    # -- geometry ---------------------------------------------------------------

    def _coords_of(self, rank: int) -> Tuple[int, int, int]:
        pz, py, px = self.proc_grid
        return (rank // (px * py), (rank // px) % py, rank % px)

    def _rank_of(self, coords: Tuple[int, int, int]) -> int:
        pz, py, px = self.proc_grid
        cz, cy, cx = coords
        return (cz * py + cy) * px + cx

    def owned_box(self, rank: Optional[int] = None) -> Box:
        """Half-open natural-coordinate box ``(lo, hi)`` owned by ``rank``."""
        c = self._coords_of(self.comm.rank if rank is None else rank)
        lo = tuple(int(self._starts[d][c[d]]) for d in range(3))
        hi = tuple(int(self._starts[d][c[d] + 1]) for d in range(3))
        return lo, hi

    def ghosted_box(self, rank: Optional[int] = None) -> Box:
        """The owned box grown by the stencil width in every partitionable
        dimension -- *including* past the physical boundary.

        Out-of-domain ghost cells exist in the local array but are never
        written by an exchange; since local arrays start zeroed, they
        realise homogeneous Dirichlet conditions for stencil kernels (and a
        kernel can always shift by the stencil width without bounds checks).
        """
        lo, hi = self.owned_box(rank)
        glo = tuple(
            lo[d] - (self.width if self.dims[d] > 1 else 0) for d in range(3)
        )
        ghi = tuple(
            hi[d] + (self.width if self.dims[d] > 1 else 0) for d in range(3)
        )
        return glo, ghi

    @property
    def local_shape(self) -> Tuple[int, ...]:
        """Owned-box shape (without ghosts), padded to 3-D + dof."""
        lo, hi = self.owned_box()
        shape = tuple(hi[d] - lo[d] for d in range(3))
        return shape + (self.dof,) if self.dof > 1 else shape

    @property
    def ghosted_shape(self) -> Tuple[int, ...]:
        glo, ghi = self.ghosted_box()
        shape = tuple(ghi[d] - glo[d] for d in range(3))
        return shape + (self.dof,) if self.dof > 1 else shape

    def interior_slices(self) -> Tuple[slice, ...]:
        """Slices selecting the owned box inside the ghosted local array."""
        lo, hi = self.owned_box()
        glo, _ = self.ghosted_box()
        sl = tuple(slice(lo[d] - glo[d], hi[d] - glo[d]) for d in range(3))
        return sl + (slice(None),) if self.dof > 1 else sl

    # -- global indexing ----------------------------------------------------------

    def natural_to_global(self, iz, iy, ix, component: int = 0) -> np.ndarray:
        """Global-vector indices of natural grid coordinates (vectorised)."""
        iz = np.asarray(iz, dtype=np.int64)
        iy = np.asarray(iy, dtype=np.int64)
        ix = np.asarray(ix, dtype=np.int64)
        coords = []
        locals_ = []
        for d, arr in zip(range(3), (iz, iy, ix)):
            if arr.size and (arr.min() < 0 or arr.max() >= self.dims[d]):
                raise PETScError(f"natural index out of range in dim {d}")
            c = np.searchsorted(self._starts[d], arr, side="right") - 1
            coords.append(c)
            locals_.append(arr - self._starts[d][c])
        pz, py, px = self.proc_grid
        owner = (coords[0] * py + coords[1]) * px + coords[2]
        # local sizes of the owning rank in each dim
        sz = np.asarray(self._sizes[0], dtype=np.int64)[coords[0]]
        sy = np.asarray(self._sizes[1], dtype=np.int64)[coords[1]]
        sx = np.asarray(self._sizes[2], dtype=np.int64)[coords[2]]
        del sz  # z size does not enter the offset formula
        offset = (locals_[0] * sy + locals_[1]) * sx + locals_[2]
        return self.layout.starts[owner] + offset * self.dof + component

    def _box_offsets_in(self, region: Box, box: Box) -> np.ndarray:
        """Row-major offsets (x fastest, dof innermost) of ``region`` cells
        within the larger ``box`` (both half-open, region inside box)."""
        (rlo, rhi), (blo, bhi) = region, box
        shape = tuple(bhi[d] - blo[d] for d in range(3))
        axes = [
            np.arange(rlo[d] - blo[d], rhi[d] - blo[d], dtype=np.int64)
            for d in range(3)
        ]
        off = (axes[0][:, None, None] * shape[1] + axes[1][None, :, None]) * shape[2] \
            + axes[2][None, None, :]
        off = off.reshape(-1) * self.dof
        if self.dof > 1:
            off = (off[:, None] + np.arange(self.dof, dtype=np.int64)[None, :]).reshape(-1)
        return off

    # -- vectors -----------------------------------------------------------------

    def create_global_vec(self) -> Vec:
        return Vec(self.comm, self.layout)

    def create_local_array(self) -> np.ndarray:
        """The ghosted local array (zeros); boundary ghosts stay untouched
        by exchanges, which realises homogeneous Dirichlet conditions."""
        return np.zeros(self.ghosted_shape)

    def global_array(self, vec: Vec) -> np.ndarray:
        """The rank's owned box of a global vec, viewed as (z, y, x[, dof])."""
        return vec.local.reshape(self.local_shape)

    # -- ghost exchange --------------------------------------------------------------

    def _neighbour_dirs(self):
        if self.stencil == "star":
            for d in range(3):
                for s in (-1, 1):
                    vec = [0, 0, 0]
                    vec[d] = s
                    yield tuple(vec)
        else:
            for vec in itertools.product((-1, 0, 1), repeat=3):
                if vec != (0, 0, 0):
                    yield vec

    def _region_toward(self, base_owned: Box, target_ghosted: Box) -> Optional[Box]:
        """Intersection of an owned box with another rank's ghosted box."""
        (alo, ahi), (blo, bhi) = base_owned, target_ghosted
        lo = tuple(max(alo[d], blo[d]) for d in range(3))
        hi = tuple(min(ahi[d], bhi[d]) for d in range(3))
        if any(lo[d] >= hi[d] for d in range(3)):
            return None
        return lo, hi

    def ghost_scatter(self) -> VecScatter:
        """The global-to-local scatter (built once, cached)."""
        if self._g2l_scatter is not None:
            return self._g2l_scatter
        if self.width == 0:
            send_map: Dict[int, np.ndarray] = {}
            recv_map: Dict[int, np.ndarray] = {}
            extra_local: List[Tuple[np.ndarray, np.ndarray]] = []
        else:
            send_map, recv_map, extra_local = self._halo_maps()
        # interior copy: my owned cells -> centre of my ghosted array
        owned = self.owned_box()
        ghosted = self.ghosted_box()
        src = [self._box_offsets_in(owned, owned)]
        dst = [self._box_offsets_in(owned, ghosted)]
        for s, t in extra_local:  # periodic self-ghosts on 1-wide proc dims
            src.append(s)
            dst.append(t)
        self._g2l_scatter = VecScatter(
            self.comm, send_map, recv_map,
            (np.concatenate(src), np.concatenate(dst)),
        )
        return self._g2l_scatter

    def _wrap_neighbour(self, coords, d):
        """(peer_coords, natural-coordinate shift) for direction ``d``, or
        None when ``d`` crosses a nonperiodic physical boundary.

        The shift translates the peer's owned box so that it abuts this
        rank's box in the (unwrapped) ghost coordinate system.
        """
        nc = []
        shift = []
        for i in range(3):
            c = coords[i] + d[i]
            s = 0
            if c < 0 or c >= self.proc_grid[i]:
                if not self.periodic[i]:
                    return None
                if c < 0:
                    c += self.proc_grid[i]
                    s = -self.dims[i]
                else:
                    c -= self.proc_grid[i]
                    s = self.dims[i]
            nc.append(c)
            shift.append(s)
        return tuple(nc), tuple(shift)

    @staticmethod
    def _shift_box(box: Box, shift) -> Box:
        (lo, hi) = box
        return (
            tuple(lo[d] + shift[d] for d in range(3)),
            tuple(hi[d] + shift[d] for d in range(3)),
        )

    def _halo_maps(self):
        """Per-peer halo exchange offsets.

        For every canonical direction ``d`` this rank both *receives* from
        the peer at ``-d`` (whose data fills the ghost slab on side ``-d``)
        and *sends* to the peer at ``+d``.  Iterating one canonical
        direction list on every rank guarantees sender and receiver append
        matching segments in the same order, including the periodic cases
        where one peer appears for several directions (or is this rank
        itself -- those become extra local copy pairs).
        """
        send_map: Dict[int, np.ndarray] = {}
        recv_map: Dict[int, np.ndarray] = {}
        extra_local: List[Tuple[np.ndarray, np.ndarray]] = []
        my_coords = self.proc_coord
        my_owned = self.owned_box()
        my_ghosted = self.ghosted_box()

        def append(table, peer, offs):
            table[peer] = np.concatenate([table[peer], offs]) \
                if peer in table else offs

        for d in self._neighbour_dirs():
            # --- receive side: the peer in direction -d sends slab d... no:
            # the ghost slab on side d of MY box is owned by the peer at +d.
            hit = self._wrap_neighbour(my_coords, d)
            if hit is not None:
                peer, shift = self._rank_of(hit[0]), hit[1]
                peer_owned_shifted = self._shift_box(self.owned_box(self._rank_of(hit[0])), shift)
                region = self._region_toward(peer_owned_shifted, my_ghosted)
                if region is not None:
                    dst = self._box_offsets_in(region, my_ghosted)
                    if peer == self.comm.rank:
                        src_region = self._shift_box(region, tuple(-s for s in shift))
                        src = self._box_offsets_in(src_region, my_owned)
                        extra_local.append((src, dst))
                    else:
                        append(recv_map, peer, dst)
            # --- send side: my data that lies in the ghost slab on side -d
            # of the peer at direction +d... by symmetry: the peer at +d has
            # ME at direction -d; when it iterates direction d it receives
            # from its +d peer.  To pair with the receiver's iteration of
            # direction d, I must send, at my iteration of d, to the peer at
            # -d (who sees me at +d).
            hit = self._wrap_neighbour(my_coords, tuple(-c for c in d))
            if hit is not None:
                peer, shift = self._rank_of(hit[0]), hit[1]
                if peer == self.comm.rank:
                    continue  # already handled as a local pair above
                peer_ghosted_shifted = self._shift_box(self.ghosted_box(peer), shift)
                region = self._region_toward(my_owned, peer_ghosted_shifted)
                if region is not None:
                    src = self._box_offsets_in(region, my_owned)
                    append(send_map, peer, src)
        return send_map, recv_map, extra_local

    def global_to_local(self, gvec: Vec, larr: np.ndarray,
                        backend: str = "datatype") -> Generator:
        """Fill the ghosted local array from the global vector."""
        if larr.shape != self.ghosted_shape:
            raise PETScError(
                f"local array shape {larr.shape} != ghosted {self.ghosted_shape}"
            )
        scatter = self.ghost_scatter()
        yield from scatter.scatter(gvec.local, larr.reshape(-1), backend=backend)

    def local_to_global(self, larr: np.ndarray, gvec: Vec) -> Generator:
        """Copy the owned interior of the local array back to the global vec
        (a pure local copy, like ``DMLocalToGlobal`` with INSERT_VALUES)."""
        if larr.shape != self.ghosted_shape:
            raise PETScError(
                f"local array shape {larr.shape} != ghosted {self.ghosted_shape}"
            )
        interior = larr[self.interior_slices()]
        gvec.local[:] = interior.reshape(-1)
        yield from self.comm.cpu(
            gvec.local.nbytes * self.comm.cost.copy_byte, "pack"
        )

    def natural_scatter(self) -> "VecScatter":
        """Scatter from this DMDA's global (per-rank block) ordering into
        *natural* row-major ordering over an evenly-split layout
        (``DMDAGlobalToNatural``).  Built once; apply with
        ``scatter(global_vec, natural_vec)`` or reverse it for
        natural-to-global."""
        from repro.petsc.indexset import GeneralIS, StrideIS

        n = self.layout.global_size
        z, y, x = np.meshgrid(
            np.arange(self.dims[0]), np.arange(self.dims[1]),
            np.arange(self.dims[2]), indexing="ij",
        )
        gidx = self.natural_to_global(z.reshape(-1), y.reshape(-1), x.reshape(-1))
        if self.dof > 1:
            gidx = (gidx[:, None] + np.arange(self.dof)[None, :]).reshape(-1)
        natural_layout = Layout(self.comm.size, n)
        return VecScatter.from_index_sets(
            self.comm, self.layout, GeneralIS(gidx),
            natural_layout, StrideIS(n),
        )

    # -- box gathering (multigrid transfers) ---------------------------------------------

    def box_gather_scatter(self, boxes: List[Optional[Box]]) -> VecScatter:
        """Scatter from this DMDA's global vector into per-rank dense boxes.

        ``boxes[r]`` is the natural-coordinate box rank ``r`` wants gathered
        into a dense row-major buffer (or None).  Every rank evaluates the
        full list, so no setup communication is needed.  Used by the
        multigrid restriction ("give me the fine children of my coarse
        cells") and prolongation ("give me the coarse cells around my fine
        box").
        """
        if len(boxes) != self.comm.size:
            raise PETScError("need one box entry per rank")
        rank = self.comm.rank
        my_owned = self.owned_box()
        send_map: Dict[int, np.ndarray] = {}
        recv_map: Dict[int, np.ndarray] = {}
        local_src = np.empty(0, dtype=np.int64)
        local_dst = np.empty(0, dtype=np.int64)
        # receives: owners of the cells in my box
        my_box = boxes[rank]
        if my_box is not None:
            for owner in range(self.comm.size):
                region = self._region_toward(self.owned_box(owner), my_box)
                if region is None:
                    continue
                dst = self._box_offsets_in(region, my_box)
                if owner == rank:
                    local_dst = dst
                    local_src = self._box_offsets_in(region, my_owned)
                else:
                    recv_map[owner] = dst
        # sends: parts of my owned box inside other ranks' requested boxes
        for peer in range(self.comm.size):
            if peer == rank or boxes[peer] is None:
                continue
            region = self._region_toward(my_owned, boxes[peer])
            if region is None:
                continue
            send_map[peer] = self._box_offsets_in(region, my_owned)
        return VecScatter(self.comm, send_map, recv_map, (local_src, local_dst))
