"""Cached assembly communication plans (``VEC_SUBSET_OFF_PROC_ENTRIES``).

A :class:`CommPlan` records the communication pattern one
``Vec.assemble`` discovered -- which global indices this rank sends to
each owner, and how many pairs it receives from each source -- so that
repeated assemblies over the same (or a subset of the same) pattern can
skip discovery entirely and go straight to point-to-point transfers,
PETSc's ``VEC_SUBSET_OFF_PROC_ENTRIES`` optimisation (SNIPPETS.md ex49).

The contract is a *promise*: every rank asserts its future stashes stay
within the recorded pattern.  Under ``add`` mode a strict subset is fine
-- the cached exchange ships the full pattern with zeros for absent
entries, so receive counts never change.  Under ``insert`` mode the
pattern must match exactly (absent entries have no insertable value).
When ranks disagree about the promise -- one rank's pattern changed while
another's did not -- the unguarded reuse path deadlocks, exactly as
PETSc documents; the guarded path (:meth:`repro.petsc.vec.Vec.assemble`)
detects the disagreement with one agree-style reduction and fails
uniformly instead.

This module is pure bookkeeping (no communication, no imports from
:mod:`repro.petsc.vec`); the Vec owns the protocol.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np


def plan_signature(mode: str, send_indices: Dict[int, np.ndarray]) -> int:
    """CRC32 of this rank's send pattern (mode, peers, index lists).

    Rank-local; the Vec folds the per-rank values into one global
    fingerprint with an XOR reduction, so every rank of a commonly
    created plan stores the same number.
    """
    h = zlib.crc32(mode.encode("utf-8"))
    for peer in sorted(send_indices):
        h = zlib.crc32(np.int64(peer).tobytes(), h)
        h = zlib.crc32(np.ascontiguousarray(send_indices[peer]).tobytes(), h)
    return h & 0xFFFFFFFF


class CommPlan:
    """One rank's cached assembly pattern.

    Parameters
    ----------
    mode:
        the assembly mode the plan was created under (``insert``/``add``),
    send_indices:
        ``{owner rank: sorted unique global indices}`` this rank sends,
    recv_counts:
        ``{source rank: number of (index, value) pairs}`` this rank
        receives in a cached exchange,
    ctx:
        the communicator context the plan is bound to,
    nranks:
        communicator size at creation (shrink invalidates),
    fingerprint:
        globally reduced pattern CRC (0 when created unguarded).
    """

    __slots__ = ("mode", "send_indices", "recv_counts", "ctx", "nranks",
                 "fingerprint")

    def __init__(self, mode: str, send_indices: Dict[int, np.ndarray],
                 recv_counts: Dict[int, int], ctx, nranks: int,
                 fingerprint: int = 0):
        self.mode = mode
        self.send_indices = {
            int(p): np.asarray(v, dtype=np.int64) for p, v in send_indices.items()
        }
        self.recv_counts = {int(p): int(c) for p, c in recv_counts.items()}
        self.ctx = ctx
        self.nranks = nranks
        self.fingerprint = fingerprint

    def covers(self, peer: int, indices: np.ndarray) -> bool:
        """Do ``indices`` fall inside the recorded pattern for ``peer``?"""
        recorded = self.send_indices.get(int(peer))
        if recorded is None:
            return False
        return bool(np.isin(indices, recorded).all())

    def conforms(self, stash: Dict[int, List[np.ndarray]], mode: str) -> bool:
        """May the current stash be shipped through this plan?

        Exact pattern match is always fine; a strict subset only under
        ``add`` mode (missing entries contribute zero).
        """
        if stash and mode != self.mode:
            return False
        exact = True
        for peer, blocks in stash.items():
            idx = np.concatenate([b[0] for b in blocks]).astype(np.int64)
            recorded = self.send_indices.get(int(peer))
            if recorded is None or not np.isin(idx, recorded).all():
                return False
            if np.unique(idx).size != recorded.size:
                exact = False
        if len(stash) != len(self.send_indices):
            exact = False
        return exact or self.mode == "add"

    def aligned_values(self, peer: int,
                       blocks: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """The (indices, values) payload of one cached send: the full
        recorded pattern, with the stashed values placed at their index
        positions (``add``: accumulated, absents zero; ``insert``: the
        conforming stash covers every position)."""
        recorded = self.send_indices[int(peer)]
        vals = np.zeros(recorded.size, dtype=np.float64)
        for block in blocks:
            pos = np.searchsorted(recorded, block[0].astype(np.int64))
            if self.mode == "add":
                np.add.at(vals, pos, block[1])
            else:
                vals[pos] = block[1]
        return recorded.astype(np.float64), vals
