"""Matrix-free stencil operators.

PETSc applications typically apply PDE operators through ghosted stencil
kernels rather than assembled matrices; every application here is a ghost
update (communication through ``VecScatter``) followed by a vectorised local
stencil (computation charged as flop time).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.petsc.dmda import DMDA
from repro.petsc.vec import PETScError, Vec


class Operator:
    """A linear operator on the vectors of one DMDA."""

    def mult(self, x: Vec, y: Vec) -> Generator:
        """y = A x"""
        raise NotImplementedError  # pragma: no cover - abstract

    def residual(self, b: Vec, x: Vec, r: Vec) -> Generator:
        """r = b - A x"""
        yield from self.mult(x, r)
        r.local *= -1.0
        r.local += b.local
        yield from r._flops(2.0)


class Laplacian(Operator):
    """The (2*ndim+1)-point negative Laplacian ``A = -lap`` on a DMDA with
    homogeneous Dirichlet boundaries.

    Grid spacing is ``1/dims[d]`` per dimension (unit domain, cell-centred);
    boundary conditions enter through the zero ghost ring that
    ``DMDA.create_local_array`` provides and exchanges never overwrite.
    """

    #: flops charged per grid point per application
    FLOPS_PER_POINT = 8

    def __init__(self, da: DMDA, backend: str = "datatype"):
        if da.dof != 1:
            raise PETScError("Laplacian expects one degree of freedom")
        if da.width < 1:
            raise PETScError("Laplacian needs a ghost ring (stencil_width >= 1)")
        self.da = da
        self.backend = backend
        self._lbuf = da.create_local_array()
        d = da.dims
        self.inv_h2 = tuple(
            (float(d[i]) ** 2 if d[i] > 1 else 0.0) for i in range(3)
        )
        self.diag = 2.0 * sum(self.inv_h2)

    def _apply_boundary(self, u: np.ndarray) -> None:
        """Reflective Dirichlet ghosts: u(-h/2) = -u(h/2) puts the zero
        exactly on the cell face, keeping the discretisation second order."""
        da = self.da
        lo, hi = da.owned_box()
        iz, iy, ix = da.interior_slices()[:3]
        interior = (iz, iy, ix)
        for d in range(3):
            if not self.inv_h2[d]:
                continue
            sl_ghost = list(interior)
            sl_mirror = list(interior)
            if lo[d] == 0:
                sl_ghost[d] = interior[d].start - 1
                sl_mirror[d] = interior[d].start
                u[tuple(sl_ghost)] = -u[tuple(sl_mirror)]
            if hi[d] == da.dims[d]:
                sl_ghost[d] = interior[d].stop
                sl_mirror[d] = interior[d].stop - 1
                u[tuple(sl_ghost)] = -u[tuple(sl_mirror)]

    def mult(self, x: Vec, y: Vec) -> Generator:
        da = self.da
        yield from da.global_to_local(x, self._lbuf, backend=self.backend)
        u = self._lbuf
        self._apply_boundary(u)
        core = u[da.interior_slices()]
        out = np.multiply(core, self.diag)
        iz, iy, ix = da.interior_slices()[:3]

        def shifted(dz, dy, dx):
            return u[
                slice(iz.start + dz, iz.stop + dz),
                slice(iy.start + dy, iy.stop + dy),
                slice(ix.start + dx, ix.stop + dx),
            ]

        kz, ky, kx = self.inv_h2
        if kz:
            out -= kz * (shifted(-1, 0, 0) + shifted(1, 0, 0))
        if ky:
            out -= ky * (shifted(0, -1, 0) + shifted(0, 1, 0))
        if kx:
            out -= kx * (shifted(0, 0, -1) + shifted(0, 0, 1))
        y.local[:] = out.reshape(-1)
        yield from self.da.comm.cpu(
            out.size * self.da.comm.cost.flop * self.FLOPS_PER_POINT
        )
