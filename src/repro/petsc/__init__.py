"""A PETSc-like toolkit on top of the simulated MPI library.

Implements the abstractions the paper's evaluation exercises (section 2):

- :mod:`repro.petsc.vec` -- distributed vectors (``Vec``) and ownership
  layouts,
- :mod:`repro.petsc.indexset` -- index sets (``IS``): general, strided,
  blocked,
- :mod:`repro.petsc.scatter` -- ``VecScatter`` with the paper's three
  communication paths: *hand-tuned* explicit pack + point-to-point (PETSc's
  default), and *MPI datatypes + collectives* (``Alltoallw`` with
  ``Indexed`` types) running over either the baseline or the optimised MPI
  configuration,
- :mod:`repro.petsc.dmda` -- distributed structured-grid arrays (``DMDA``)
  in 1/2/3-D with star/box stencils, interlaced dof and ghost updates,
- :mod:`repro.petsc.mat` -- matrix-free stencil operators (Laplacian),
- :mod:`repro.petsc.ksp` -- Krylov/relaxation solvers (CG, Richardson),
- :mod:`repro.petsc.mg` -- geometric multigrid (the 3-D Laplacian solver
  application of section 5.5 builds on this).
"""

from repro.petsc.commplan import CommPlan
from repro.petsc.vec import Layout, PETScError, PlanMismatchError, Vec
from repro.petsc.indexset import IS, BlockIS, GeneralIS, StrideIS
from repro.petsc.scatter import VecScatter
from repro.petsc.dmda import DMDA
from repro.petsc.mat import Laplacian, Operator
from repro.petsc.aij import AIJMat
from repro.petsc.checkpoint import SolverCheckpoint
from repro.petsc.ksp import BiCGStab, CG, GMRES, Chebyshev, Richardson, SolveResult
from repro.petsc.pc import BlockJacobiPC, JacobiPC
from repro.petsc.mg import MGSolver
from repro.petsc.snes import NewtonKrylov, SNESResult
from repro.petsc.ts import backward_euler, explicit_euler, rk4

__all__ = [
    "AIJMat",
    "BiCGStab",
    "BlockJacobiPC",
    "CG",
    "Chebyshev",
    "CommPlan",
    "DMDA",
    "GMRES",
    "IS",
    "BlockIS",
    "GeneralIS",
    "JacobiPC",
    "Laplacian",
    "Layout",
    "MGSolver",
    "NewtonKrylov",
    "Operator",
    "PETScError",
    "PlanMismatchError",
    "Richardson",
    "SNESResult",
    "SolveResult",
    "SolverCheckpoint",
    "StrideIS",
    "Vec",
    "VecScatter",
    "backward_euler",
    "explicit_euler",
    "rk4",
]
