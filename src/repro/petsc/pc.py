"""Preconditioners (PETSc's ``PC``): Jacobi and block Jacobi.

A preconditioner here is any generator function ``pc(r, z)`` leaving an
approximation of ``A^{-1} r`` in ``z`` (see :mod:`repro.petsc.ksp`).  These
classes are callables with that signature:

- :class:`JacobiPC`: pointwise scaling by the operator's diagonal,
- :class:`BlockJacobiPC`: exact (sparse-direct) solves with each rank's
  local diagonal block -- PETSc's default parallel preconditioner shape
  (block Jacobi with a local direct/ILU solve), communication-free per
  application.
"""

from __future__ import annotations

from typing import Generator

import numpy as np
import scipy.sparse.linalg as spla

from repro.petsc.aij import AIJMat
from repro.petsc.mat import Laplacian, Operator
from repro.petsc.vec import PETScError, Vec


def operator_diagonal(op: Operator, out: Vec) -> None:
    """Fill ``out`` with the diagonal of ``op`` (supported operators only)."""
    if isinstance(op, AIJMat):
        if op.diag is None:
            raise PETScError("matrix not assembled")
        if op.rows != op.cols:
            raise PETScError("diagonal of a non-square matrix")
        out.local[:] = op.diag.diagonal()
        return
    if isinstance(op, Laplacian):
        da = op.da
        lo, hi = da.owned_box()
        diag = np.full(tuple(hi[d] - lo[d] for d in range(3)), op.diag)
        # boundary cells: the reflective Dirichlet ghost adds +1/h^2 per
        # physical face (see Laplacian._apply_boundary)
        for d in range(3):
            k = op.inv_h2[d]
            if not k:
                continue
            sl_lo = [slice(None)] * 3
            sl_hi = [slice(None)] * 3
            if lo[d] == 0:
                sl_lo[d] = 0
                diag[tuple(sl_lo)] += k
            if hi[d] == da.dims[d]:
                sl_hi[d] = -1
                diag[tuple(sl_hi)] += k
        out.local[:] = diag.reshape(-1)
        return
    raise PETScError(f"cannot extract diagonal of {type(op).__name__}")


class JacobiPC:
    """z = r / diag(A)."""

    def __init__(self, op: Operator, template: Vec):
        self._inv_diag = template.duplicate()
        operator_diagonal(op, self._inv_diag)
        if np.any(self._inv_diag.local == 0.0):
            raise PETScError("zero on the operator diagonal")
        self._inv_diag.local[:] = 1.0 / self._inv_diag.local

    def __call__(self, r: Vec, z: Vec) -> Generator:
        np.multiply(r.local, self._inv_diag.local, out=z.local)
        yield from z._flops()


class BlockJacobiPC:
    """z = blockdiag(A)^{-1} r with exact local LU solves (AIJ only)."""

    def __init__(self, op: AIJMat):
        if not isinstance(op, AIJMat):
            raise PETScError("BlockJacobiPC needs an assembled AIJMat")
        if op.diag is None:
            raise PETScError("matrix not assembled")
        block = op.diag.tocsc()
        if block.shape[0] != block.shape[1]:
            raise PETScError("local diagonal block is not square")
        self.comm = op.comm
        self._n = block.shape[0]
        self._lu = spla.splu(block) if self._n else None
        #: nominal factor/solve costs: ~nnz of the factorisation
        self._solve_cost = 4.0 * (op.diag.nnz + self._n) * self.comm.cost.flop

    def __call__(self, r: Vec, z: Vec) -> Generator:
        if self._lu is not None:
            z.local[:] = self._lu.solve(r.local)
        yield from self.comm.cpu(self._solve_cost)
