"""Distributed sparse matrices in AIJ (CSR) format (PETSc's ``MatAIJ``).

Rows are partitioned by a :class:`repro.petsc.vec.Layout`.  Any rank may set
any entry; off-rank entries are *stashed* and shipped to their owners during
:meth:`AIJMat.assemble`, exactly like PETSc's ``MatSetValues`` /
``MatAssemblyBegin/End`` protocol.

After assembly each rank holds two local CSR blocks, as PETSc does:

- the **diagonal block** (columns this rank owns): applied against the
  local part of ``x`` directly,
- the **off-diagonal block** (remote columns, compressed to the rank's
  ``garray`` of needed global columns): applied against ghost values
  gathered through a :class:`repro.petsc.scatter.VecScatter`.

So every ``mult`` is a nonuniform, noncontiguous neighbour communication --
the same pattern the paper studies -- followed by two local SpMVs
(scipy.sparse does the flops; simulated time is charged per nonzero).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.mpi.comm import Comm
from repro.mpi.collectives.basic import _tag_window
from repro.mpi.request import Request
from repro.petsc.mat import Operator
from repro.petsc.scatter import VecScatter
from repro.petsc.vec import Layout, PETScError, Vec

#: flops charged per stored nonzero per multiply (one mul + one add)
FLOPS_PER_NNZ = 2.0


class AIJMat(Operator):
    """A distributed CSR matrix.

    >>> A = AIJMat(comm, Layout(comm.size, n))
    >>> A.set_values(rows, cols, vals)         # any rank, any rows
    >>> yield from A.assemble(backend="datatype")
    >>> yield from A.mult(x, y)                # y = A x
    """

    def __init__(self, comm: Comm, row_layout: Layout,
                 col_layout: Optional[Layout] = None):
        self.comm = comm
        self.rows = row_layout
        self.cols = col_layout or row_layout
        if self.rows.nranks != comm.size or self.cols.nranks != comm.size:
            raise PETScError("layout rank count mismatch")
        # COO staging: local triples plus per-owner stashes
        self._coo_i: List[np.ndarray] = []
        self._coo_j: List[np.ndarray] = []
        self._coo_v: List[np.ndarray] = []
        self._stash: Dict[int, List[np.ndarray]] = {}
        self._assembled = False
        self._insert_mode: Optional[str] = None
        # post-assembly state
        self.diag: Optional[sp.csr_matrix] = None
        self.offdiag: Optional[sp.csr_matrix] = None
        self.garray: Optional[np.ndarray] = None
        self._gather: Optional[VecScatter] = None
        self._lvec: Optional[np.ndarray] = None
        self.backend = "datatype"

    # -- entry staging -------------------------------------------------------

    def set_values(self, rows: Sequence[int], cols: Sequence[int],
                   vals: Sequence[float], mode: str = "add") -> None:
        """Stage entries; duplicate (row, col) pairs accumulate when
        ``mode='add'`` (the only supported mode, as in FEM assembly)."""
        if self._assembled:
            raise PETScError("matrix already assembled")
        if mode != "add":
            raise PETScError("only mode='add' is supported")
        i = np.asarray(rows, dtype=np.int64).reshape(-1)
        j = np.asarray(cols, dtype=np.int64).reshape(-1)
        v = np.asarray(vals, dtype=np.float64).reshape(-1)
        if not (i.shape == j.shape == v.shape):
            raise PETScError("rows/cols/vals must have equal lengths")
        if i.size == 0:
            return
        if i.min() < 0 or i.max() >= self.rows.global_size:
            raise PETScError("row index out of range")
        if j.min() < 0 or j.max() >= self.cols.global_size:
            raise PETScError("column index out of range")
        owner = self.rows.owners(i)
        mine = owner == self.comm.rank
        if np.any(mine):
            self._coo_i.append(i[mine])
            self._coo_j.append(j[mine])
            self._coo_v.append(v[mine])
        for peer in np.unique(owner[~mine]):
            sel = owner == peer
            triple = np.stack(
                [i[sel].astype(np.float64), j[sel].astype(np.float64), v[sel]]
            )
            self._stash.setdefault(int(peer), []).append(triple)

    def set_value(self, row: int, col: int, val: float) -> None:
        self.set_values([row], [col], [val])

    # -- assembly --------------------------------------------------------------

    def assemble(self, backend: str = "datatype") -> Generator:
        """Ship stashed entries to their owners, build the CSR blocks and
        the ghost-column gather scatter."""
        if self._assembled:
            raise PETScError("matrix already assembled")
        comm = self.comm
        self.backend = backend
        base = _tag_window(comm, op="aij_assembly")

        # exchange stash sizes (entries destined for each rank)
        out_counts = np.zeros(comm.size)
        for peer, triples in self._stash.items():
            out_counts[peer] = sum(t.shape[1] for t in triples)
        in_counts = np.zeros(comm.size)
        yield from comm.alltoall(out_counts, in_counts, 1)

        # ship the triples
        requests: List[Request] = []
        incoming: List[Tuple[int, np.ndarray]] = []
        for peer in range(comm.size):
            n_in = int(in_counts[peer])
            if n_in and peer != comm.rank:
                buf = np.empty(3 * n_in)
                incoming.append((peer, buf))
                requests.append(comm.irecv(buf, peer, base))
        for peer, triples in sorted(self._stash.items()):
            # concatenate the (3, n_k) stash blocks into one (3, n) payload
            stacked = np.hstack(triples)
            requests.append(
                (yield from comm.isend(np.ascontiguousarray(stacked.reshape(-1)),
                                       peer, base))
            )
        yield from Request.waitall(requests)
        for _peer, buf in incoming:
            t = buf.reshape(3, -1)
            self._coo_i.append(t[0].astype(np.int64))
            self._coo_j.append(t[1].astype(np.int64))
            self._coo_v.append(t[2])
        self._stash.clear()

        # build local CSR blocks
        nlocal = self.rows.local_size(comm.rank)
        row_start = self.rows.start(comm.rank)
        col_start = self.cols.start(comm.rank)
        col_end = self.cols.end(comm.rank)
        if self._coo_i:
            i = np.concatenate(self._coo_i) - row_start
            j = np.concatenate(self._coo_j)
            v = np.concatenate(self._coo_v)
        else:
            i = np.empty(0, dtype=np.int64)
            j = np.empty(0, dtype=np.int64)
            v = np.empty(0)
        self._coo_i = self._coo_j = self._coo_v = []
        local_cols = (j >= col_start) & (j < col_end)
        ncols_local = col_end - col_start
        self.diag = sp.csr_matrix(
            (v[local_cols], (i[local_cols], j[local_cols] - col_start)),
            shape=(nlocal, ncols_local),
        )
        self.garray = np.unique(j[~local_cols])
        cmap = {int(g): k for k, g in enumerate(self.garray)}
        jr = np.array([cmap[int(c)] for c in j[~local_cols]], dtype=np.int64)
        self.offdiag = sp.csr_matrix(
            (v[~local_cols], (i[~local_cols], jr)),
            shape=(nlocal, len(self.garray)),
        )
        self._lvec = np.zeros(len(self.garray))

        # charge assembly CPU: sorting/merging the received entries
        yield from comm.cpu(
            (self.diag.nnz + self.offdiag.nnz) * 20e-9, "compute"
        )
        yield from self._build_gather(base)
        self._assembled = True

    def _build_gather(self, base: int) -> Generator:
        """Set up the ghost-column gather: tell each owner which of its
        entries this rank needs (a real setup round-trip, as in PETSc)."""
        comm = self.comm
        owner = self.cols.owners(self.garray) if len(self.garray) else \
            np.empty(0, dtype=np.int64)
        recv_map: Dict[int, np.ndarray] = {}
        local_pairs = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        want: Dict[int, np.ndarray] = {}
        positions = np.arange(len(self.garray), dtype=np.int64)
        for peer in np.unique(owner):
            sel = owner == peer
            if int(peer) == comm.rank:
                local_pairs = (
                    self.cols.to_local(self.garray[sel], comm.rank),
                    positions[sel],
                )
            else:
                want[int(peer)] = self.garray[sel]
                recv_map[int(peer)] = positions[sel]
        # counts, then index lists
        out_counts = np.zeros(comm.size)
        for peer, ids in want.items():
            out_counts[peer] = len(ids)
        in_counts = np.zeros(comm.size)
        yield from comm.alltoall(out_counts, in_counts, 1)
        requests: List[Request] = []
        incoming: List[Tuple[int, np.ndarray]] = []
        for peer in range(comm.size):
            n_in = int(in_counts[peer])
            if n_in and peer != comm.rank:
                buf = np.empty(n_in)
                incoming.append((peer, buf))
                requests.append(comm.irecv(buf, peer, base + 8))
        for peer, ids in sorted(want.items()):
            requests.append(
                (yield from comm.isend(ids.astype(np.float64), peer, base + 8))
            )
        yield from Request.waitall(requests)
        send_map: Dict[int, np.ndarray] = {}
        for peer, buf in incoming:
            send_map[peer] = self.cols.to_local(buf.astype(np.int64), comm.rank)
        self._gather = VecScatter(comm, send_map, recv_map, local_pairs)

    # -- application --------------------------------------------------------------

    @property
    def nnz(self) -> int:
        if not self._assembled:
            raise PETScError("matrix not assembled")
        return int(self.diag.nnz + self.offdiag.nnz)

    def mult(self, x: Vec, y: Vec) -> Generator:
        """y = A x (ghost-column gather + two local SpMVs)."""
        if not self._assembled:
            raise PETScError("matrix not assembled")
        if x.layout != self.cols or y.layout != self.rows:
            raise PETScError("vector layouts do not match the matrix")
        comm = self.comm
        yield from self._gather.scatter(x.local, self._lvec, backend=self.backend)
        result = self.diag @ x.local
        if self.offdiag.nnz:
            result += self.offdiag @ self._lvec
        y.local[:] = result
        yield from comm.cpu(self.nnz * comm.cost.flop * FLOPS_PER_NNZ)

    def mult_transpose(self, x: Vec, y: Vec) -> Generator:
        """y = A^T x: local transposed SpMVs plus a reverse (ADD) scatter of
        the off-diagonal contributions back to their column owners."""
        if not self._assembled:
            raise PETScError("matrix not assembled")
        if x.layout != self.rows or y.layout != self.cols:
            raise PETScError("vector layouts do not match the transpose")
        comm = self.comm
        y.local[:] = self.diag.T @ x.local
        if len(self.garray):
            ghost_contrib = self.offdiag.T @ x.local
            # reverse scatter: ghost slots accumulate into their owners
            yield from self._gather.reversed().scatter(
                ghost_contrib, y.local, backend=self.backend, mode="add"
            )
        yield from comm.cpu(self.nnz * comm.cost.flop * FLOPS_PER_NNZ)

    def scale(self, alpha: float) -> None:
        """A *= alpha (local operation)."""
        if not self._assembled:
            raise PETScError("matrix not assembled")
        self.diag *= alpha
        self.offdiag *= alpha

    def shift(self, alpha: float) -> None:
        """A += alpha I (square matrices with matching layouts only)."""
        if not self._assembled:
            raise PETScError("matrix not assembled")
        if self.rows != self.cols:
            raise PETScError("shift of a non-square matrix")
        n = self.diag.shape[0]
        self.diag = (self.diag + alpha * sp.eye(n, format="csr")).tocsr()

    def norm_frobenius(self) -> Generator:
        """The global Frobenius norm (one allreduce)."""
        if not self._assembled:
            raise PETScError("matrix not assembled")
        partial = float((self.diag.data**2).sum() + (self.offdiag.data**2).sum())
        total = yield from self.comm.allreduce(partial)
        return float(np.sqrt(total))
