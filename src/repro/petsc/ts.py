"""TS: time-stepping methods (the top layer of the paper's Fig. 1).

Integrates ``u_t = G(u)`` where ``G`` is a user generator callback (it may
communicate, e.g. a ghosted stencil):

- ``explicit_euler`` and ``rk4``: explicit single/multi-stage steps,
- ``backward_euler``: implicit step solved with the matrix-free
  Newton-Krylov SNES -- each step solves ``u_{n+1} - dt G(u_{n+1}) = u_n``.

Each method returns the number of steps taken; monitors can observe the
state between steps.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.petsc.snes import NewtonKrylov, SNESResult
from repro.petsc.vec import PETScError, Vec

#: rhs callback: fn(u, g) -> generator, leaves G(u) in g
RHSFn = Callable[[Vec, Vec], Generator]
Monitor = Callable[[int, float, Vec], None]


def explicit_euler(
    rhs: RHSFn, u: Vec, dt: float, steps: int,
    monitor: Optional[Monitor] = None,
) -> Generator:
    """u += dt G(u), ``steps`` times."""
    if dt <= 0 or steps < 0:
        raise PETScError("need dt > 0 and steps >= 0")
    g = u.duplicate()
    for n in range(steps):
        yield from rhs(u, g)
        yield from u.axpy(dt, g)
        if monitor is not None:
            monitor(n + 1, (n + 1) * dt, u)
    return steps


def rk4(
    rhs: RHSFn, u: Vec, dt: float, steps: int,
    monitor: Optional[Monitor] = None,
) -> Generator:
    """Classic fourth-order Runge-Kutta."""
    if dt <= 0 or steps < 0:
        raise PETScError("need dt > 0 and steps >= 0")
    k1 = u.duplicate()
    k2 = u.duplicate()
    k3 = u.duplicate()
    k4 = u.duplicate()
    stage = u.duplicate()
    for n in range(steps):
        yield from rhs(u, k1)
        stage.copy_from(u)
        yield from stage.axpy(dt / 2.0, k1)
        yield from rhs(stage, k2)
        stage.copy_from(u)
        yield from stage.axpy(dt / 2.0, k2)
        yield from rhs(stage, k3)
        stage.copy_from(u)
        yield from stage.axpy(dt, k3)
        yield from rhs(stage, k4)
        yield from u.axpy(dt / 6.0, k1)
        yield from u.axpy(dt / 3.0, k2)
        yield from u.axpy(dt / 3.0, k3)
        yield from u.axpy(dt / 6.0, k4)
        if monitor is not None:
            monitor(n + 1, (n + 1) * dt, u)
    return steps


def backward_euler(
    rhs: RHSFn, u: Vec, dt: float, steps: int,
    snes_rtol: float = 1e-8,
    monitor: Optional[Monitor] = None,
) -> Generator:
    """Implicit Euler: solve ``w - dt G(w) - u_n = 0`` for each step."""
    if dt <= 0 or steps < 0:
        raise PETScError("need dt > 0 and steps >= 0")
    u_n = u.duplicate()
    gbuf = u.duplicate()

    for n in range(steps):
        u_n.copy_from(u)

        def implicit_residual(w: Vec, f: Vec) -> Generator:
            yield from rhs(w, gbuf)
            # f = w - dt*G(w) - u_n
            f.copy_from(w)
            yield from f.axpy(-dt, gbuf)
            yield from f.axpy(-1.0, u_n)

        result: SNESResult = yield from NewtonKrylov(
            implicit_residual, u, rtol=snes_rtol, maxits=30
        )
        if not result.converged:
            raise PETScError(
                f"implicit step {n + 1} failed to converge "
                f"(residual {result.final_residual:.2e})"
            )
        if monitor is not None:
            monitor(n + 1, (n + 1) * dt, u)
    return steps
