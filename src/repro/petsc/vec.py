"""Distributed vectors and ownership layouts.

A :class:`Layout` splits a global index range into per-rank contiguous
ownership blocks (PETSc's ``PetscLayout``).  A :class:`Vec` is the rank-local
view of a distributed vector: a numpy array of the locally owned entries
plus generator methods for the collective operations (dot, norm, ...).

Local arithmetic charges flop time on the owning rank's CPU; reductions go
through ``allreduce``.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.mpi.comm import Comm


class PETScError(RuntimeError):
    """Invalid use of the toolkit."""


class Layout:
    """Contiguous ownership ranges of a global vector across ranks."""

    def __init__(self, nranks: int, global_size: int,
                 local_sizes: Optional[Sequence[int]] = None):
        if global_size < 0:
            raise PETScError(f"negative global size {global_size}")
        self.nranks = nranks
        self.global_size = global_size
        if local_sizes is None:
            base, rem = divmod(global_size, nranks)
            local_sizes = [base + (1 if r < rem else 0) for r in range(nranks)]
        local_sizes = [int(s) for s in local_sizes]
        if len(local_sizes) != nranks:
            raise PETScError("local_sizes must have one entry per rank")
        if sum(local_sizes) != global_size:
            raise PETScError(
                f"local sizes sum to {sum(local_sizes)}, global is {global_size}"
            )
        self.local_sizes = local_sizes
        self.starts = np.concatenate(([0], np.cumsum(local_sizes))).astype(np.int64)

    def local_size(self, rank: int) -> int:
        return self.local_sizes[rank]

    def start(self, rank: int) -> int:
        return int(self.starts[rank])

    def end(self, rank: int) -> int:
        return int(self.starts[rank + 1])

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        """Owning rank of each global index (vectorised)."""
        idx = np.asarray(global_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.global_size):
            raise PETScError("global index out of range")
        return np.searchsorted(self.starts, idx, side="right") - 1

    def to_local(self, global_indices: np.ndarray, rank: int) -> np.ndarray:
        """Local offsets (on ``rank``) of global indices owned by it."""
        idx = np.asarray(global_indices, dtype=np.int64)
        return idx - self.starts[rank]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Layout)
            and self.global_size == other.global_size
            and self.local_sizes == other.local_sizes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout(global={self.global_size}, ranks={self.nranks})"


class Vec:
    """The rank-local part of a distributed vector.

    Create one per rank inside the rank's generator::

        layout = Layout(comm.size, n)
        x = Vec(comm, layout)
        x.local[:] = ...
        norm = yield from x.norm()
    """

    def __init__(self, comm: Comm, layout: Layout,
                 array: Optional[np.ndarray] = None):
        self.comm = comm
        self.layout = layout
        n = layout.local_size(comm.rank)
        if array is None:
            self.local = np.zeros(n)
        else:
            array = np.asarray(array, dtype=np.float64)
            if array.shape != (n,):
                raise PETScError(f"array shape {array.shape} != local size {n}")
            self.local = array

    # -- local metadata ------------------------------------------------------

    @property
    def local_size(self) -> int:
        return self.local.size

    @property
    def global_size(self) -> int:
        return self.layout.global_size

    @property
    def owned_range(self) -> tuple[int, int]:
        return self.layout.start(self.comm.rank), self.layout.end(self.comm.rank)

    def duplicate(self) -> "Vec":
        return Vec(self.comm, self.layout)

    def copy_from(self, other: "Vec") -> None:
        self._check_compatible(other)
        self.local[:] = other.local

    def _check_compatible(self, other: "Vec") -> None:
        if self.layout != other.layout:
            raise PETScError("vectors have different layouts")

    # -- local arithmetic (charges flop time) -----------------------------------

    def _flops(self, per_entry: float = 1.0) -> Generator:
        yield from self.comm.cpu(self.local.size * self.comm.cost.flop * per_entry)

    def set(self, alpha: float) -> Generator:
        self.local[:] = alpha
        yield from self._flops()

    def scale(self, alpha: float) -> Generator:
        self.local *= alpha
        yield from self._flops()

    def axpy(self, alpha: float, x: "Vec") -> Generator:
        """self += alpha * x"""
        self._check_compatible(x)
        self.local += alpha * x.local
        yield from self._flops(2.0)

    def aypx(self, alpha: float, x: "Vec") -> Generator:
        """self = alpha * self + x"""
        self._check_compatible(x)
        self.local *= alpha
        self.local += x.local
        yield from self._flops(2.0)

    def waxpy(self, alpha: float, x: "Vec", y: "Vec") -> Generator:
        """self = alpha * x + y"""
        self._check_compatible(x)
        self._check_compatible(y)
        np.multiply(x.local, alpha, out=self.local)
        self.local += y.local
        yield from self._flops(2.0)

    def pointwise_mult(self, x: "Vec", y: "Vec") -> Generator:
        self._check_compatible(x)
        self._check_compatible(y)
        np.multiply(x.local, y.local, out=self.local)
        yield from self._flops()

    # -- reductions -------------------------------------------------------------

    def dot(self, other: "Vec") -> Generator:
        self._check_compatible(other)
        partial = float(self.local @ other.local)
        yield from self._flops(2.0)
        result = yield from self.comm.allreduce(partial)
        return result

    def norm(self, kind: str = "2") -> Generator:
        """Vector norm: ``"2"`` (default), ``"1"`` or ``"inf"``."""
        if kind == "2":
            sq = yield from self.dot(self)
            return float(np.sqrt(sq))
        if kind == "1":
            partial = float(np.abs(self.local).sum())
            yield from self._flops()
            result = yield from self.comm.allreduce(partial)
            return result
        if kind == "inf":
            partial = float(np.abs(self.local).max()) if self.local.size else 0.0
            yield from self._flops()
            result = yield from self.comm.allreduce(partial, op=max)
            return result
        raise PETScError(f"unknown norm kind {kind!r}")

    def sum(self) -> Generator:
        partial = float(self.local.sum())
        yield from self._flops()
        result = yield from self.comm.allreduce(partial)
        return result

    def max(self) -> Generator:
        partial = float(self.local.max()) if self.local.size else -np.inf
        yield from self._flops()
        result = yield from self.comm.allreduce(partial, op=max)
        return result

    def min(self) -> Generator:
        partial = float(self.local.min()) if self.local.size else np.inf
        yield from self._flops()
        result = yield from self.comm.allreduce(partial, op=min)
        return result

    def save(self, filename: str) -> Generator:
        """Write the vector to a shared file in global order (collective,
        like binary ``VecView``): each rank writes its owned block at its
        layout offset through MPI-IO."""
        from repro.mpi.io import File

        fh = yield from File.open(self.comm, filename)
        fh.set_view(self.layout.start(self.comm.rank) * 8)
        yield from fh.write_all(self.local)
        yield from fh.close()

    def load(self, filename: str) -> Generator:
        """Fill the vector from a file written by :meth:`save` (collective);
        the loading layout may differ from the saving one."""
        from repro.mpi.io import File

        fh = yield from File.open(self.comm, filename)
        fh.set_view(self.layout.start(self.comm.rank) * 8)
        yield from fh.read_all(self.local)
        yield from fh.close()

    def gather_to_all(self) -> Generator:
        """Assemble the full global vector on every rank
        (``VecScatterCreateToAll``): one ``MPI_Allgatherv`` whose per-rank
        counts are the local sizes -- with an unbalanced layout this is
        exactly the nonuniform-volume collective of paper section 4.2.1."""
        out = np.zeros(self.global_size)
        yield from self.comm.allgatherv(
            self.local, out, self.layout.local_sizes
        )
        return out

    # -- global entry setting (VecSetValues / VecAssembly) -----------------------

    def set_values(self, indices, values, mode: str = "insert") -> None:
        """Stage entries by *global* index from any rank (``VecSetValues``).

        Entries for other ranks are stashed locally; call
        :meth:`assemble` (collectively) to ship them.  ``mode`` is
        ``"insert"`` or ``"add"`` and must be used consistently between
        assemblies.
        """
        if mode not in ("insert", "add"):
            raise PETScError(f"unknown mode {mode!r}")
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        val = np.asarray(values, dtype=np.float64).reshape(-1)
        if idx.shape != val.shape:
            raise PETScError("indices/values length mismatch")
        if idx.size == 0:
            return
        stash = getattr(self, "_stash", None)
        if stash is None:
            stash = self._stash = {}
            self._stash_mode = mode
        elif self._stash_mode != mode:
            raise PETScError(
                f"mixed assembly modes: {self._stash_mode!r} then {mode!r}"
            )
        owner = self.layout.owners(idx)
        rank = self.comm.rank
        mine = owner == rank
        local = self.layout.to_local(idx[mine], rank)
        if mode == "insert":
            self.local[local] = val[mine]
        else:
            np.add.at(self.local, local, val[mine])
        for peer in np.unique(owner[~mine]):
            sel = owner == peer
            stash.setdefault(int(peer), []).append(
                np.stack([idx[sel].astype(np.float64), val[sel]])
            )

    def assemble(self) -> Generator:
        """Ship stashed off-rank entries to their owners (collective)."""
        comm = self.comm
        stash = getattr(self, "_stash", None) or {}
        mode = getattr(self, "_stash_mode", "insert")
        # agree on the mode (mixed modes across ranks are an error in MPI
        # as well; detect instead of corrupting)
        modes = yield from comm.gather_obj(mode if stash else None, root=0)
        if comm.rank == 0:
            used = {m for m in modes if m is not None}
            # a conflict is broadcast (not raised here) so that *every*
            # rank raises in lockstep -- raising on root alone would leave
            # the other ranks blocked in the bcast below (SPMD102)
            if len(used) > 1:
                agreed = ("!conflict", tuple(sorted(used)))
            else:
                agreed = used.pop() if used else "insert"
        else:
            agreed = None
        agreed = yield from comm.bcast(agreed, root=0)
        if isinstance(agreed, tuple) and agreed and agreed[0] == "!conflict":
            raise PETScError(f"conflicting assembly modes: {set(agreed[1])}")
        out_counts = np.zeros(comm.size)
        for peer, blocks in stash.items():
            out_counts[peer] = sum(b.shape[1] for b in blocks)
        in_counts = np.zeros(comm.size)
        yield from comm.alltoall(out_counts, in_counts, 1)
        from repro.mpi.collectives.basic import _tag_window
        from repro.mpi.request import Request

        base = _tag_window(comm, op="vec_assembly")
        requests = []
        incoming = []
        for peer in range(comm.size):
            n_in = int(in_counts[peer])
            if n_in and peer != comm.rank:
                buf = np.empty(2 * n_in)
                incoming.append(buf)
                requests.append(comm.irecv(buf, peer, base))
        for peer, blocks in sorted(stash.items()):
            payload = np.ascontiguousarray(np.hstack(blocks).reshape(-1))
            requests.append((yield from comm.isend(payload, peer, base)))
        yield from Request.waitall(requests)
        for buf in incoming:
            pairs = buf.reshape(2, -1)
            local = self.layout.to_local(pairs[0].astype(np.int64), comm.rank)
            if agreed == "insert":
                self.local[local] = pairs[1]
            else:
                np.add.at(self.local, local, pairs[1])
        if hasattr(self, "_stash"):
            del self._stash
            del self._stash_mode
