"""Distributed vectors and ownership layouts.

A :class:`Layout` splits a global index range into per-rank contiguous
ownership blocks (PETSc's ``PetscLayout``).  A :class:`Vec` is the rank-local
view of a distributed vector: a numpy array of the locally owned entries
plus generator methods for the collective operations (dot, norm, ...).

Local arithmetic charges flop time on the owning rank's CPU; reductions go
through ``allreduce``.
"""

from __future__ import annotations

import operator
from typing import Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.mpi.comm import Comm
from repro.petsc.commplan import CommPlan, plan_signature


class PETScError(RuntimeError):
    """Invalid use of the toolkit."""


class PlanMismatchError(PETScError):
    """Ranks disagree about the cached assembly pattern.

    Raised *uniformly on every rank* by a guarded
    ``subset_off_proc_entries`` assembly when the agreement check finds
    that some rank's stash left the recorded pattern (or lost its plan)
    while others would reuse theirs -- the situation that deadlocks the
    unguarded reuse path, exactly as PETSc documents for
    ``VEC_SUBSET_OFF_PROC_ENTRIES``.  The plans are invalidated before
    raising, so a subsequent ``assemble`` rediscovers cleanly.
    """


def _merge_plan_state(a, b):
    """Agreement-reduction operator over per-rank plan state tuples
    ``(has_plan, has_plan, conforms, fp, fp)`` -> ``(any_has, all_have,
    all_conform, fp_min, fp_max)``; associative and commutative."""
    return (a[0] | b[0], a[1] & b[1], a[2] & b[2],
            min(a[3], b[3]), max(a[4], b[4]))


class Layout:
    """Contiguous ownership ranges of a global vector across ranks."""

    def __init__(self, nranks: int, global_size: int,
                 local_sizes: Optional[Sequence[int]] = None):
        if global_size < 0:
            raise PETScError(f"negative global size {global_size}")
        self.nranks = nranks
        self.global_size = global_size
        if local_sizes is None:
            base, rem = divmod(global_size, nranks)
            local_sizes = [base + (1 if r < rem else 0) for r in range(nranks)]
        local_sizes = [int(s) for s in local_sizes]
        if len(local_sizes) != nranks:
            raise PETScError("local_sizes must have one entry per rank")
        if sum(local_sizes) != global_size:
            raise PETScError(
                f"local sizes sum to {sum(local_sizes)}, global is {global_size}"
            )
        self.local_sizes = local_sizes
        self.starts = np.concatenate(([0], np.cumsum(local_sizes))).astype(np.int64)

    def local_size(self, rank: int) -> int:
        return self.local_sizes[rank]

    def start(self, rank: int) -> int:
        return int(self.starts[rank])

    def end(self, rank: int) -> int:
        return int(self.starts[rank + 1])

    def owners(self, global_indices: np.ndarray) -> np.ndarray:
        """Owning rank of each global index (vectorised)."""
        idx = np.asarray(global_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.global_size):
            raise PETScError("global index out of range")
        return np.searchsorted(self.starts, idx, side="right") - 1

    def to_local(self, global_indices: np.ndarray, rank: int) -> np.ndarray:
        """Local offsets (on ``rank``) of global indices owned by it."""
        idx = np.asarray(global_indices, dtype=np.int64)
        return idx - self.starts[rank]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Layout)
            and self.global_size == other.global_size
            and self.local_sizes == other.local_sizes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout(global={self.global_size}, ranks={self.nranks})"


class Vec:
    """The rank-local part of a distributed vector.

    Create one per rank inside the rank's generator::

        layout = Layout(comm.size, n)
        x = Vec(comm, layout)
        x.local[:] = ...
        norm = yield from x.norm()
    """

    def __init__(self, comm: Comm, layout: Layout,
                 array: Optional[np.ndarray] = None):
        self.comm = comm
        self.layout = layout
        n = layout.local_size(comm.rank)
        if array is None:
            self.local = np.zeros(n)
        else:
            array = np.asarray(array, dtype=np.float64)
            if array.shape != (n,):
                raise PETScError(f"array shape {array.shape} != local size {n}")
            self.local = array
        #: cached assembly pattern (VEC_SUBSET_OFF_PROC_ENTRIES)
        self._plan: Optional[CommPlan] = None
        self._subset_hint = False
        self._plan_guard = True

    # -- local metadata ------------------------------------------------------

    @property
    def local_size(self) -> int:
        return self.local.size

    @property
    def global_size(self) -> int:
        return self.layout.global_size

    @property
    def owned_range(self) -> tuple[int, int]:
        return self.layout.start(self.comm.rank), self.layout.end(self.comm.rank)

    def duplicate(self) -> "Vec":
        return Vec(self.comm, self.layout)

    def copy_from(self, other: "Vec") -> None:
        self._check_compatible(other)
        self.local[:] = other.local

    def _check_compatible(self, other: "Vec") -> None:
        if self.layout != other.layout:
            raise PETScError("vectors have different layouts")

    # -- local arithmetic (charges flop time) -----------------------------------

    def _flops(self, per_entry: float = 1.0) -> Generator:
        yield from self.comm.cpu(self.local.size * self.comm.cost.flop * per_entry)

    def set(self, alpha: float) -> Generator:
        self.local[:] = alpha
        yield from self._flops()

    def scale(self, alpha: float) -> Generator:
        self.local *= alpha
        yield from self._flops()

    def axpy(self, alpha: float, x: "Vec") -> Generator:
        """self += alpha * x"""
        self._check_compatible(x)
        self.local += alpha * x.local
        yield from self._flops(2.0)

    def aypx(self, alpha: float, x: "Vec") -> Generator:
        """self = alpha * self + x"""
        self._check_compatible(x)
        self.local *= alpha
        self.local += x.local
        yield from self._flops(2.0)

    def waxpy(self, alpha: float, x: "Vec", y: "Vec") -> Generator:
        """self = alpha * x + y"""
        self._check_compatible(x)
        self._check_compatible(y)
        np.multiply(x.local, alpha, out=self.local)
        self.local += y.local
        yield from self._flops(2.0)

    def pointwise_mult(self, x: "Vec", y: "Vec") -> Generator:
        self._check_compatible(x)
        self._check_compatible(y)
        np.multiply(x.local, y.local, out=self.local)
        yield from self._flops()

    # -- reductions -------------------------------------------------------------

    def dot(self, other: "Vec") -> Generator:
        self._check_compatible(other)
        partial = float(self.local @ other.local)
        yield from self._flops(2.0)
        result = yield from self.comm.allreduce(partial)
        return result

    def norm(self, kind: str = "2") -> Generator:
        """Vector norm: ``"2"`` (default), ``"1"`` or ``"inf"``."""
        if kind == "2":
            sq = yield from self.dot(self)
            return float(np.sqrt(sq))
        if kind == "1":
            partial = float(np.abs(self.local).sum())
            yield from self._flops()
            result = yield from self.comm.allreduce(partial)
            return result
        if kind == "inf":
            partial = float(np.abs(self.local).max()) if self.local.size else 0.0
            yield from self._flops()
            result = yield from self.comm.allreduce(partial, op=max)
            return result
        raise PETScError(f"unknown norm kind {kind!r}")

    def sum(self) -> Generator:
        partial = float(self.local.sum())
        yield from self._flops()
        result = yield from self.comm.allreduce(partial)
        return result

    def max(self) -> Generator:
        partial = float(self.local.max()) if self.local.size else -np.inf
        yield from self._flops()
        result = yield from self.comm.allreduce(partial, op=max)
        return result

    def min(self) -> Generator:
        partial = float(self.local.min()) if self.local.size else np.inf
        yield from self._flops()
        result = yield from self.comm.allreduce(partial, op=min)
        return result

    def save(self, filename: str) -> Generator:
        """Write the vector to a shared file in global order (collective,
        like binary ``VecView``): each rank writes its owned block at its
        layout offset through MPI-IO."""
        from repro.mpi.io import File

        fh = yield from File.open(self.comm, filename)
        fh.set_view(self.layout.start(self.comm.rank) * 8)
        yield from fh.write_all(self.local)
        yield from fh.close()

    def load(self, filename: str) -> Generator:
        """Fill the vector from a file written by :meth:`save` (collective);
        the loading layout may differ from the saving one."""
        from repro.mpi.io import File

        fh = yield from File.open(self.comm, filename)
        fh.set_view(self.layout.start(self.comm.rank) * 8)
        yield from fh.read_all(self.local)
        yield from fh.close()

    def gather_to_all(self) -> Generator:
        """Assemble the full global vector on every rank
        (``VecScatterCreateToAll``): one ``MPI_Allgatherv`` whose per-rank
        counts are the local sizes -- with an unbalanced layout this is
        exactly the nonuniform-volume collective of paper section 4.2.1."""
        out = np.zeros(self.global_size)
        yield from self.comm.allgatherv(
            self.local, out, self.layout.local_sizes
        )
        return out

    # -- global entry setting (VecSetValues / VecAssembly) -----------------------

    def set_option(self, name: str, value: bool = True,
                   guard: bool = True) -> None:
        """Set a vector option (``VecSetOption``).

        ``subset_off_proc_entries`` promises that, from now on, every
        assembly's off-rank pattern is the same as (or, under ``add``
        mode, a subset of) the first one -- the assembly communication
        plan is then cached and reused, skipping pattern discovery.  All
        ranks must set it to the same value.  ``guard`` keeps the cheap
        per-assembly agreement check that turns a broken promise into a
        uniform :class:`PlanMismatchError`; with ``guard=False`` reuse is
        blind and rank disagreement deadlocks, as PETSc documents for
        ``VEC_SUBSET_OFF_PROC_ENTRIES``.
        """
        if name != "subset_off_proc_entries":
            raise PETScError(f"unknown vector option {name!r}")
        self._subset_hint = bool(value)
        self._plan_guard = bool(guard)
        if not value:
            self._plan = None

    def set_values(self, indices, values, mode: str = "insert") -> None:
        """Stage entries by *global* index from any rank (``VecSetValues``).

        Entries for other ranks are stashed locally; call
        :meth:`assemble` (collectively) to ship them.  ``mode`` is
        ``"insert"`` or ``"add"`` and must be used consistently between
        assemblies.  Writing outside a cached assembly pattern
        invalidates the plan (see :meth:`set_option`).
        """
        rank = self.comm.rank
        if not isinstance(mode, str) or mode not in ("insert", "add"):
            raise PETScError(
                f"rank {rank}: unknown assembly mode {mode!r}; "
                f"use 'insert' or 'add'")
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        val = np.asarray(values, dtype=np.float64).reshape(-1)
        if idx.shape != val.shape:
            raise PETScError(
                f"rank {rank}: {idx.size} indices but {val.size} values "
                f"in set_values")
        if idx.size == 0:
            return
        bad = (idx < 0) | (idx >= self.layout.global_size)
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise PETScError(
                f"rank {rank}: global index {int(idx[k])} out of range "
                f"[0, {self.layout.global_size}) in set_values")
        if np.isnan(val).any():
            k = int(np.flatnonzero(np.isnan(val))[0])
            raise PETScError(
                f"rank {rank}: NaN value for global index {int(idx[k])} "
                f"in set_values")
        stash = getattr(self, "_stash", None)
        if stash is None:
            stash = self._stash = {}
            self._stash_mode = mode
        elif self._stash_mode != mode:
            raise PETScError(
                f"rank {rank}: mixed assembly modes: "
                f"{self._stash_mode!r} then {mode!r}"
            )
        owner = self.layout.owners(idx)
        mine = owner == rank
        local = self.layout.to_local(idx[mine], rank)
        if mode == "insert":
            self.local[local] = val[mine]
        else:
            np.add.at(self.local, local, val[mine])
        plan = self._plan
        if plan is not None and mode != plan.mode:
            self._invalidate_plan("mode")
            plan = None
        for peer in np.unique(owner[~mine]):
            sel = owner == peer
            if plan is not None and not plan.covers(int(peer), idx[sel]):
                self._invalidate_plan("pattern")
                plan = None
            stash.setdefault(int(peer), []).append(
                np.stack([idx[sel].astype(np.float64), val[sel]])
            )

    def _invalidate_plan(self, reason: str) -> None:
        if self._plan is None:
            return
        self._plan = None
        prof = self.comm.cluster.profiler
        if prof.enabled:
            prof.count("repro_plan_cache_invalidations_total",
                       labels={"reason": reason})

    def assemble(self) -> Generator:
        """Ship stashed off-rank entries to their owners (collective).

        Without ``subset_off_proc_entries`` every assembly *discovers*
        its pattern: a mode-agreement round plus a sparse exchange of the
        stashed (index, value) pairs.  With the option set the discovered
        plan is cached; a guarded reuse starts with one agreement
        reduction that either confirms every rank can reuse its plan
        (then goes straight to point-to-point transfers), falls back to
        uniform rediscovery (no rank has a plan yet), or raises
        :class:`PlanMismatchError` on every rank when the ranks disagree
        -- the case that silently deadlocks with ``guard=False``.
        """
        comm = self.comm
        stash = getattr(self, "_stash", None) or {}
        mode = getattr(self, "_stash_mode", "insert")
        prof = comm.cluster.profiler
        plan = self._plan
        if plan is not None and (plan.ctx != comm.ctx
                                 or plan.nranks != comm.size):
            # a shrink (or any migration to a different communicator)
            # invalidates the plan: peers and patterns changed
            self._invalidate_plan("communicator")
            plan = None
        record = False
        if self._subset_hint:
            if self._plan_guard:
                has = plan is not None
                ok = has and plan.conforms(stash, mode)
                fp = plan.fingerprint if has else 0
                state = (int(has), int(has), int(ok), fp, fp)
                any_has, all_have, all_ok, fp_lo, fp_hi = (
                    yield from comm.allreduce(state, op=_merge_plan_state))
                if any_has and not (all_have and all_ok and fp_lo == fp_hi):
                    self._invalidate_plan("disagree")
                    raise PlanMismatchError(
                        f"rank {comm.rank}: cached assembly plans disagree "
                        f"across ranks (has_plan={has}, conforms={bool(ok)}); "
                        f"some rank's stash left the pattern promised by "
                        f"subset_off_proc_entries -- clear the option or "
                        f"keep the pattern stable on every rank")
                if all_have:
                    yield from self._assemble_cached(plan, stash)
                    return
            elif plan is not None:
                # blind reuse: no agreement traffic at all -- and no
                # protection if some other rank took the discovery path
                yield from self._assemble_cached(plan, stash)
                return
            if prof.enabled:
                prof.count("repro_plan_cache_misses_total")
            record = True
        yield from self._assemble_discover(stash, mode, record)

    def _assemble_discover(self, stash: Dict[int, List[np.ndarray]],
                           mode: str, record: bool) -> Generator:
        """Pattern discovery: agree on the mode, then a sparse dynamic
        exchange of the stashed pairs (senders known, receivers
        discovered by the NBX algorithms)."""
        comm = self.comm
        # agree on the mode (mixed modes across ranks are an error in MPI
        # as well; detect instead of corrupting)
        modes = yield from comm.gather_obj(mode if stash else None, root=0)
        if comm.rank == 0:
            used = {m for m in modes if m is not None}
            # a conflict is broadcast (not raised here) so that *every*
            # rank raises in lockstep -- raising on root alone would leave
            # the other ranks blocked in the bcast below (SPMD102)
            if len(used) > 1:
                agreed = ("!conflict", tuple(sorted(used)))
            else:
                agreed = used.pop() if used else "insert"
        else:
            agreed = None
        agreed = yield from comm.bcast(agreed, root=0)
        if isinstance(agreed, tuple) and agreed and agreed[0] == "!conflict":
            raise PETScError(f"conflicting assembly modes: {set(agreed[1])}")
        payloads = {}
        for peer, blocks in sorted(stash.items()):
            payloads[peer] = np.ascontiguousarray(np.hstack(blocks).reshape(-1))
        received = yield from comm.sparse_alltoall(payloads)
        recv_counts: Dict[int, int] = {}
        for src in sorted(received):
            pairs = received[src].reshape(2, -1)
            idx = pairs[0].astype(np.int64)
            self._apply_pairs(idx, pairs[1], agreed)
            recv_counts[src] = int(np.unique(idx).size)
        if record:
            send_indices = {
                peer: np.unique(np.concatenate([b[0] for b in blocks])
                                .astype(np.int64))
                for peer, blocks in stash.items()
            }
            fingerprint = 0
            if self._plan_guard:
                local_sig = plan_signature(agreed, send_indices)
                fingerprint = yield from comm.allreduce(local_sig,
                                                        op=operator.xor)
            self._plan = CommPlan(agreed, send_indices, recv_counts,
                                  comm.ctx, comm.size, fingerprint)
        if hasattr(self, "_stash"):
            del self._stash
            del self._stash_mode

    def _assemble_cached(self, plan: CommPlan,
                         stash: Dict[int, List[np.ndarray]]) -> Generator:
        """Reuse the cached plan: no discovery, straight to transfers.

        Fail-fast wrapped so a peer crash surfaces as the same uniform
        ``RankFailedError`` a collective would raise; any failure also
        invalidates the plan (the pattern may outlive a shrink, the
        promise does not)."""
        comm = self.comm
        prof = comm.cluster.profiler
        if prof.enabled:
            prof.count("repro_plan_cache_hits_total")
        from repro.mpi.collectives.basic import _tag_window

        base = _tag_window(comm, op="vec_assembly_cached",
                           detail=(plan.fingerprint, plan.mode))
        try:
            yield from comm._fail_fast(self._cached_exchange(plan, stash, base))
        except BaseException:
            self._invalidate_plan("failure")
            raise
        if hasattr(self, "_stash"):
            del self._stash
            del self._stash_mode

    def _cached_exchange(self, plan: CommPlan,
                         stash: Dict[int, List[np.ndarray]],
                         base: int) -> Generator:
        from repro.mpi.request import Request

        comm = self.comm
        requests = []
        incoming = []
        for src in sorted(plan.recv_counts):
            n_in = plan.recv_counts[src]
            if n_in and src != comm.rank:
                buf = np.empty(2 * n_in)
                incoming.append(buf)
                requests.append(comm.irecv(buf, src, base))
        for peer in sorted(plan.send_indices):
            idx_f, vals = plan.aligned_values(peer, stash.get(peer, []))
            payload = np.concatenate([idx_f, vals])
            requests.append((yield from comm.isend(payload, peer, base)))
        yield from Request.waitall(requests)
        for buf in incoming:
            pairs = buf.reshape(2, -1)
            self._apply_pairs(pairs[0].astype(np.int64), pairs[1], plan.mode)

    def _apply_pairs(self, idx: np.ndarray, vals: np.ndarray,
                     mode: str) -> None:
        local = self.layout.to_local(idx, self.comm.rank)
        if mode == "insert":
            self.local[local] = vals
        else:
            np.add.at(self.local, local, vals)
