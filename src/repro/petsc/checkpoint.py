"""In-memory solver checkpointing for restart-after-failure.

Models the standard HPC recovery pattern for iterative solvers: every
``every`` iterations the current iterate is *replicated* onto all ranks
(an ``Allgatherv`` of the distributed vector -- in a real code this would
be a write to a parallel file system or to partner-rank memory).  When a
rank fails mid-solve, the survivors

1. catch the :class:`repro.mpi.errors.RankFailedError` the fail-fast
   collectives raise,
2. :meth:`shrink <repro.mpi.comm.Comm.shrink>` the communicator to the
   survivor group,
3. rebuild the operator over the new layout (problem inputs are
   replicated in the applications, so reassembly needs no communication
   with the dead rank),
4. :meth:`restore <SolverCheckpoint.restore>` the last checkpointed
   global iterate into the new distribution, and
5. re-enter the Krylov solve warm-started from the checkpoint.

Because every surviving rank holds the full checkpointed iterate, restart
needs no data from the failed process: the only loss is the iterations
since the last checkpoint.

The checkpoint itself is a collective (it allgathers the iterate), so it
runs under the same fail-fast guarantees as the solver's reductions -- a
crash *during* a checkpoint surfaces on all survivors and the previous
checkpoint remains intact (the buffer is swapped only after the
allgatherv completes).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.petsc.vec import Vec

__all__ = ["SolverCheckpoint"]


class SolverCheckpoint:
    """Periodic replicated checkpoints of a distributed solver iterate.

    Pass one instance to :func:`repro.petsc.ksp.CG` (``checkpoint=``) or
    call :meth:`save` / :meth:`maybe_save` from a custom iteration loop.
    The object survives communicator shrinks: it stores a plain replicated
    ``numpy`` array plus the iteration number, nothing rank-specific.
    """

    def __init__(self, every: int = 10):
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.every = every
        #: replicated global iterate of the last checkpoint (None = never)
        self.data: Optional[np.ndarray] = None
        #: iteration number of the last checkpoint (-1 = never)
        self.iteration: int = -1
        #: completed checkpoints
        self.saves: int = 0
        #: restores performed (bumped by :meth:`restore`)
        self.restores: int = 0

    def maybe_save(self, x: Vec, iteration: int) -> Generator:
        """Checkpoint iff ``iteration`` is a multiple of ``every``."""
        if iteration > 0 and iteration % self.every == 0:
            yield from self.save(x, iteration)

    def save(self, x: Vec, iteration: int) -> Generator:
        """Replicate ``x`` onto all ranks and record it (collective)."""
        lay = x.layout
        comm = x.comm
        counts = [lay.local_size(r) for r in range(comm.size)]
        displs = [lay.start(r) for r in range(comm.size)]
        gathered = np.zeros(lay.global_size)
        yield from comm.allgatherv(x.local, gathered, counts, displs)
        # swap only after the collective completed: a crash mid-gather
        # leaves the previous checkpoint intact
        self.data = gathered
        self.iteration = iteration
        self.saves += 1

    def restore(self, x: Vec) -> bool:
        """Load the checkpointed iterate into ``x`` (local, no comm).

        ``x`` may live on a *different* (shrunken) communicator and layout
        than the vector that was saved -- only the global size must match.
        Returns True if a checkpoint was restored, False if none exists.
        """
        if self.data is None:
            return False
        lay = x.layout
        if lay.global_size != self.data.size:
            raise ValueError(
                f"checkpoint holds {self.data.size} entries, "
                f"vector expects {lay.global_size}"
            )
        start, end = x.owned_range
        x.local[:] = self.data[start:end]
        self.restores += 1
        return True
