"""``VecScatter``: general gather/scatter between distributed vectors.

The paper's section 5.4 compares three implementations of this operation;
all three are provided here as backends of one scatter object:

``hand_tuned``
    PETSc's default: explicitly pack the needed entries into a contiguous
    buffer with a tight copy loop, ship it with plain point-to-point
    messages to the (few) partner ranks, and unpack on arrival.  Fast, but
    the packing/communication pattern lives in PETSc code.

``datatype``
    Describe each partner's entries with an MPI ``Indexed`` datatype and
    hand the whole operation to ``MPI_Alltoallw``.  Simpler library code --
    and its performance is now entirely the MPI implementation's problem:
    over the baseline configuration this path suffers both the
    single-context pack engine and the zero-byte round-robin collective;
    over the optimised configuration it comes within a few percent of
    hand-tuned (Fig. 16).

A scatter is built once (like ``VecScatterCreate``) and applied many times.
The exchange lists are derived without communication: index sets are
replicated, and DMDA-style patterns are computable from the grid geometry
every rank already knows.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

import numpy as np

from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import DOUBLE, Datatype, IndexedBlock
from repro.mpi.comm import Comm
from repro.mpi.collectives.alltoallw import alltoallw
from repro.mpi.collectives.basic import _tag_window
from repro.mpi.request import Request
from repro.petsc.indexset import IS
from repro.petsc.vec import Layout, PETScError, Vec

_ITEM = 8  # bytes per double


def _count_runs(offsets: np.ndarray) -> int:
    """Number of contiguous runs in an offset sequence (1 for a straight
    block, ``len`` for fully scattered offsets)."""
    if offsets.size <= 1:
        return int(offsets.size)
    return int(np.count_nonzero(np.diff(offsets) != 1)) + 1


class VecScatter:
    """A reusable scatter plan between two distributed vectors.

    Parameters
    ----------
    comm:
        the rank-bound communicator,
    send_map:
        ``{peer_rank: local offsets into the source array}`` -- entries this
        rank must send to ``peer_rank``, in an order both sides agree on,
    recv_map:
        ``{peer_rank: local offsets into the destination array}`` -- where
        entries arriving from ``peer_rank`` land, in the matching order,
    local_pairs:
        ``(src_offsets, dst_offsets)`` for entries that stay on this rank.
    """

    def __init__(
        self,
        comm: Comm,
        send_map: Dict[int, np.ndarray],
        recv_map: Dict[int, np.ndarray],
        local_pairs: Tuple[np.ndarray, np.ndarray],
    ):
        self.comm = comm
        self.send_map = {
            int(p): np.asarray(v, dtype=np.int64) for p, v in send_map.items() if len(v)
        }
        self.recv_map = {
            int(p): np.asarray(v, dtype=np.int64) for p, v in recv_map.items() if len(v)
        }
        src_loc, dst_loc = local_pairs
        self.local_src = np.asarray(src_loc, dtype=np.int64)
        self.local_dst = np.asarray(dst_loc, dtype=np.int64)
        if self.local_src.shape != self.local_dst.shape:
            raise PETScError("local pair arrays differ in length")
        # contiguous-run counts: PETSc's hand-tuned loops special-case
        # contiguous and strided index runs, paying loop overhead per run
        # rather than per element
        self._send_runs = {p: _count_runs(v) for p, v in self.send_map.items()}
        self._recv_runs = {p: _count_runs(v) for p, v in self.recv_map.items()}
        self._local_runs = _count_runs(self.local_src) + _count_runs(self.local_dst)
        for peer in (*self.send_map, *self.recv_map):
            if not 0 <= peer < comm.size:
                raise PETScError(f"peer rank {peer} out of range")
        if comm.rank in self.send_map or comm.rank in self.recv_map:
            raise PETScError("self-entries belong in local_pairs")
        # cached Indexed datatypes for the datatype backend (built lazily;
        # datatypes are immutable, and their compiled pack plans live in the
        # repro.datatypes.ir cache, so the TypedBuffers rebuilt per apply()
        # share one plan per peer layout)
        self._send_types: Dict[int, Datatype] = {}
        self._recv_types: Dict[int, Datatype] = {}
        self._local_src_type: Optional[Datatype] = None
        self._local_dst_type: Optional[Datatype] = None

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_index_sets(
        cls,
        comm: Comm,
        src_layout: Layout,
        src_is: IS,
        dst_layout: Layout,
        dst_is: IS,
        owners: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "VecScatter":
        """Build from replicated global index sets: for every position k,
        ``dst[dst_is[k]] = src[src_is[k]]``.

        ``owners`` optionally supplies precomputed ``(src_owner, dst_owner)``
        arrays -- since index sets are replicated, the (identical) ownership
        computation can be shared across ranks instead of repeated N times.
        """
        src_idx = src_is.indices()
        dst_idx = dst_is.indices()
        if src_idx.shape != dst_idx.shape:
            raise PETScError(
                f"index sets differ in length: {len(src_idx)} vs {len(dst_idx)}"
            )
        src_is.validate_against(src_layout.global_size)
        dst_is.validate_against(dst_layout.global_size)
        if len(np.unique(dst_idx)) != len(dst_idx):
            raise PETScError("destination indices must be unique (no overwrites)")
        rank = comm.rank
        if owners is None:
            src_owner = src_layout.owners(src_idx)
            dst_owner = dst_layout.owners(dst_idx)
        else:
            src_owner, dst_owner = owners

        send_map: Dict[int, np.ndarray] = {}
        recv_map: Dict[int, np.ndarray] = {}

        mine_out = src_owner == rank
        mine_in = dst_owner == rank
        local_mask = mine_out & mine_in
        local_pairs = (
            src_layout.to_local(src_idx[local_mask], rank),
            dst_layout.to_local(dst_idx[local_mask], rank),
        )
        out_mask = mine_out & ~mine_in
        for peer in np.unique(dst_owner[out_mask]):
            sel = out_mask & (dst_owner == peer)
            send_map[int(peer)] = src_layout.to_local(src_idx[sel], rank)
        in_mask = mine_in & ~mine_out
        for peer in np.unique(src_owner[in_mask]):
            sel = in_mask & (src_owner == peer)
            recv_map[int(peer)] = dst_layout.to_local(dst_idx[sel], rank)
        return cls(comm, send_map, recv_map, local_pairs)

    @classmethod
    def from_needed_indices(
        cls,
        comm: Comm,
        src_layout: Layout,
        dst_layout: Layout,
        src_global,
        dst_local,
    ) -> Generator:
        """Build a scatter from *one-sided* knowledge (collective).

        Each rank names the global source entries it needs
        (``src_global``) and where they land in its destination array
        (``dst_local``); nobody knows who reads *their* entries.  The
        owners learn their send lists through the NBX sparse exchange
        (:meth:`repro.mpi.comm.Comm.sparse_alltoall`) instead of
        replicating index sets on every rank -- the AMR-style "ghosts of
        cells you don't own" construction, where most rank pairs never
        talk.  The request payload order defines the matching send/recv
        order on both sides.
        """
        src_global = np.asarray(src_global, dtype=np.int64).reshape(-1)
        dst_local = np.asarray(dst_local, dtype=np.int64).reshape(-1)
        rank = comm.rank
        n_local = dst_layout.local_size(rank)
        # validation errors are rank-local facts; agree before raising so
        # every rank leaves together instead of a subset entering the
        # exchange below and deadlocking (SPMD102)
        problem = None
        if src_global.shape != dst_local.shape:
            problem = (f"needed indices differ in length: "
                       f"{src_global.size} vs {dst_local.size}")
        elif dst_local.size and (dst_local.min() < 0
                                 or dst_local.max() >= n_local):
            problem = f"destination offset out of range [0, {n_local})"
        elif src_global.size and (src_global.min() < 0 or src_global.max()
                                  >= src_layout.global_size):
            problem = (f"source index out of range "
                       f"[0, {src_layout.global_size})")
        flagged = yield from comm.allreduce(problem is not None,
                                            op=lambda a, b: a or b)
        if flagged:
            raise PETScError(
                f"rank {rank}: invalid from_needed_indices arguments"
                + (f": {problem}" if problem else " on another rank"))
        owner = src_layout.owners(src_global)
        mine = owner == rank
        local_pairs = (src_layout.to_local(src_global[mine], rank),
                       dst_local[mine])
        recv_map: Dict[int, np.ndarray] = {}
        wants: Dict[int, np.ndarray] = {}
        for peer in np.unique(owner[~mine]):
            sel = owner == peer
            recv_map[int(peer)] = dst_local[sel]
            wants[int(peer)] = src_global[sel].astype(np.float64)
        answers = yield from comm.sparse_alltoall(wants)
        send_map: Dict[int, np.ndarray] = {}
        for reader, wanted in sorted(answers.items()):
            send_map[int(reader)] = src_layout.to_local(
                wanted.astype(np.int64), rank)
        return cls(comm, send_map, recv_map, local_pairs)

    def reversed(self) -> "VecScatter":
        """The transpose pattern: what was received is now sent."""
        return VecScatter(
            self.comm,
            {p: v.copy() for p, v in self.recv_map.items()},
            {p: v.copy() for p, v in self.send_map.items()},
            (self.local_dst.copy(), self.local_src.copy()),
        )

    # -- application ----------------------------------------------------------------

    def scatter(
        self,
        src: np.ndarray | Vec,
        dst: np.ndarray | Vec,
        backend: str = "datatype",
        mode: str = "insert",
    ) -> Generator:
        """Execute the scatter: move entries from ``src`` into ``dst``.

        ``backend`` is ``"hand_tuned"`` or ``"datatype"`` (see module doc).
        ``mode`` is ``"insert"`` (overwrite destination entries, PETSc's
        INSERT_VALUES) or ``"add"`` (accumulate, ADD_VALUES -- used by
        assembly and reverse ghost updates).  In add mode incoming data is
        received into staging buffers and accumulated locally; duplicate
        destination offsets accumulate correctly.
        """
        if mode not in ("insert", "add"):
            raise PETScError(f"unknown scatter mode {mode!r}")
        src_arr = src.local if isinstance(src, Vec) else np.asarray(src)
        dst_arr = dst.local if isinstance(dst, Vec) else np.asarray(dst)
        comm = self.comm
        prof = comm.cluster.profiler
        if prof.enabled:
            nbytes = (sum(v.size for v in self.send_map.values())
                      + self.local_src.size) * _ITEM
            prof.count("repro_vecscatter_ops_total",
                       labels={"backend": backend, "mode": mode})
            prof.count("repro_vecscatter_bytes_total", nbytes)
        with prof.span("petsc", "vecscatter", comm.grank, backend=backend,
                       mode=mode, peers=len(self.send_map)):
            if backend == "hand_tuned":
                yield from self._scatter_hand_tuned(src_arr, dst_arr, mode)
            elif backend == "datatype":
                if mode == "insert":
                    yield from self._scatter_datatype(src_arr, dst_arr)
                else:
                    yield from self._scatter_datatype_add(src_arr, dst_arr)
            else:
                raise PETScError(f"unknown scatter backend {backend!r}")

    # -- hand-tuned backend ----------------------------------------------------------

    def _scatter_hand_tuned(self, src: np.ndarray, dst: np.ndarray,
                            mode: str = "insert") -> Generator:
        comm = self.comm
        cost = comm.cost
        base = _tag_window(comm, op="vecscatter")
        requests: list[Request] = []
        recv_bufs: list[tuple[int, np.ndarray, np.ndarray]] = []
        for peer, offs in self.recv_map.items():
            buf = np.empty(offs.size, dtype=np.float64)
            recv_bufs.append((peer, buf, offs))
            requests.append(comm.irecv(buf, peer, base))
        def loop_cost(nelem: int, nruns: int) -> float:
            # memory traffic plus per-run loop overhead: the hand-tuned code
            # detects contiguous runs and memcpys them
            return nelem * _ITEM * cost.copy_byte + nruns * cost.handtuned_elem

        for peer, offs in self.send_map.items():
            packed = np.ascontiguousarray(src[offs])
            yield from comm.cpu(loop_cost(offs.size, self._send_runs[peer]), "pack")
            requests.append((yield from comm.isend(packed, peer, base)))
        if self.local_src.size:
            if mode == "insert":
                dst[self.local_dst] = src[self.local_src]
            else:
                np.add.at(dst, self.local_dst, src[self.local_src])
            yield from comm.cpu(
                loop_cost(2 * self.local_src.size, self._local_runs), "pack"
            )
        yield from Request.waitall(requests)
        for peer, buf, offs in recv_bufs:
            if mode == "insert":
                dst[offs] = buf
            else:
                np.add.at(dst, offs, buf)
            yield from comm.cpu(loop_cost(offs.size, self._recv_runs[peer]), "pack")

    # -- datatype backend ---------------------------------------------------------------

    def _offsets_type(self, offs: np.ndarray) -> Datatype:
        return IndexedBlock(1, offs, DOUBLE)

    def _scatter_datatype(self, src: np.ndarray, dst: np.ndarray) -> Generator:
        comm = self.comm
        n = comm.size
        if not self._send_types:
            for peer, offs in self.send_map.items():
                self._send_types[peer] = self._offsets_type(offs)
            for peer, offs in self.recv_map.items():
                self._recv_types[peer] = self._offsets_type(offs)
            if self.local_src.size:
                self._local_src_type = self._offsets_type(self.local_src)
                self._local_dst_type = self._offsets_type(self.local_dst)
        sendspecs: list[Optional[TypedBuffer]] = [None] * n
        recvspecs: list[Optional[TypedBuffer]] = [None] * n
        for peer, dt in self._send_types.items():
            sendspecs[peer] = TypedBuffer(src, dt)
        for peer, dt in self._recv_types.items():
            recvspecs[peer] = TypedBuffer(dst, dt)
        if self._local_src_type is not None:
            sendspecs[comm.rank] = TypedBuffer(src, self._local_src_type)
            recvspecs[comm.rank] = TypedBuffer(dst, self._local_dst_type)
        yield from alltoallw(comm, sendspecs, recvspecs)

    def _scatter_datatype_add(self, src: np.ndarray, dst: np.ndarray) -> Generator:
        """ADD mode over the datatype path: sends still use Indexed
        datatypes, but receives stage into contiguous buffers and
        accumulate locally (MPI has no receive-side reduction for
        point-to-point/alltoallw, so this mirrors what PETSc does)."""
        comm = self.comm
        n = comm.size
        cost = comm.cost
        if not self._send_types:
            # reuse the lazily-built send datatypes from the insert path
            for peer, offs in self.send_map.items():
                self._send_types[peer] = self._offsets_type(offs)
            for peer, offs in self.recv_map.items():
                self._recv_types[peer] = self._offsets_type(offs)
            if self.local_src.size:
                self._local_src_type = self._offsets_type(self.local_src)
                self._local_dst_type = self._offsets_type(self.local_dst)
        sendspecs: list[Optional[TypedBuffer]] = [None] * n
        recvspecs: list[Optional[TypedBuffer]] = [None] * n
        staging: list[tuple[np.ndarray, np.ndarray]] = []
        for peer, dt in self._send_types.items():
            sendspecs[peer] = TypedBuffer(src, dt)
        for peer, offs in self.recv_map.items():
            buf = np.zeros(offs.size)
            staging.append((buf, offs))
            recvspecs[peer] = TypedBuffer(buf, DOUBLE, offs.size)
        yield from alltoallw(comm, sendspecs, recvspecs)
        if self.local_src.size:
            np.add.at(dst, self.local_dst, src[self.local_src])
            yield from comm.cpu(
                2 * self.local_src.size * _ITEM * cost.copy_byte, "pack"
            )
        for buf, offs in staging:
            np.add.at(dst, offs, buf)
            yield from comm.cpu(buf.nbytes * cost.copy_byte, "pack")
