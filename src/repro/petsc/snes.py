"""SNES: nonlinear equation solvers (Newton-Krylov with line search).

The PETSc architecture diagram the paper reproduces (Fig. 1) stacks SNES on
top of KSP; this module completes that stack.  ``NewtonKrylov`` solves
``F(x) = 0`` with:

- a user residual callback ``F(x, f)`` (a generator: it may communicate --
  e.g. ghost exchanges inside a nonlinear stencil),
- a **matrix-free Jacobian**: directional derivatives
  ``J(x) v ~ (F(x + h v) - F(x)) / h`` (PETSc's ``-snes_mf``), so every
  Krylov iteration costs one extra residual evaluation and its
  communication,
- inner GMRES solves with an Eisenstat-Walker-style loose tolerance,
- backtracking line search on ``||F||``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional


from repro.petsc.ksp import GMRES, _profiler_of
from repro.petsc.mat import Operator
from repro.petsc.vec import PETScError, Vec

#: residual callback signature: fn(x, f) -> generator, leaves F(x) in f
ResidualFn = Callable[[Vec, Vec], Generator]


class _MatrixFreeJacobian(Operator):
    """J(x0) v via one-sided finite differences of the residual."""

    def __init__(self, residual: ResidualFn, x0: Vec, f0: Vec):
        # NOTE: stored under a private name -- Operator.residual(b, x, r) is
        # a method GMRES calls, and must not be shadowed by the callback
        self._residual_fn = residual
        self.x0 = x0
        self.f0 = f0
        self._xp = x0.duplicate()
        self._fp = x0.duplicate()

    def mult(self, v: Vec, y: Vec) -> Generator:
        vnorm = yield from v.norm()
        if vnorm == 0.0:
            yield from y.set(0.0)
            return
        xnorm = yield from self.x0.norm()
        h = 1e-7 * max(xnorm, 1.0) / vnorm
        self._xp.copy_from(self.x0)
        yield from self._xp.axpy(h, v)
        yield from self._residual_fn(self._xp, self._fp)
        # y = (F(x+hv) - F(x)) / h
        yield from y.waxpy(-1.0, self.f0, self._fp)
        yield from y.scale(1.0 / h)


@dataclass
class SNESResult:
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)
    linear_iterations: int = 0

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def NewtonKrylov(
    residual: ResidualFn,
    x: Vec,
    rtol: float = 1e-8,
    atol: float = 1e-12,
    maxits: int = 50,
    linear_rtol: float = 1e-4,
    linear_maxits: int = 200,
    max_backtracks: int = 8,
    checkpoint: Optional[Any] = None,
) -> Generator:
    """Solve ``F(x) = 0``; the solution accumulates into ``x``.

    Returns a :class:`SNESResult`.  Each Newton step solves
    ``J(x) dx = -F(x)`` with matrix-free GMRES, then backtracks along
    ``x + lam dx`` until ``||F|| `` decreases.

    ``checkpoint`` (a :class:`repro.petsc.checkpoint.SolverCheckpoint`)
    replicates the Newton iterate every ``checkpoint.every`` outer
    iterations so a rank failure can be recovered by shrink + warm
    restart (see :mod:`repro.petsc.checkpoint`).
    """
    if maxits < 0:
        raise PETScError("negative iteration limit")
    f = x.duplicate()
    dx = x.duplicate()
    trial = x.duplicate()
    ftrial = x.duplicate()
    rhs = x.duplicate()
    norms: List[float] = []
    linear_total = 0

    yield from residual(x, f)
    fnorm = yield from f.norm()
    norms.append(fnorm)
    target = max(atol, rtol * fnorm)
    if fnorm <= target:
        return SNESResult(True, 0, norms, 0)

    prof, grank = _profiler_of(x)
    for it in range(1, maxits + 1):
        with prof.span("solver", "snes_iteration", grank, it=it) as _sp:
            if prof.enabled:
                prof.count("repro_snes_iterations_total")
            J = _MatrixFreeJacobian(residual, x, f)
            rhs.copy_from(f)
            yield from rhs.scale(-1.0)
            yield from dx.set(0.0)
            lin = yield from GMRES(
                J, rhs, dx, restart=min(30, linear_maxits),
                rtol=linear_rtol, maxits=linear_maxits,
            )
            linear_total += lin.iterations
            _sp.attrs["linear_iterations"] = lin.iterations
            # backtracking line search on ||F(x + lam dx)||
            lam = 1.0
            accepted = False
            for _ in range(max_backtracks + 1):
                trial.copy_from(x)
                yield from trial.axpy(lam, dx)
                yield from residual(trial, ftrial)
                tnorm = yield from ftrial.norm()
                if tnorm < fnorm * (1.0 - 1e-4 * lam) or tnorm <= target:
                    accepted = True
                    break
                lam *= 0.5
            if not accepted:
                return SNESResult(False, it, norms, linear_total)
            x.copy_from(trial)
            f.copy_from(ftrial)
            fnorm = tnorm
            norms.append(fnorm)
            if fnorm <= target:
                return SNESResult(True, it, norms, linear_total)
            if checkpoint is not None:
                yield from checkpoint.maybe_save(x, it)
    return SNESResult(False, maxits, norms, linear_total)
