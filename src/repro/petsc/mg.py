"""Geometric multigrid on a DMDA hierarchy (PETSc's ``PCMG``).

Builds a hierarchy of DMDAs by factor-2 cell-centred coarsening (100^3 ->
50^3 -> 25^3 for the paper's three-level application), with:

- **smoother**: damped Jacobi sweeps (each sweep is one ghosted operator
  application -- communication-heavy, like the real application),
- **restriction**: 2^ndim-cell averaging.  Each rank gathers the fine
  children of its coarse cells through a :class:`VecScatter` built once per
  level pair (``DMDA.box_gather_scatter``), so partitions never need to
  align between levels,
- **prolongation**: cell-centred (tri)linear interpolation; each rank
  gathers the coarse cells bordering its fine box, again through a scatter,
- **coarse solve**: unpreconditioned CG on the coarsest level.

Every inter-level transfer and every smoothing sweep funnels noncontiguous
subarray data through ``Alltoallw`` (datatype backend) or hand-tuned
point-to-point -- the communication mix whose cost the paper's Fig. 17
measures end to end.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.mpi.comm import Comm
from repro.petsc.dmda import DMDA, Box
from repro.petsc.ksp import CG, SolveResult
from repro.petsc.mat import Laplacian
from repro.petsc.vec import PETScError, Vec


class _Transfer:
    """Scatters and local geometry between one fine and one coarse level."""

    def __init__(self, fine: DMDA, coarse: DMDA, backend: str):
        self.backend = backend
        self.factor = tuple(fine.dims[d] // coarse.dims[d] for d in range(3))
        for d in range(3):
            if coarse.dims[d] * self.factor[d] != fine.dims[d] or self.factor[d] not in (1, 2):
                raise PETScError(
                    f"cannot coarsen dim {d}: {fine.dims[d]} -> {coarse.dims[d]}"
                )
        comm = fine.comm

        # --- restriction: gather the fine children of my coarse box
        fine_boxes: List[Optional[Box]] = []
        for r in range(comm.size):
            clo, chi = coarse.owned_box(r)
            fine_boxes.append((
                tuple(clo[d] * self.factor[d] for d in range(3)),
                tuple(chi[d] * self.factor[d] for d in range(3)),
            ))
        self.restrict_scatter = fine.box_gather_scatter(fine_boxes)
        my_clo, my_chi = coarse.owned_box()
        self.coarse_shape = tuple(my_chi[d] - my_clo[d] for d in range(3))
        self.fine_child_shape = tuple(
            self.coarse_shape[d] * self.factor[d] for d in range(3)
        )
        self.fine_child_buf = np.zeros(self.fine_child_shape).reshape(-1)

        # --- prolongation: gather the coarse cells around my fine box
        my_flo, my_fhi = fine.owned_box()
        self._interp = []
        coarse_lo = [0, 0, 0]
        coarse_hi = [0, 0, 0]
        for d in range(3):
            fi = np.arange(my_flo[d], my_fhi[d], dtype=np.int64)
            if self.factor[d] == 1:
                lo_idx = hi_idx = fi
                w_hi = np.zeros(fi.size)
            else:
                m_low = (fi - 1) // 2
                lo_idx = np.clip(m_low, 0, coarse.dims[d] - 1)
                hi_idx = np.clip(m_low + 1, 0, coarse.dims[d] - 1)
                w_hi = np.where(fi % 2 == 0, 0.75, 0.25)
            coarse_lo[d] = int(min(lo_idx.min(), hi_idx.min()))
            coarse_hi[d] = int(max(lo_idx.max(), hi_idx.max())) + 1
            self._interp.append((lo_idx - coarse_lo[d], hi_idx - coarse_lo[d], w_hi))
        my_coarse_box: Box = (tuple(coarse_lo), tuple(coarse_hi))
        coarse_boxes: List[Optional[Box]] = [None] * comm.size
        # every rank must evaluate everyone's box identically:
        for r in range(comm.size):
            coarse_boxes[r] = _needed_coarse_box(fine, coarse, self.factor, r)
        assert coarse_boxes[comm.rank] == my_coarse_box
        self.prolong_scatter = coarse.box_gather_scatter(coarse_boxes)
        self.coarse_halo_shape = tuple(coarse_hi[d] - coarse_lo[d] for d in range(3))
        self.coarse_halo_buf = np.zeros(self.coarse_halo_shape).reshape(-1)

    # -- application -------------------------------------------------------------

    def restrict(self, r_fine: Vec, b_coarse: Vec) -> Generator:
        """b_coarse = average of the fine children of each coarse cell."""
        yield from self.restrict_scatter.scatter(
            r_fine.local, self.fine_child_buf, backend=self.backend
        )
        F = self.fine_child_buf.reshape(self.fine_child_shape)
        cz, cy, cx = self.coarse_shape
        fz, fy, fx = self.factor
        C = F.reshape(cz, fz, cy, fy, cx, fx).mean(axis=(1, 3, 5))
        b_coarse.local[:] = C.reshape(-1)
        yield from b_coarse._flops(float(fz * fy * fx))

    def prolong_add(self, x_coarse: Vec, x_fine: Vec) -> Generator:
        """x_fine += (tri)linear interpolation of x_coarse."""
        yield from self.prolong_scatter.scatter(
            x_coarse.local, self.coarse_halo_buf, backend=self.backend
        )
        E = self.coarse_halo_buf.reshape(self.coarse_halo_shape)
        # interpolate one dimension at a time (z, then y, then x)
        for axis, (lo_idx, hi_idx, w_hi) in enumerate(self._interp):
            lo = np.take(E, lo_idx, axis=axis)
            hi = np.take(E, hi_idx, axis=axis)
            shape = [1, 1, 1]
            shape[axis] = w_hi.size
            w = w_hi.reshape(shape)
            E = lo * (1.0 - w) + hi * w
        x_fine.local += E.reshape(-1)
        yield from x_fine._flops(6.0)


def _needed_coarse_box(fine: DMDA, coarse: DMDA, factor, rank: int) -> Box:
    """The coarse box rank ``rank`` needs to interpolate its fine box."""
    flo, fhi = fine.owned_box(rank)
    lo = [0, 0, 0]
    hi = [0, 0, 0]
    for d in range(3):
        fi = np.arange(flo[d], fhi[d], dtype=np.int64)
        if factor[d] == 1:
            lo_idx = hi_idx = fi
        else:
            m_low = (fi - 1) // 2
            lo_idx = np.clip(m_low, 0, coarse.dims[d] - 1)
            hi_idx = np.clip(m_low + 1, 0, coarse.dims[d] - 1)
        lo[d] = int(min(lo_idx.min(), hi_idx.min()))
        hi[d] = int(max(lo_idx.max(), hi_idx.max())) + 1
    return tuple(lo), tuple(hi)


class MGSolver:
    """Geometric multigrid for the DMDA Laplacian.

    Use :meth:`solve` as a standalone solver (Richardson + V-cycle, the
    paper's application) or :meth:`pc_apply` as a preconditioner for CG.
    """

    def __init__(
        self,
        fine_da: DMDA,
        nlevels: int = 3,
        nu_pre: int = 2,
        nu_post: int = 2,
        omega: float = 6.0 / 7.0,
        backend: str = "datatype",
        coarse_rtol: float = 1e-2,
        coarse_maxits: int = 100,
        smoother: str = "jacobi",
    ):
        if nlevels < 1:
            raise PETScError("need at least one level")
        if smoother not in ("jacobi", "chebyshev"):
            raise PETScError(f"unknown smoother {smoother!r}")
        self.comm: Comm = fine_da.comm
        self.backend = backend
        self.nu_pre = nu_pre
        self.nu_post = nu_post
        self.omega = omega
        self.coarse_rtol = coarse_rtol
        self.coarse_maxits = coarse_maxits
        self.smoother = smoother
        self._cheb_bounds: List[Optional[tuple]] = []

        self.das: List[DMDA] = [fine_da]
        for _ in range(nlevels - 1):
            prev = self.das[-1]
            new_dims = []
            for d in range(3):
                if prev.dims[d] == 1:
                    new_dims.append(1)
                elif prev.dims[d] % 2 == 0:
                    new_dims.append(prev.dims[d] // 2)
                else:
                    raise PETScError(
                        f"cannot coarsen odd dimension {prev.dims[d]}; choose "
                        "grid sizes divisible by 2^(nlevels-1)"
                    )
            da = DMDA(
                self.comm,
                [new_dims[d] for d in range(3) if prev.dims[d] > 1] or [1],
                dof=1,
                stencil=prev.stencil,
                stencil_width=prev.width,
                proc_grid=prev.proc_grid,
            )
            self.das.append(da)
        self.ops: List[Laplacian] = [Laplacian(da, backend=backend) for da in self.das]
        self.transfers: List[_Transfer] = [
            _Transfer(self.das[l], self.das[l + 1], backend)
            for l in range(nlevels - 1)
        ]
        # work vectors per level (b, x, r)
        self._b = [da.create_global_vec() for da in self.das]
        self._x = [da.create_global_vec() for da in self.das]
        self._r = [da.create_global_vec() for da in self.das]
        self._cheb_bounds = [None] * self.nlevels

    @property
    def nlevels(self) -> int:
        return len(self.das)

    # -- components -------------------------------------------------------------

    def smooth(self, level: int, b: Vec, x: Vec, sweeps: int) -> Generator:
        """``sweeps`` smoothing iterations at ``level`` (Jacobi or
        Chebyshev, per the ``smoother`` option)."""
        if self.smoother == "chebyshev":
            yield from self._smooth_chebyshev(level, b, x, sweeps)
            return
        op = self.ops[level]
        r = self._r[level]
        scale = self.omega / op.diag
        for _ in range(sweeps):
            yield from op.residual(b, x, r)
            yield from x.axpy(scale, r)

    def _smooth_chebyshev(self, level: int, b: Vec, x: Vec, sweeps: int) -> Generator:
        """Chebyshev smoothing targeting the upper spectrum (no inner
        products per sweep -- communication-lighter than it looks)."""
        from repro.petsc.spectrum import smoothing_range

        if self._cheb_bounds[level] is None:
            bounds = yield from smoothing_range(self.ops[level], b)
            self._cheb_bounds[level] = bounds
        eig_min, eig_max = self._cheb_bounds[level]
        theta = 0.5 * (eig_max + eig_min)
        delta = 0.5 * (eig_max - eig_min)
        sigma1 = theta / delta
        rho = 1.0 / sigma1
        op = self.ops[level]
        r = self._r[level]
        d = b.duplicate()
        Ad = b.duplicate()
        yield from op.residual(b, x, r)
        d.copy_from(r)
        yield from d.scale(1.0 / theta)
        for _ in range(sweeps):
            yield from x.axpy(1.0, d)
            yield from op.mult(d, Ad)
            yield from r.axpy(-1.0, Ad)
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            yield from d.scale(rho_new * rho)
            yield from d.axpy(2.0 * rho_new / delta, r)
            rho = rho_new

    def vcycle(self, level: int, b: Vec, x: Vec) -> Generator:
        """One V-cycle starting at ``level`` (0 = finest)."""
        yield from self.cycle(level, b, x, gamma=1)

    def wcycle(self, level: int, b: Vec, x: Vec) -> Generator:
        """One W-cycle (each coarse problem visited twice)."""
        yield from self.cycle(level, b, x, gamma=2)

    def cycle(self, level: int, b: Vec, x: Vec, gamma: int = 1) -> Generator:
        """One multigrid cycle: ``gamma=1`` is a V-cycle, ``gamma=2`` a
        W-cycle (the coarse-grid correction recurses ``gamma`` times)."""
        if gamma < 1:
            raise PETScError(f"gamma must be >= 1, got {gamma}")
        if level == self.nlevels - 1:
            result = yield from CG(
                self.ops[level], b, x,
                rtol=self.coarse_rtol, maxits=self.coarse_maxits,
            )
            return result
        yield from self.smooth(level, b, x, self.nu_pre)
        op = self.ops[level]
        r = self._r[level]
        yield from op.residual(b, x, r)
        b_c = self._b[level + 1]
        x_c = self._x[level + 1]
        yield from self.transfers[level].restrict(r, b_c)
        yield from x_c.set(0.0)
        for _ in range(gamma):
            yield from self.cycle(level + 1, b_c, x_c, gamma)
        yield from self.transfers[level].prolong_add(x_c, x)
        yield from self.smooth(level, b, x, self.nu_post)

    def fmg_solve(self, b: Vec, x: Vec, cycles_per_level: int = 1) -> Generator:
        """Full multigrid: restrict the RHS down the hierarchy, solve the
        coarsest problem, then interpolate upward running
        ``cycles_per_level`` V-cycles per level.  One FMG pass typically
        reaches discretisation accuracy.  Returns the final residual norm.
        """
        nl = self.nlevels
        # restrict the RHS itself down the hierarchy
        bs = [b] + [self._b[l] for l in range(1, nl)]
        for l in range(nl - 1):
            yield from self.transfers[l].restrict(bs[l], bs[l + 1])
        xs = [x] + [self._x[l] for l in range(1, nl)]
        yield from xs[nl - 1].set(0.0)
        yield from CG(
            self.ops[nl - 1], bs[nl - 1], xs[nl - 1],
            rtol=self.coarse_rtol, maxits=self.coarse_maxits,
        )
        for l in range(nl - 2, -1, -1):
            yield from xs[l].set(0.0)
            yield from self.transfers[l].prolong_add(xs[l + 1], xs[l])
            for _ in range(cycles_per_level):
                yield from self.vcycle(l, bs[l], xs[l])
        op = self.ops[0]
        r = self._r[0]
        yield from op.residual(b, x, r)
        rnorm = yield from r.norm()
        return rnorm

    def pc_apply(self, r: Vec, z: Vec) -> Generator:
        """One V-cycle as a preconditioner: z ~= A^{-1} r (z starts at 0)."""
        yield from self.vcycle(0, r, z)

    # -- standalone solver ----------------------------------------------------------

    def solve(
        self,
        b: Vec,
        x: Vec,
        rtol: float = 1e-8,
        atol: float = 0.0,
        max_cycles: int = 100,
    ) -> Generator:
        """V-cycle iteration until the fine residual drops by ``rtol``."""
        op = self.ops[0]
        r = self._r[0]
        norms: List[float] = []
        target = None
        for cycle in range(max_cycles + 1):
            yield from op.residual(b, x, r)
            rnorm = yield from r.norm()
            norms.append(rnorm)
            if target is None:
                target = max(atol, rtol * rnorm)
            if rnorm <= target:
                return SolveResult(True, cycle, norms)
            if cycle == max_cycles:
                break
            yield from self.vcycle(0, b, x)
        return SolveResult(False, max_cycles, norms)
