"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench                 # all figures (slow: several min)
    python -m repro.bench fig12 fig14a    # a selection
    python -m repro.bench --quick         # reduced sweeps
    python -m repro.bench --quick --profile --emit-json out.json \
        --trace-out trace.json            # + repro.prof instrumentation
    python -m repro.bench --autotune --quick \
        --tuning-out tuning_table.json    # train + validate a tuning table

``--autotune`` runs the simulator measurement sweep
(:mod:`repro.mpi.algorithms.autotune`), writes the ``repro-tuning/1``
table JSON, then replays the paper's nonuniform benches under the
baseline, optimised and autotuned configurations and **fails (exit 1)**
unless the autotuned policy ties-or-beats both fixed configs on every
row -- the CI contract for the tuning-table artifact.

With ``--profile`` every cluster built by the figure sweeps carries a
:class:`repro.prof.Profiler`; the run then prints the Fig. 13-style
pack/compute/wire/wait breakdown and (with ``--emit-json``) writes a
``repro-bench/1`` JSON artifact embedding the figures, the metric
snapshots per figure row, and the whole-session profile report.
``--trace-out`` additionally dumps a Chrome trace-event file viewable in
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import figures, print_figure

ALL = ["fig12", "fig13", "fig14a", "fig14b", "fig15", "fig16", "fig17"]


def _parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's figures.",
    )
    parser.add_argument("figures", nargs="*", metavar="FIG",
                        help=f"figures to run (default: all of {ALL})")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps for smoke runs")
    parser.add_argument("--profile", action="store_true",
                        help="attach the repro.prof session profiler")
    parser.add_argument("--emit-json", metavar="PATH", default=None,
                        help="write figures (+ profile report) as JSON")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event file "
                             "(requires --profile)")
    parser.add_argument("--critpath-out", metavar="PATH", default=None,
                        help="write the repro-critpath/1 causal "
                             "critical-path report (requires --profile)")
    parser.add_argument("--flame-out", metavar="PATH", default=None,
                        help="write a collapsed-stack flamegraph "
                             "(requires --profile)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="compare against a committed repro-bench/1 "
                             "baseline; exit 1 on any relative slowdown "
                             "beyond --baseline-tolerance")
    parser.add_argument("--baseline-tolerance", type=float, default=0.10,
                        metavar="FRAC",
                        help="per-measurement relative-slowdown tolerance "
                             "for --baseline (default: %(default)s)")
    parser.add_argument("--trajectory", metavar="PATH", default=None,
                        help="append this run's figures to a "
                             "BENCH_trajectory.json perf-trajectory file")
    parser.add_argument("--trajectory-label", metavar="LABEL", default=None,
                        help="label recorded with the --trajectory entry "
                             "(e.g. a commit SHA)")
    parser.add_argument("--degrade", type=float, default=None, metavar="SCALE",
                        help="multiply every wire transfer's time by SCALE "
                             "via the fault injector (regression-gate "
                             "self-test aid)")
    parser.add_argument("--guidelines", action="store_true",
                        help="run the datatype performance-guideline suite "
                             "(pack <= manual copy, Vector <= Indexed, "
                             "Contiguous <= Vector) and exit 1 on any "
                             "violation")
    parser.add_argument("--no-ir-passes", action="store_true",
                        help="disable the datatype-IR optimization passes "
                             "(guideline-gate self-test aid; the suite "
                             "must then FAIL)")
    parser.add_argument("--assembly", action="store_true",
                        help="run the repeated-sparse-assembly figure "
                             "(dense vs NBX discovery vs cached plan) and "
                             "exit 1 unless plan reuse is byte-identical "
                             "and strictly cheaper on the wire")
    parser.add_argument("--autotune", action="store_true",
                        help="train a tuning table in the simulator and "
                             "assert it ties-or-beats the fixed configs")
    parser.add_argument("--tuning-out", metavar="PATH",
                        default="tuning_table.json",
                        help="where --autotune writes the table "
                             "(default: %(default)s)")
    parser.add_argument("--plans", metavar="PATH", default=None,
                        help="repro-plans/1 document (from 'python -m "
                             "repro.analyze --dataflow --plans-out') used "
                             "to pre-seed the tuning table; --autotune "
                             "then skips statically classified buckets "
                             "and fails unless that strictly reduced the "
                             "warmup-simulation count")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the simulator's CPU-jitter RNG; "
                             "one value reproduces a whole run bit-for-bit "
                             "(default: %(default)s)")
    return parser.parse_args(argv)


def _figure_kwargs(name: str, quick: bool, seed: int = 0) -> dict:
    kwargs = {"seed": seed}
    if quick and name == "fig15":
        kwargs["procs"] = (2, 4, 8, 16, 32)
    if quick and name == "fig16":
        kwargs["procs"] = (2, 4, 8, 16)
    if quick and name == "fig17":
        kwargs["procs"] = (4, 8)
        kwargs["grid"] = (48, 48, 48)
    return kwargs


def _run_autotune(args: argparse.Namespace) -> int:
    """Train a tuning table, validate it against the fixed configs."""
    from repro.mpi.algorithms.autotune import (
        AutotuneStats, autotune, check_ties_or_beats, compare_policies,
        count_warmup_runs,
    )

    preseed_doc = None
    if args.plans:
        try:
            with open(args.plans) as fh:
                preseed_doc = json.load(fh)
            if preseed_doc.get("schema") != "repro-plans/1":
                raise ValueError(
                    "not a repro-plans/1 document "
                    f"(schema={preseed_doc.get('schema')!r})")
        except (OSError, ValueError) as exc:
            print(f"--plans {args.plans}: {exc}", file=sys.stderr)
            return 2

    t0 = time.time()
    if args.profile:
        from repro.prof import session

        session.enable()
    try:
        print(f"== autotune sweep ({'quick' if args.quick else 'full'}) ==")
        stats = AutotuneStats()
        table = autotune(quick=args.quick, verbose=True,
                         preseed=preseed_doc, stats=stats)
        table.save(args.tuning_out)
        print(f"tuning table ({len(table)} buckets) written to "
              f"{args.tuning_out}")
        sparse_winners = {
            entry.get("algorithm")
            for key, entry in table.entries.items()
            if key.startswith("sparse_alltoall|")
        }
        if not sparse_winners:
            print("sparse_alltoall never entered the sweep -- the NBX "
                  "algorithms are not participating in selection")
            return 1
        if not sparse_winners & {"nbx", "nbx_binned"}:
            print("no NBX variant won any sparse_alltoall bucket "
                  f"(winners: {sorted(sparse_winners)}) -- the consensus "
                  "implementations are not competitive in their own sweep")
            return 1
        n_sparse = sum(1 for k in table.entries
                       if k.startswith("sparse_alltoall|"))
        print(f"sparse_alltoall trained {n_sparse} bucket(s); "
              f"winners: {sorted(sparse_winners)}")
        if preseed_doc is not None:
            cold = count_warmup_runs(quick=args.quick)
            print(f"warmup simulations: {stats.warmup_runs} pre-seeded "
                  f"vs {cold} cold "
                  f"({stats.scenarios_skipped}/{stats.scenarios_total} "
                  "scenario(s) skipped via static plans)")
            if stats.warmup_runs >= cold:
                print("pre-seeding did NOT reduce the warmup-simulation "
                      "count (no sweep scenario landed in a statically "
                      "classified bucket)")
                return 1
        print()

        fig = compare_policies(args.tuning_out, quick=args.quick)
        print_figure(fig)
        print()
        problems = check_ties_or_beats(fig)

        profile_report = None
        if args.profile:
            from repro.prof import session

            profile_report = session.report()
        if args.emit_json:
            doc = {
                "schema": "repro-bench/1",
                "quick": args.quick,
                "tuning_table": table.as_dict(),
                "figures": {
                    fig.name: {
                        "title": fig.title,
                        "columns": fig.columns,
                        "rows": fig.rows,
                        "notes": fig.notes,
                    }
                },
            }
            if profile_report is not None:
                profile_report = dict(profile_report)
                profile_report.pop("prometheus", None)
                doc["profile"] = profile_report
            with open(args.emit_json, "w") as fh:
                json.dump(doc, fh, indent=1, default=str)
            print(f"JSON report written to {args.emit_json}")
    finally:
        if args.profile:
            from repro.prof import session

            session.disable()

    print(f"wall time: {time.time() - t0:.0f} s")
    if problems:
        print("autotuned policy LOSES to a fixed config:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("autotuned policy ties-or-beats both fixed configs on every row")
    return 0


def _run_assembly(args: argparse.Namespace) -> int:
    """The repeated-assembly amortisation figure (CI gate)."""
    from repro.apps.assembly_bench import run_assembly
    from repro.bench import FigureData

    t0 = time.time()
    procs = (4, 8, 16) if args.quick else (4, 8, 16, 32)
    # the plan's one-time fingerprint agreement amortises after ~4-5
    # cached rounds; run well past break-even so the gate is meaningful
    rounds = 8 if args.quick else 12
    fig = FigureData(
        name="assembly",
        title=f"Repeated sparse Vec assembly x{rounds} "
              "(latency s / wire messages)",
        columns=["P", "dense (s)", "NBX (s)", "NBX+plan (s)",
                 "dense msgs", "NBX msgs", "plan msgs"],
        notes=["dense/NBX rediscover the pattern every round; NBX+plan "
               "caches it (VEC_SUBSET_OFF_PROC_ENTRIES) after round 0"],
    )
    problems = []
    for n in procs:
        res = {s: run_assembly(n, s, rounds=rounds)
               for s in ("dense", "nbx", "plan")}
        fig.add_row(n, res["dense"].latency, res["nbx"].latency,
                    res["plan"].latency, res["dense"].messages,
                    res["nbx"].messages, res["plan"].messages)
        if not (res["dense"].checksum == res["nbx"].checksum
                == res["plan"].checksum):
            problems.append(
                f"P={n}: strategies disagree on the assembled vector "
                f"(dense {res['dense'].checksum}, nbx {res['nbx'].checksum},"
                f" plan {res['plan'].checksum})")
        for other in ("dense", "nbx"):
            if res["plan"].messages >= res[other].messages:
                problems.append(
                    f"P={n}: cached plan sent {res['plan'].messages} "
                    f"message(s), not fewer than {other}'s "
                    f"{res[other].messages}")
    print_figure(fig)
    print()

    doc = {
        "schema": "repro-bench/1",
        "quick": args.quick,
        "figures": {
            fig.name: {
                "title": fig.title,
                "columns": fig.columns,
                "rows": fig.rows,
                "notes": fig.notes,
            }
        },
    }
    if args.emit_json:
        with open(args.emit_json, "w") as fh:
            json.dump(doc, fh, indent=1, default=str)
        print(f"JSON report written to {args.emit_json}")
    if args.trajectory:
        from repro.bench.baseline import append_trajectory

        n = append_trajectory(args.trajectory, doc,
                              label=args.trajectory_label)
        print(f"trajectory entry {n} appended to {args.trajectory}")

    print(f"wall time: {time.time() - t0:.0f} s")
    if problems:
        print("ASSEMBLY GATE VIOLATION(S):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("plan reuse is byte-identical to rediscovery and strictly "
          "cheaper on the wire at every size")
    return 0


def _run_guidelines(args: argparse.Namespace) -> int:
    """The self-checking datatype guideline suite (CI gate)."""
    from repro.bench.guidelines import run_guidelines
    from repro.datatypes import ir

    t0 = time.time()
    if args.no_ir_passes:
        ir.set_passes_enabled(False)
        ir.cache_clear()
        print("datatype IR optimization passes DISABLED (--no-ir-passes)")
    if args.profile:
        from repro.prof import session

        session.enable()
    try:
        scale = 256 if args.quick else 512
        fig, violations = run_guidelines(scale=scale)
        print_figure(fig)
        print()
        if args.emit_json:
            doc = {
                "schema": "repro-bench/1",
                "quick": args.quick,
                "ir_passes": ir.passes_enabled(),
                "figures": {
                    fig.name: {
                        "title": fig.title,
                        "columns": fig.columns,
                        "rows": fig.rows,
                        "notes": fig.notes,
                    }
                },
            }
            if args.profile:
                from repro.prof import session

                report = dict(session.report())
                report.pop("prometheus", None)
                doc["profile"] = report
            with open(args.emit_json, "w") as fh:
                json.dump(doc, fh, indent=1, default=str)
            print(f"JSON report written to {args.emit_json}")
    finally:
        if args.profile:
            from repro.prof import session

            session.disable()
        if args.no_ir_passes:
            ir.set_passes_enabled(True)
            ir.cache_clear()

    print(f"wall time: {time.time() - t0:.0f} s")
    if violations:
        print("GUIDELINE VIOLATION(S):")
        for problem in violations:
            print(f"  {problem}")
        return 1
    print("all datatype performance guidelines hold")
    return 0


def main(argv: list[str]) -> int:
    args = _parse(argv)
    if args.guidelines:
        if args.figures:
            print("--guidelines does not take figure arguments")
            return 2
        return _run_guidelines(args)
    if args.assembly:
        if args.figures:
            print("--assembly does not take figure arguments")
            return 2
        return _run_assembly(args)
    if args.no_ir_passes:
        print("--no-ir-passes requires --guidelines")
        return 2
    if args.autotune:
        if args.figures:
            print("--autotune does not take figure arguments")
            return 2
        return _run_autotune(args)
    wanted = args.figures or ALL
    unknown = [w for w in wanted if w not in ALL]
    if unknown:
        print(f"unknown figure(s): {unknown}; choose from {ALL}")
        return 2
    for flag, value in (("--trace-out", args.trace_out),
                        ("--critpath-out", args.critpath_out),
                        ("--flame-out", args.flame_out)):
        if value and not args.profile:
            print(f"{flag} requires --profile")
            return 2

    baseline_doc = None
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline_doc = json.load(fh)
            if baseline_doc.get("schema") != "repro-bench/1":
                raise ValueError(
                    "not a repro-bench/1 document "
                    f"(schema={baseline_doc.get('schema')!r})")
        except (OSError, ValueError) as exc:
            print(f"--baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2

    if args.profile:
        from repro.prof import session

        session.enable()
    if args.degrade is not None:
        # every cluster the figure sweeps construct (many layers below
        # here) picks this plan up as its default fault plan
        from repro.faults import set_default_plan
        from repro.faults.plan import FaultPlan

        set_default_plan(FaultPlan().degrade(args.degrade))
        print(f"fault injection: wire time x{args.degrade:g} on every "
              "transfer (--degrade)")

    produced = []
    regressions = []
    t0 = time.time()
    try:
        for name in wanted:
            if name == "fig13":
                for fig in figures.fig13():
                    produced.append(fig)
                    print_figure(fig)
                    print()
                continue
            fig = getattr(figures, name)(
                **_figure_kwargs(name, args.quick, args.seed))
            produced.append(fig)
            print_figure(fig)
            print()

        profile_report = None
        if args.profile:
            from repro.prof import render_breakdown, session

            profile_report = session.report()
            rows = session.breakdown_rows()
            if rows:
                print("== profile: pack/compute/wire/wait breakdown ==")
                print(render_breakdown(rows))
                ok = profile_report["breakdown_valid"]
                print(f"breakdown consistency (sums within 1%): "
                      f"{'ok' if ok else 'FAILED'}")
                print()
            if args.trace_out:
                session.write_chrome_trace(args.trace_out)
                print(f"chrome trace written to {args.trace_out}")
            if args.critpath_out:
                crit_doc = session.write_critpath(args.critpath_out)
                print(f"critical-path report written to {args.critpath_out}")
                flagged = sorted({
                    r for run in crit_doc["runs"]
                    for r in run["stragglers"]["ranks"]})
                if flagged:
                    print(f"  straggler rank(s) flagged: {flagged}")
            if args.flame_out:
                stacks = session.write_flamegraph(args.flame_out)
                print(f"flamegraph ({len(stacks)} stacks) written to "
                      f"{args.flame_out}")

        doc = {
            "schema": "repro-bench/1",
            "quick": args.quick,
            "figures": {
                f.name: {
                    "title": f.title,
                    "columns": f.columns,
                    "rows": f.rows,
                    "notes": f.notes,
                }
                for f in produced
            },
        }
        if args.emit_json:
            out = dict(doc)
            if profile_report is not None:
                profile_report = dict(profile_report)
                profile_report.pop("prometheus", None)  # bulky text form
                out["profile"] = profile_report
            with open(args.emit_json, "w") as fh:
                json.dump(out, fh, indent=1, default=str)
            print(f"JSON report written to {args.emit_json}")

        if baseline_doc is not None:
            from repro.bench.baseline import compare_to_baseline

            regressions = compare_to_baseline(
                doc, baseline_doc, rel_tol=args.baseline_tolerance)
        if args.trajectory:
            from repro.bench.baseline import append_trajectory

            n = append_trajectory(args.trajectory, doc,
                                  label=args.trajectory_label)
            print(f"trajectory entry {n} appended to {args.trajectory}")
    finally:
        if args.degrade is not None:
            from repro.faults import set_default_plan

            set_default_plan(None)
        if args.profile:
            from repro.prof import session

            session.disable()

    print(f"wall time: {time.time() - t0:.0f} s")
    if regressions:
        print(f"PERF REGRESSION vs {args.baseline} "
              f"(tolerance {100 * args.baseline_tolerance:.0f}%):")
        for problem in regressions:
            print(f"  {problem}")
        return 1
    if baseline_doc is not None:
        print(f"no perf regression vs {args.baseline} "
              f"(tolerance {100 * args.baseline_tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
