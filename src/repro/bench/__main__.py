"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench                 # all figures (slow: several min)
    python -m repro.bench fig12 fig14a    # a selection
    python -m repro.bench --quick         # reduced sweeps
"""

from __future__ import annotations

import sys
import time

from repro.bench import figures, print_figure

ALL = ["fig12", "fig13", "fig14a", "fig14b", "fig15", "fig16", "fig17"]


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    wanted = [a for a in argv if not a.startswith("-")] or ALL
    unknown = [w for w in wanted if w not in ALL]
    if unknown:
        print(f"unknown figure(s): {unknown}; choose from {ALL}")
        return 2
    t0 = time.time()
    for name in wanted:
        if name == "fig13":
            for fig in figures.fig13():
                print_figure(fig)
                print()
            continue
        kwargs = {}
        if quick and name == "fig15":
            kwargs["procs"] = (2, 4, 8, 16, 32)
        if quick and name == "fig16":
            kwargs["procs"] = (2, 4, 8, 16)
        if quick and name == "fig17":
            kwargs["procs"] = (4, 8)
            kwargs["grid"] = (48, 48, 48)
        print_figure(getattr(figures, name)(**kwargs))
        print()
    print(f"wall time: {time.time() - t0:.0f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
