"""Self-consistent performance guidelines for the datatype compiler.

In the spirit of Hunold/Träff's self-consistent MPI performance guidelines,
each benchmark states an *internal consistency* requirement -- one the
library controls entirely, so a violation is a performance bug, not noise:

``pack-vs-manual``
    Packing a derived datatype must not lose to the hand-rolled copy a
    programmer would write instead (the paper's central claim: derived
    datatypes should make manual packing unnecessary).
``vector-vs-indexed``
    A ``Vector`` must not lose to the equivalent ``Indexed`` spec of the
    same layout -- the more structured description can only help.
``contig-vs-vector``
    ``Contiguous(n*b)`` must not lose to ``Vector(n, b, b)`` describing the
    same contiguous bytes -- describing contiguity redundantly is free.

Each case times the *execution* of the compiled copy program (plans are
warmed first; compile time is reported separately by the
``repro_datatype_ir_compile_seconds`` histogram) against its reference
implementation, best-of-``repeats``.  A case fails when::

    t_derived > tolerance * t_reference + slack

with a generous default tolerance, because these are wall-clock numbers on
shared CI machines; the margin the pass pipeline buys on violation-prone
cases is an order of magnitude, not percents.  ``python -m repro.bench
--guidelines --no-ir-passes`` disables the optimization pipeline, which
must trip the gate (CI asserts exit 1) -- proving the benchmarks measure
the compiler, not the weather.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.bench.harness import FigureData
from repro.datatypes import ir
from repro.datatypes.packing import TypedBuffer
from repro.datatypes.typemap import (
    Contiguous,
    DOUBLE,
    Indexed,
    Vector,
)

__all__ = ["GuidelineCase", "guideline_cases", "run_guidelines"]

#: derived may cost up to this multiple of the reference before failing
DEFAULT_TOLERANCE = 1.5
#: absolute slack (seconds) so sub-microsecond references don't flap
DEFAULT_SLACK = 50e-6


@dataclass
class GuidelineCase:
    """One self-checking benchmark: a derived-datatype op vs a reference."""

    guideline: str
    case: str
    derived: Callable[[], np.ndarray]
    reference: Callable[[], np.ndarray]


def _best_of(fn: Callable[[], np.ndarray], repeats: int,
             timer: Callable[[], float]) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = timer()
        fn()
        best = min(best, timer() - t0)
    return best


def _manual_indexed_pack(bts: np.ndarray, offs, lens, total: int):
    """The hand-rolled pack loop a programmer writes instead of Indexed."""

    def run() -> np.ndarray:
        out = np.empty(total, dtype=np.uint8)
        pos = 0
        for o, n in zip(offs, lens):
            out[pos:pos + n] = bts[o:o + n]
            pos += n
        return out

    return run


def guideline_cases(scale: int = 512) -> List[GuidelineCase]:
    """The benchmark catalogue; ``scale`` is the matrix edge (elements)."""
    n = scale
    rng = np.random.default_rng(12345)
    matrix = rng.random((n, n))  # n*n float64, row-major
    mbytes = matrix.reshape(-1).view(np.uint8)
    cases: List[GuidelineCase] = []

    # -- guideline 1: pack <= manual copy ----------------------------------
    column = TypedBuffer(matrix, Vector(n, 1, n, DOUBLE))
    cases.append(GuidelineCase(
        "pack-vs-manual", f"matrix column ({n}x{n} doubles)",
        derived=column.pack,
        reference=lambda: np.ascontiguousarray(matrix[:, 0]),
    ))

    half = n // 2
    rows_block = TypedBuffer(matrix, Vector(n, half, n, DOUBLE))
    cases.append(GuidelineCase(
        "pack-vs-manual", f"left half-rows ({n}x{half} doubles)",
        derived=rows_block.pack,
        reference=lambda: np.ascontiguousarray(matrix[:, :half]),
    ))

    # irregular gather: every third 2-element run, packed via Indexed vs
    # the per-block python loop a hand-tuned application would use
    disps = np.arange(0, n * n - 2, 3 * n)
    idx_type = Indexed([2] * len(disps), disps.tolist(), DOUBLE)
    idx_tb = TypedBuffer(matrix, idx_type)
    bl = idx_tb.blocks
    cases.append(GuidelineCase(
        "pack-vs-manual", f"indexed runs ({len(disps)} blocks)",
        derived=idx_tb.pack,
        reference=_manual_indexed_pack(
            mbytes, bl.offsets.tolist(), bl.lengths.tolist(), bl.size),
    ))

    # -- guideline 2: Vector <= equivalent Indexed -------------------------
    vec_tb = TypedBuffer(matrix, Vector(n, 2, n, DOUBLE))
    eq_idx = Indexed([2] * n, (np.arange(n) * n).tolist(), DOUBLE)
    eq_tb = TypedBuffer(matrix, eq_idx)
    cases.append(GuidelineCase(
        "vector-vs-indexed", f"2-wide column pair ({n} rows)",
        derived=vec_tb.pack,
        reference=eq_tb.pack,
    ))

    # -- guideline 3: Contiguous <= Vector(blocklen=stride) ----------------
    contig_tb = TypedBuffer(matrix, Contiguous(n * n, DOUBLE))
    dense_vec_tb = TypedBuffer(matrix, Vector(n, n, n, DOUBLE))
    cases.append(GuidelineCase(
        "contig-vs-vector", f"{n * n} doubles",
        derived=contig_tb.pack,
        reference=dense_vec_tb.pack,
    ))
    return cases


def run_guidelines(
    scale: int = 512,
    repeats: int = 7,
    tolerance: float = DEFAULT_TOLERANCE,
    slack: float = DEFAULT_SLACK,
    timer: Optional[Callable[[], float]] = None,
    cases: Optional[List[GuidelineCase]] = None,
) -> Tuple[FigureData, List[str]]:
    """Run the suite; returns the figure and the list of violations.

    ``timer`` is injectable for deterministic tests of the gate logic.
    """
    timer = timer or time.perf_counter
    if cases is None:
        cases = guideline_cases(scale)
    fig = FigureData(
        name="guidelines",
        title="datatype performance guidelines (derived vs reference, "
              f"best of {repeats})",
        columns=["guideline", "case", "derived_us", "reference_us",
                 "ratio", "limit", "ok"],
    )
    fig.notes.append(
        f"gate: derived <= {tolerance:g} * reference + {slack * 1e6:.0f}us; "
        f"IR passes {'ENABLED' if ir.passes_enabled() else 'DISABLED'}")
    violations: List[str] = []
    for case in cases:
        got = case.derived()
        want = case.reference()
        if not np.array_equal(np.asarray(got).reshape(-1).view(np.uint8),
                              np.asarray(want).reshape(-1).view(np.uint8)):
            violations.append(
                f"{case.guideline}/{case.case}: derived and reference moved "
                "DIFFERENT bytes")
            continue
        t_derived = _best_of(case.derived, repeats, timer)
        t_ref = _best_of(case.reference, repeats, timer)
        limit = tolerance * t_ref + slack
        ok = t_derived <= limit
        ratio = t_derived / t_ref if t_ref > 0 else float("inf")
        fig.add_row(case.guideline, case.case, t_derived * 1e6, t_ref * 1e6,
                    ratio, limit * 1e6, "yes" if ok else "NO")
        if not ok:
            violations.append(
                f"{case.guideline}/{case.case}: derived {t_derived * 1e6:.1f}us "
                f"> limit {limit * 1e6:.1f}us "
                f"(reference {t_ref * 1e6:.1f}us, ratio {ratio:.2f})")
    return fig, violations
