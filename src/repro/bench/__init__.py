"""Benchmark harness regenerating every figure of the paper's evaluation."""

from repro.bench.harness import FigureData, improvement, print_figure
from repro.bench.baseline import append_trajectory, compare_to_baseline
from repro.bench import figures

__all__ = ["FigureData", "append_trajectory", "compare_to_baseline",
           "figures", "improvement", "print_figure"]
