"""Benchmark harness regenerating every figure of the paper's evaluation."""

from repro.bench.harness import FigureData, improvement, print_figure
from repro.bench import figures

__all__ = ["FigureData", "figures", "improvement", "print_figure"]
