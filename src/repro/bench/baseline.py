"""Perf-trajectory baselines for the figure benchmarks (``bench.baseline``).

Two CI-facing pieces:

- :func:`compare_to_baseline` diffs a fresh ``repro-bench/1`` document
  against a committed baseline (``BENCH_*.json``) and reports every
  measurement whose *relative slowdown* exceeds the tolerance.  The
  comparison is deliberately one-sided: the simulator is deterministic,
  so an identical re-run compares exactly equal and always passes, while
  a genuine regression (e.g. an accidental pessimisation of the pack
  path, or the ``--degrade`` self-test below) trips the gate.
- :func:`append_trajectory` appends one compact entry per run to
  ``BENCH_trajectory.json`` so CI accumulates the perf trajectory over
  time (ROADMAP item: record figures per commit, fail on regression).

Derived columns -- anything whose header mentions ``%`` (the paper's
"improvement %" columns) -- and the first column (the row key: process
count, message size, ...) are never compared; only absolute measurements
are gated.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

#: default relative-slowdown tolerance for the regression gate
DEFAULT_TOLERANCE = 0.10


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _gated_columns(columns: List[str]) -> List[int]:
    """Indices of columns the gate compares: numeric measurements only
    (never the row key in column 0, never derived ``%`` columns)."""
    return [i for i, c in enumerate(columns)
            if i > 0 and "%" not in c]


def compare_to_baseline(doc: Dict[str, Any], baseline: Dict[str, Any],
                        rel_tol: float = DEFAULT_TOLERANCE) -> List[str]:
    """Compare two ``repro-bench/1`` documents; returns regression messages.

    Rows are matched by the first-column value within each figure shared
    by both documents; a measurement regresses when

        current > baseline * (1 + rel_tol)    (baseline > 0)

    Missing figures/rows/columns in the *current* document are reported
    too (a figure silently dropping out of the bench must not pass the
    gate); extra figures in the current document are fine.
    """
    problems: List[str] = []
    base_figs = baseline.get("figures", {})
    cur_figs = doc.get("figures", {})
    if doc.get("quick") != baseline.get("quick"):
        problems.append(
            f"quick-mode mismatch: current={doc.get('quick')} "
            f"baseline={baseline.get('quick')} (not comparable)")
        return problems
    for name, base_fig in sorted(base_figs.items()):
        cur_fig = cur_figs.get(name)
        if cur_fig is None:
            problems.append(f"{name}: missing from current run")
            continue
        base_cols = base_fig.get("columns", [])
        cur_cols = cur_fig.get("columns", [])
        cur_rows = {str(row[0]): row for row in cur_fig.get("rows", ()) if row}
        for base_row in base_fig.get("rows", ()):
            if not base_row:
                continue
            key = str(base_row[0])
            cur_row = cur_rows.get(key)
            if cur_row is None:
                problems.append(f"{name}[{key}]: row missing from current run")
                continue
            for i in _gated_columns(base_cols):
                col = base_cols[i]
                if col not in cur_cols:
                    problems.append(f"{name}[{key}]: column {col!r} missing")
                    continue
                base_val = base_row[i]
                cur_val = cur_row[cur_cols.index(col)]
                if not (_is_number(base_val) and _is_number(cur_val)):
                    continue
                if base_val <= 0:
                    continue
                slowdown = cur_val / base_val - 1.0
                if slowdown > rel_tol:
                    problems.append(
                        f"{name}[{key}] {col}: {cur_val:.6g} vs baseline "
                        f"{base_val:.6g} (+{100 * slowdown:.1f}% > "
                        f"{100 * rel_tol:.0f}% tolerance)")
    return problems


def trajectory_entry(doc: Dict[str, Any],
                     label: Optional[str] = None) -> Dict[str, Any]:
    """One compact trajectory record for a ``repro-bench/1`` document."""
    return {
        "label": label,
        "quick": doc.get("quick"),
        "figures": {
            name: {"columns": fig.get("columns", []),
                   "rows": fig.get("rows", [])}
            for name, fig in sorted(doc.get("figures", {}).items())
        },
    }


def append_trajectory(path: str, doc: Dict[str, Any],
                      label: Optional[str] = None) -> int:
    """Append a :func:`trajectory_entry` to the JSON list at ``path``.

    Creates the file (as ``[]``) when absent; returns the new length.
    """
    history: List[Any] = []
    if os.path.exists(path):
        with open(path) as fh:
            loaded = json.load(fh)
        if not isinstance(loaded, list):
            raise ValueError(f"{path}: trajectory file is not a JSON list")
        history = loaded
    history.append(trajectory_entry(doc, label=label))
    with open(path, "w") as fh:
        json.dump(history, fh, indent=1, default=str)
        fh.write("\n")
    return len(history)


__all__ = [
    "DEFAULT_TOLERANCE",
    "append_trajectory",
    "compare_to_baseline",
    "trajectory_entry",
]
