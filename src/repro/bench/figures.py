"""One generator function per figure of the paper's evaluation (section 5).

Each returns a :class:`repro.bench.harness.FigureData` whose rows mirror the
series the paper plots.  Absolute values are simulated seconds from the
shared cost model; EXPERIMENTS.md records how each figure's *shape*
(who wins, by what factor, where behaviour changes) compares to the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.allgatherv_bench import allgatherv_benchmark
from repro.apps.alltoallw_bench import alltoallw_ring_benchmark
from repro.apps.laplacian3d import laplacian3d_benchmark
from repro.apps.transpose import transpose_benchmark
from repro.apps.vecscatter_bench import vecscatter_benchmark
from repro.bench.harness import FigureData, improvement
from repro.mpi import MPIConfig
from repro.util.costmodel import CostModel

BASE = MPIConfig.baseline()
OPT = MPIConfig.optimized()

TRANSPOSE_SIZES = (64, 128, 256, 512, 1024)
FIG14A_SIZES = (1, 4, 16, 64, 256, 1024, 4096, 16384)  # doubles from rank 0
FIG14B_PROCS = (2, 4, 8, 16, 32, 64)
FIG15_PROCS = (2, 4, 8, 16, 32, 64, 128)
FIG16_PROCS = (2, 4, 8, 16, 32, 64, 128)
FIG17_PROCS = (4, 8, 16, 32, 64, 128)


def fig12(sizes: Sequence[int] = TRANSPOSE_SIZES,
          cost: Optional[CostModel] = None, seed: int = 0) -> FigureData:
    """Matrix-transpose latency, baseline vs optimised (Fig. 12)."""
    fig = FigureData(
        "Fig12", "Matrix transpose benchmark latency (ms)",
        ["matrix", "MVAPICH2-0.9.5", "MVAPICH2-New", "improvement %"],
    )
    for n in sizes:
        rb = transpose_benchmark(n, BASE, cost=cost, seed=seed)
        ro = transpose_benchmark(n, OPT, cost=cost, seed=seed)
        assert rb.correct and ro.correct
        fig.add_row(
            f"{n}x{n}", rb.latency * 1e3, ro.latency * 1e3,
            improvement(rb.latency, ro.latency),
        )
    return fig


def fig13(sizes: Sequence[int] = TRANSPOSE_SIZES,
          cost: Optional[CostModel] = None,
          seed: int = 0) -> tuple[FigureData, FigureData]:
    """Datatype-processing time breakdown, % of total (Fig. 13a/13b)."""
    figs = []
    for config, label in ((BASE, "current approach"), (OPT, "dual-context look-ahead")):
        fig = FigureData(
            f"Fig13{'a' if config is BASE else 'b'}",
            f"Transpose time breakdown, {label} (%)",
            ["matrix", "comm %", "pack %", "search %"],
        )
        for n in sizes:
            r = transpose_benchmark(n, config, cost=cost, seed=seed)
            fr = r.breakdown_fractions()
            # fold the (tiny) look-ahead share into pack, as the paper does
            fig.add_row(
                f"{n}x{n}",
                100 * fr.get("comm", 0.0),
                100 * (fr.get("pack", 0.0) + fr.get("lookahead", 0.0)),
                100 * fr.get("search", 0.0),
            )
        figs.append(fig)
    return tuple(figs)


def fig14a(sizes: Sequence[int] = FIG14A_SIZES, nprocs: int = 64,
           cost: Optional[CostModel] = None, seed: int = 0) -> FigureData:
    """Allgatherv latency vs rank-0 message size, 64 procs (Fig. 14a)."""
    fig = FigureData(
        "Fig14a", f"MPI_Allgatherv latency vs problem size ({nprocs} procs, usec)",
        ["doubles", "MVAPICH2-0.9.5", "MVAPICH2-New", "improvement %"],
    )
    for doubles in sizes:
        rb = allgatherv_benchmark(nprocs, doubles, BASE, cost=cost, seed=seed)
        ro = allgatherv_benchmark(nprocs, doubles, OPT, cost=cost, seed=seed)
        assert rb.correct and ro.correct
        fig.add_row(
            doubles, rb.latency * 1e6, ro.latency * 1e6,
            improvement(rb.latency, ro.latency),
        )
    return fig


def fig14b(procs: Sequence[int] = FIG14B_PROCS, big_doubles: int = 4096,
           cost: Optional[CostModel] = None, seed: int = 0) -> FigureData:
    """Allgatherv latency vs system size, rank 0 sends 32 KB (Fig. 14b)."""
    fig = FigureData(
        "Fig14b", "MPI_Allgatherv latency vs system size (32 KB outlier, usec)",
        ["procs", "MVAPICH2-0.9.5", "MVAPICH2-New", "improvement %"],
    )
    for p in procs:
        rb = allgatherv_benchmark(p, big_doubles, BASE, cost=cost, seed=seed)
        ro = allgatherv_benchmark(p, big_doubles, OPT, cost=cost, seed=seed)
        assert rb.correct and ro.correct
        fig.add_row(
            p, rb.latency * 1e6, ro.latency * 1e6,
            improvement(rb.latency, ro.latency),
        )
    return fig


def fig15(procs: Sequence[int] = FIG15_PROCS,
          cost: Optional[CostModel] = None, seed: int = 0) -> FigureData:
    """Alltoallw nearest-neighbour latency vs system size (Fig. 15).

    Runs of <= 32 ranks fit on one (homogeneous) cluster; larger runs span
    both clusters, adding natural skew -- as in the paper's testbed.
    """
    fig = FigureData(
        "Fig15", "MPI_Alltoallw ring-neighbour latency (usec)",
        ["procs", "MVAPICH2-0.9.5", "MVAPICH2-New", "improvement %"],
    )
    for p in procs:
        rb = alltoallw_ring_benchmark(p, BASE, cost=cost, seed=seed)
        ro = alltoallw_ring_benchmark(p, OPT, cost=cost, seed=seed)
        assert rb.correct and ro.correct
        fig.add_row(
            p, rb.latency * 1e6, ro.latency * 1e6,
            improvement(rb.latency, ro.latency),
        )
    return fig


def fig16(procs: Sequence[int] = FIG16_PROCS,
          cost: Optional[CostModel] = None, seed: int = 0) -> FigureData:
    """PETSc vector-scatter benchmark (Fig. 16a/16b).

    Weak scaling: per-process element count constant.  Columns give the
    three implementations' latencies plus the two improvement curves of
    Fig. 16b (both relative to the baseline MPI).
    """
    fig = FigureData(
        "Fig16", "PETSc vector scatter latency (usec)",
        ["procs", "hand-tuned", "MVAPICH2-0.9.5", "MVAPICH2-New",
         "new improvement %", "hand-tuned improvement %"],
    )
    for p in procs:
        rh = vecscatter_benchmark(p, "hand_tuned", BASE, cost=cost, seed=seed)
        rb = vecscatter_benchmark(p, "datatype", BASE, cost=cost, seed=seed)
        ro = vecscatter_benchmark(p, "datatype", OPT, cost=cost, seed=seed)
        assert rh.correct and rb.correct and ro.correct
        fig.add_row(
            p, rh.latency * 1e6, rb.latency * 1e6, ro.latency * 1e6,
            improvement(rb.latency, ro.latency),
            improvement(rb.latency, rh.latency),
        )
    return fig


def fig17(procs: Sequence[int] = FIG17_PROCS, grid=(100, 100, 100),
          levels: int = 3, fixed_cycles: int = 3,
          cost: Optional[CostModel] = None, seed: int = 0) -> FigureData:
    """3-D Laplacian multigrid solver execution time (Fig. 17a/17b).

    100^3 grid, one degree of freedom, three multigrid levels, as in the
    paper.  ``fixed_cycles`` V-cycles run so all implementations do
    identical numerical work (solver convergence is validated separately in
    the test suite).
    """
    fig = FigureData(
        "Fig17", f"3-D Laplacian multigrid solver time ({grid}, ms)",
        ["procs", "hand-tuned", "MVAPICH2-0.9.5", "MVAPICH2-New",
         "new improvement %", "hand-tuned improvement %"],
    )
    for p in procs:
        results = {}
        for impl in ("hand-tuned", "MVAPICH2-0.9.5", "MVAPICH2-New"):
            results[impl] = laplacian3d_benchmark(
                p, impl, grid=grid, levels=levels,
                fixed_cycles=fixed_cycles, cost=cost, seed=seed,
            )
        tb = results["MVAPICH2-0.9.5"].execution_time
        to = results["MVAPICH2-New"].execution_time
        th = results["hand-tuned"].execution_time
        fig.add_row(
            p, th * 1e3, tb * 1e3, to * 1e3,
            improvement(tb, to), improvement(tb, th),
        )
    return fig
